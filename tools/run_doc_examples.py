#!/usr/bin/env python3
"""Execute the fenced ``python`` code blocks of markdown documentation.

For each markdown file given on the command line, every fenced block
opened with ```` ```python ```` is extracted; the blocks of one file are
concatenated **in order** into a single script (so a tutorial may build
on earlier snippets) and executed in a fresh interpreter with
``PYTHONPATH`` pointing at ``src/``. Any non-zero exit fails the run.

This is the CI "docs" job and the ``make docs`` target:

    python tools/run_doc_examples.py README.md docs/TUTORIAL.md \
        docs/ARCHITECTURE.md docs/PERFORMANCE.md

Blocks in other languages (```` ```bash ````, plain fences) are ignored,
as are indented code spans. A file with no python blocks is an error —
it means the docs drifted and this guard silently stopped guarding.
"""

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent


def extract_python_blocks(text: str) -> List[str]:
    """Return the contents of every ```python fenced block, in order."""
    blocks: List[str] = []
    current: List[str] = []
    in_block = False
    for line in text.splitlines():
        stripped = line.strip()
        if not in_block and stripped == "```python":
            in_block = True
            current = []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append("\n".join(current))
        elif in_block:
            current.append(line)
    if in_block:
        raise ValueError("unterminated ```python fence")
    return blocks


def run_file_examples(markdown: Path, python: str, verbose: bool) -> int:
    """Execute one file's concatenated blocks; return the exit status."""
    blocks = extract_python_blocks(markdown.read_text())
    if not blocks:
        print(f"FAIL {markdown}: no ```python blocks found")
        return 1
    script = "\n\n".join(blocks) + "\n"
    lines = script.count("\n")
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / (markdown.stem + "_examples.py")
        path.write_text(script)
        proc = subprocess.run(
            [python, str(path)],
            cwd=scratch,  # stray artifacts land here, not in the repo
            env=env,
            capture_output=True,
            text=True,
        )
    if proc.returncode != 0:
        print(f"FAIL {markdown} ({len(blocks)} blocks, {lines} lines)")
        print(proc.stdout, end="")
        print(proc.stderr, end="", file=sys.stderr)
        return 1
    print(f"OK   {markdown} ({len(blocks)} blocks, {lines} lines)")
    if verbose and proc.stdout:
        print(proc.stdout, end="")
    return 0


def main(argv: List[str] = None) -> int:
    """CLI entry point: run every file's examples, fail on any error."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="markdown files")
    parser.add_argument(
        "--python", default=sys.executable, help="interpreter to run with"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="echo example stdout"
    )
    args = parser.parse_args(argv)
    failures = 0
    for markdown in args.files:
        failures += run_file_examples(markdown, args.python, args.verbose)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
