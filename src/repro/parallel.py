"""Sharded parallel batch certification and corpus simulation.

Independent behaviors are certified independently — Theorem 8/19 is a
judgement over one behavior at a time — so a corpus of recorded runs is
embarrassingly parallel.  This module partitions a corpus across a
``multiprocessing`` worker pool:

* :func:`certify_corpus` — judge many (behavior, system type) cases,
  sharded round-robin over ``jobs`` workers; results come back in input
  order and the exposed :class:`CaseVerdict` rows are identical whatever
  the fan-out (``jobs=1`` runs inline, with no pool at all).
* :func:`simulate_corpus` / :func:`record_corpus` — produce the corpus
  in the first place: run the sim driver over many seeded workload
  configurations, in parallel, optionally writing each run to disk in
  the ``repro record`` JSON format.

Shard fan-out is observable: pass a :class:`repro.obs.MetricsRegistry`
and the engine records ``parallel.jobs`` / ``parallel.shards`` gauges
and ``parallel.cases`` / ``parallel.certified`` / ``parallel.rejected``
counters (see ``docs/PERFORMANCE.md``).

Workers are plain ``fork``/``spawn`` processes; every payload crossing
the pool boundary (actions, system types, verdicts) is picklable by
construction.  The CLI exposes the engine as ``repro audit CASE...
--jobs N`` and ``repro record --runs N --jobs N``.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .core.actions import Action, Behavior
from .core.correctness import certify
from .core.names import SystemType
from .core.serde import dump_case
from .obs.metrics import MetricsRegistry

__all__ = [
    "CaseVerdict",
    "certify_corpus",
    "simulate_corpus",
    "record_corpus",
]

#: a corpus entry: (label, behavior, system type)
Case = Tuple[str, Sequence[Action], SystemType]


@dataclass(frozen=True)
class CaseVerdict:
    """The (picklable) summary of one batch certification in a corpus."""

    label: str
    certified: bool
    arv_violations: int
    has_cycle: bool
    events: int
    input_problems: int = 0

    def __str__(self) -> str:
        status = "CERTIFIED" if self.certified else "NOT certified"
        detail = []
        if self.arv_violations:
            detail.append(f"{self.arv_violations} ARV violations")
        if self.has_cycle:
            detail.append("SG cycle")
        if self.input_problems:
            detail.append(f"{self.input_problems} input problems")
        suffix = f" ({', '.join(detail)})" if detail else ""
        return f"{self.label}: {status} [{self.events} events]{suffix}"


def _judge_case(
    case: Case,
    validate_input: bool,
    indexed: bool = True,
    columnar: bool = False,
) -> CaseVerdict:
    label, behavior, system_type = case
    certificate = certify(
        behavior,
        system_type,
        construct_witness=False,
        validate_input=validate_input,
        indexed=indexed,
        columnar=columnar,
    )
    return CaseVerdict(
        label,
        certificate.certified,
        len(certificate.arv_violations),
        certificate.cycle is not None,
        len(behavior),
        len(certificate.input_problems),
    )


def _certify_shard(payload: Tuple[List[Tuple[int, Case]], bool, bool, bool]):
    shard, validate_input, indexed, columnar = payload
    return [
        (position, _judge_case(case, validate_input, indexed, columnar))
        for position, case in shard
    ]


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context("spawn")


def _shard(items: Sequence, shards: int) -> List[list]:
    """Round-robin partition preserving each item's original position."""
    buckets: List[list] = [[] for _ in range(shards)]
    for position, item in enumerate(items):
        buckets[position % shards].append((position, item))
    return [bucket for bucket in buckets if bucket]


def certify_corpus(
    cases: Sequence[Case],
    jobs: int = 1,
    validate_input: bool = False,
    metrics: Optional[MetricsRegistry] = None,
    indexed: bool = True,
    columnar: bool = False,
) -> List[CaseVerdict]:
    """Batch-certify a corpus of behaviors, sharded over ``jobs`` workers.

    Each case is ``(label, behavior, system_type)``; the returned
    verdicts are in input order and independent of ``jobs`` (the test
    suite asserts ``jobs=1`` and ``jobs=4`` verdict-equivalence on
    randomized corpora).  ``jobs <= 1`` — or a corpus of one — runs
    inline in this process.  ``metrics`` records the shard fan-out and
    accept/reject counts.  Each case's :func:`repro.core.certify` builds
    one shared history index per behavior; ``indexed=False`` selects the
    naive per-phase scans and ``columnar=True`` the dense-int columnar
    engine (the third A/B lane) — verdicts are identical across lanes.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    jobs = min(jobs, len(cases)) if cases else 1
    if jobs <= 1:
        verdicts = [
            _judge_case(case, validate_input, indexed=indexed, columnar=columnar)
            for case in cases
        ]
        shards = 1 if cases else 0
    else:
        sharded = _shard(cases, jobs)
        shards = len(sharded)
        with _pool_context().Pool(jobs) as pool:
            chunks = pool.map(
                _certify_shard,
                [
                    (shard, validate_input, indexed, columnar)
                    for shard in sharded
                ],
            )
        ordered: List[Tuple[int, CaseVerdict]] = [
            entry for chunk in chunks for entry in chunk
        ]
        ordered.sort(key=lambda entry: entry[0])
        verdicts = [verdict for _, verdict in ordered]
    if metrics is not None:
        metrics.set_gauge("parallel.jobs", jobs)
        metrics.set_gauge("parallel.shards", shards)
        metrics.inc("parallel.cases", len(verdicts))
        certified = sum(1 for verdict in verdicts if verdict.certified)
        if certified:
            metrics.inc("parallel.certified", certified)
        if len(verdicts) - certified:
            metrics.inc("parallel.rejected", len(verdicts) - certified)
    return verdicts


# ---------------------------------------------------------------------------
# Corpus production: many seeded sim-driver runs, in parallel
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SimSpec:
    """A picklable description of one seeded driver run."""

    seed: int
    algorithm: str
    top_level: int
    objects: int
    max_depth: int
    abort_rate: float
    max_steps: int
    output: Optional[str] = None


def _run_spec(spec: _SimSpec):
    # imported here so workers (and jobs=1 callers) build their own
    # automata; keeps this module import-light at the top level
    from .generic.system import make_generic_system
    from .locking.moss import MossRWLockingObject
    from .sim.driver import run_system
    from .sim.faults import AbortInjector
    from .sim.policies import EagerInformPolicy, RandomPolicy
    from .sim.workload import CounterKind, RWKind, WorkloadConfig, generate_workload
    from .undo.logging import UndoLoggingObject

    if spec.algorithm == "moss":
        kind, factory = RWKind(), MossRWLockingObject
    elif spec.algorithm == "read-update":
        from .locking.read_update import ReadUpdateLockingObject

        kind, factory = CounterKind(), ReadUpdateLockingObject
    elif spec.algorithm == "undo":
        kind, factory = CounterKind(), UndoLoggingObject
    else:
        raise ValueError(f"unknown algorithm {spec.algorithm!r}")
    config = WorkloadConfig(
        seed=spec.seed,
        top_level=spec.top_level,
        objects=spec.objects,
        max_depth=spec.max_depth,
        kind=kind,
    )
    system_type, programs = generate_workload(config)
    system = make_generic_system(system_type, programs, factory)
    policy = EagerInformPolicy(seed=spec.seed)
    if spec.abort_rate > 0:
        policy = AbortInjector(
            RandomPolicy(spec.seed), abort_rate=spec.abort_rate, seed=spec.seed
        )
    result = run_system(
        system,
        policy,
        system_type,
        max_steps=spec.max_steps,
        resolve_deadlocks=True,
    )
    if spec.output is not None:
        Path(spec.output).write_text(dump_case(result.behavior, system_type))
        return spec.output, len(result.behavior)
    return result.behavior, system_type


def _map_specs(specs: Sequence[_SimSpec], jobs: int) -> list:
    jobs = min(jobs, len(specs)) if specs else 1
    if jobs <= 1:
        return [_run_spec(spec) for spec in specs]
    with _pool_context().Pool(jobs) as pool:
        return pool.map(_run_spec, specs)


def _make_specs(
    seeds: Sequence[int],
    algorithm: str,
    top_level: int,
    objects: int,
    max_depth: int,
    abort_rate: float,
    max_steps: int,
    outputs: Optional[Sequence[Union[str, Path]]] = None,
) -> List[_SimSpec]:
    if outputs is not None and len(outputs) != len(seeds):
        raise ValueError("outputs must match seeds one-to-one")
    return [
        _SimSpec(
            seed,
            algorithm,
            top_level,
            objects,
            max_depth,
            abort_rate,
            max_steps,
            str(outputs[position]) if outputs is not None else None,
        )
        for position, seed in enumerate(seeds)
    ]


def simulate_corpus(
    seeds: Sequence[int],
    algorithm: str = "moss",
    top_level: int = 4,
    objects: int = 3,
    max_depth: int = 2,
    abort_rate: float = 0.0,
    max_steps: int = 10_000,
    jobs: int = 1,
) -> List[Tuple[Behavior, SystemType]]:
    """Run one seeded sim-driver workload per seed, ``jobs`` at a time.

    Returns ``(behavior, system_type)`` pairs in seed order — a corpus
    ready for :func:`certify_corpus`.  Each run is the same deterministic
    workload the CLI's ``demo``/``record`` commands produce for that
    seed.
    """
    specs = _make_specs(
        seeds, algorithm, top_level, objects, max_depth, abort_rate, max_steps
    )
    return _map_specs(specs, jobs)


def record_corpus(
    seeds: Sequence[int],
    outputs: Sequence[Union[str, Path]],
    algorithm: str = "moss",
    top_level: int = 4,
    objects: int = 3,
    max_depth: int = 2,
    abort_rate: float = 0.0,
    max_steps: int = 10_000,
    jobs: int = 1,
) -> List[Tuple[str, int]]:
    """Simulate and write one ``repro record`` JSON file per seed.

    ``outputs`` names the destination file for each seed.  Returns
    ``(path, events)`` pairs in seed order.  Workers write their own
    files, so the fan-out parallelises both the simulation and the
    serialization.
    """
    specs = _make_specs(
        seeds,
        algorithm,
        top_level,
        objects,
        max_depth,
        abort_rate,
        max_steps,
        outputs,
    )
    return _map_specs(specs, jobs)
