"""The undo logging object automaton ``U_X`` (Section 6.2).

A generic object for objects of *arbitrary* data type, generalising
Weihl's algorithm to nested transactions.  The state is a log of
operations (with aborted descendants excised) plus created /
commit-requested / committed bookkeeping:

* a ``REQUEST_COMMIT(T, v)`` is enabled when ``(T, v)`` commutes
  backward with every logged operation whose issuer is not yet known to
  be an ancestor-or-committed-up-to ``T`` (the "not visible" ones), and
  appending ``(T, v)`` to the log keeps the log a behavior of ``S_X``;
* ``INFORM_COMMIT`` merely records the commit (loosening future
  commutativity checks);
* ``INFORM_ABORT`` removes all of the aborted transaction's descendants'
  operations from the log — recovery by undo.

Works with any serial specification exposing ``conflicts``/``is_legal``/
``result_of``: both :class:`repro.spec.datatype.DataType` instances and
the plain :class:`repro.core.rw_semantics.RWSpec` (the latter yields a
read/write object with classical conflicts — the E7 ablation contrasts
it with the exact-commutativity :class:`repro.spec.builtin.RegisterType`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Iterator, List, Optional, Tuple

from ..core.actions import (
    Action,
    Create,
    InformAbort,
    InformCommit,
    RequestCommit,
)
from ..core.names import ObjectName, SystemType, TransactionName
from ..core.operations import Operation
from ..generic.objects import GenericObject

__all__ = ["UndoLogState", "UndoLoggingObject"]


@dataclass(frozen=True)
class UndoLogState:
    """The state of ``U_X``: bookkeeping sets plus the operation log."""

    created: FrozenSet[TransactionName] = frozenset()
    commit_requested: FrozenSet[TransactionName] = frozenset()
    committed: FrozenSet[TransactionName] = frozenset()
    operations: Tuple[Operation, ...] = ()


class UndoLoggingObject(GenericObject):
    """``U_X``: the undo logging generic object automaton."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        super().__init__(obj, system_type)
        self.spec = system_type.spec(obj)
        for required in ("conflicts", "is_legal", "result_of"):
            if not hasattr(self.spec, required):
                raise TypeError(
                    f"spec for {obj} lacks {required!r}; undo logging needs it"
                )
        self.name = f"U_{obj}"

    # -- helpers -----------------------------------------------------------

    def _pairs(self, log: Tuple[Operation, ...]) -> Tuple[Tuple[Any, Any], ...]:
        return tuple(
            (self.system_type.access(entry.transaction).op, entry.value)
            for entry in log
        )

    def _commutes_with_uncommitted(
        self, state: UndoLogState, transaction: TransactionName, value: Any
    ) -> bool:
        """The commutativity precondition of ``REQUEST_COMMIT(T, v)``.

        ``(T, v)`` must commute backward with every logged ``(T', v')``
        such that some ancestor of ``T'`` outside ``ancestors(T)`` is not
        known committed.
        """
        op = self.system_type.access(transaction).op
        for entry in state.operations:
            issuer = entry.transaction
            pending = any(
                ancestor not in state.committed
                for ancestor in issuer.ancestors()
                if not ancestor.is_ancestor_of(transaction)
            )
            if not pending:
                continue
            other_op = self.system_type.access(issuer).op
            if self.spec.conflicts(other_op, entry.value, op, value):
                return False
        return True

    def _forced_value(
        self, state: UndoLogState, transaction: TransactionName
    ) -> Optional[Any]:
        """The value making ``perform(log + (T, v))`` a behavior of ``S_X``.

        The log is legal by construction, and our specifications are
        deterministic, so there is exactly one such value.
        """
        op = self.system_type.access(transaction).op
        pairs = self._pairs(state.operations)
        if not self.spec.is_legal(pairs):
            return None
        return self.spec.result_of(pairs, op)

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> UndoLogState:
        return UndoLogState()

    def enabled(self, state: UndoLogState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            if (
                transaction not in state.created
                or transaction in state.commit_requested
            ):
                return False
            if not self._commutes_with_uncommitted(state, transaction, action.value):
                return False
            return self._forced_value(state, transaction) == action.value
        return False

    def effect(self, state: UndoLogState, action: Action) -> UndoLogState:
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, InformCommit):
            return replace(state, committed=state.committed | {action.transaction})
        if isinstance(action, InformAbort):
            survivors = tuple(
                entry
                for entry in state.operations
                if not action.transaction.is_ancestor_of(entry.transaction)
            )
            return replace(state, operations=survivors)
        if isinstance(action, RequestCommit):
            return replace(
                state,
                commit_requested=state.commit_requested | {action.transaction},
                operations=state.operations
                + (Operation(action.transaction, action.value),),
            )
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: UndoLogState) -> Iterator[Action]:
        for transaction in sorted(state.created - state.commit_requested):
            value = self._forced_value(state, transaction)
            if value is None:
                continue
            if self._commutes_with_uncommitted(state, transaction, value):
                yield RequestCommit(transaction, value)

    def blocked_accesses(self, state: UndoLogState) -> Iterator[TransactionName]:
        for transaction in sorted(state.created - state.commit_requested):
            value = self._forced_value(state, transaction)
            if value is None or not self._commutes_with_uncommitted(
                state, transaction, value
            ):
                yield transaction
