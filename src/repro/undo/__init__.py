"""The undo logging algorithm for arbitrary data types (Section 6.2)."""

from .logging import UndoLoggingObject, UndoLogState

__all__ = ["UndoLoggingObject", "UndoLogState"]
