"""The generic controller automaton (Section 5.1).

The generic controller passes creation requests on, decides commits and
aborts, reports completions to parents, and informs objects of the fate
of transactions.  Unlike the serial scheduler it permits sibling
concurrency and may abort transactions that have already been created —
coping with the consequences is the generic objects' job.

Nondeterminism notes: the controller may deliver informs in any order
and at any time after the completion; the driver's scheduling policy
resolves these choices.  To keep the enabled-action enumeration finite
we track delivered informs and reports (re-delivery, while harmless in
the model, is never useful to a simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from ..automata.base import IOAutomaton
from ..obs.hooks import ObsHooks
from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import ObjectName, SystemType, TransactionName

__all__ = ["GenericControllerState", "GenericController"]


@dataclass(frozen=True)
class GenericControllerState:
    """Immutable bookkeeping of requests, completions, reports and informs.

    ``commit_values`` is a copy-on-write dict (never mutated in place), so
    value lookups stay O(1) even in large simulations.
    """

    create_requested: FrozenSet[TransactionName] = frozenset()
    created: FrozenSet[TransactionName] = frozenset()
    commit_values: "Dict[TransactionName, Any]" = field(default_factory=dict)
    committed: FrozenSet[TransactionName] = frozenset()
    aborted: FrozenSet[TransactionName] = frozenset()
    reported: FrozenSet[TransactionName] = frozenset()
    informed: FrozenSet[Tuple[ObjectName, TransactionName]] = frozenset()

    def completed(self, transaction: TransactionName) -> bool:
        return transaction in self.committed or transaction in self.aborted

    def commit_requested(self, transaction: TransactionName) -> bool:
        return transaction in self.commit_values

    def value_of(self, transaction: TransactionName) -> Any:
        return self.commit_values[transaction]


class GenericController(IOAutomaton):
    """The generic controller for a given system type."""

    name = "generic-controller"

    def __init__(
        self, system_type: SystemType, hooks: Optional[ObsHooks] = None
    ) -> None:
        self.system_type = system_type
        # Optional observer of dispatch decisions (commit/abort/report/
        # inform); ``None`` keeps ``effect`` observer-free.
        self.hooks = hooks
        # Which objects care about a transaction's fate: those with an
        # access in its subtree.  The model permits informing any object
        # about any transaction (see ``enabled``), but enumerating only
        # the relevant pairs keeps simulations linear — informs outside
        # this map cannot affect any object's state.
        self._relevant_objects: dict = {}
        for access, info in system_type.all_accesses().items():
            for ancestor in access.ancestors():
                if ancestor.is_root:
                    continue
                self._relevant_objects.setdefault(ancestor, set()).add(info.obj)

    # -- signature ---------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        return isinstance(action, (RequestCreate, RequestCommit))

    def is_output(self, action: Action) -> bool:
        return isinstance(
            action,
            (Create, Commit, Abort, ReportCommit, ReportAbort, InformCommit, InformAbort),
        )

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> GenericControllerState:
        return GenericControllerState()

    def enabled(self, state: GenericControllerState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, Create):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and transaction not in state.created
            )
        if isinstance(action, Commit):
            transaction = action.transaction
            return state.commit_requested(transaction) and not state.completed(
                transaction
            )
        if isinstance(action, Abort):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and not state.completed(transaction)
            )
        if isinstance(action, ReportCommit):
            transaction = action.transaction
            return (
                transaction in state.committed
                and transaction not in state.reported
                and state.value_of(transaction) == action.value
            )
        if isinstance(action, ReportAbort):
            transaction = action.transaction
            return transaction in state.aborted and transaction not in state.reported
        if isinstance(action, InformCommit):
            return (
                action.transaction in state.committed
                and (action.obj, action.transaction) not in state.informed
            )
        if isinstance(action, InformAbort):
            return (
                action.transaction in state.aborted
                and (action.obj, action.transaction) not in state.informed
            )
        return False

    def effect(
        self, state: GenericControllerState, action: Action
    ) -> GenericControllerState:
        if isinstance(action, RequestCreate):
            return replace(
                state, create_requested=state.create_requested | {action.transaction}
            )
        if isinstance(action, RequestCommit):
            if state.commit_requested(action.transaction):
                return state
            updated = dict(state.commit_values)
            updated[action.transaction] = action.value
            return replace(state, commit_values=updated)
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, Commit):
            if self.hooks is not None:
                self.hooks.on_commit(action.transaction)
            return replace(state, committed=state.committed | {action.transaction})
        if isinstance(action, Abort):
            if self.hooks is not None:
                self.hooks.on_abort(action.transaction)
            return replace(state, aborted=state.aborted | {action.transaction})
        if isinstance(action, (ReportCommit, ReportAbort)):
            if self.hooks is not None:
                self.hooks.on_report(
                    action.transaction, isinstance(action, ReportCommit)
                )
            return replace(state, reported=state.reported | {action.transaction})
        if isinstance(action, (InformCommit, InformAbort)):
            if self.hooks is not None:
                self.hooks.on_inform(
                    action.obj, action.transaction, isinstance(action, InformCommit)
                )
            return replace(
                state, informed=state.informed | {(action.obj, action.transaction)}
            )
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: GenericControllerState) -> Iterator[Action]:
        for transaction in sorted(state.create_requested):
            create = Create(transaction)
            if self.enabled(state, create):
                yield create
        for transaction in state.commit_values:
            commit = Commit(transaction)
            if self.enabled(state, commit):
                yield commit
        for transaction in sorted(state.committed):
            report = ReportCommit(transaction, state.value_of(transaction))
            if self.enabled(state, report):
                yield report
            for obj in sorted(self._relevant_objects.get(transaction, ())):
                inform = InformCommit(obj, transaction)
                if self.enabled(state, inform):
                    yield inform
        for transaction in sorted(state.aborted):
            report_abort = ReportAbort(transaction)
            if self.enabled(state, report_abort):
                yield report_abort
            for obj in sorted(self._relevant_objects.get(transaction, ())):
                inform_abort = InformAbort(obj, transaction)
                if self.enabled(state, inform_abort):
                    yield inform_abort

    def enabled_aborts(self, state: GenericControllerState) -> Iterator[Abort]:
        """Abort actions currently enabled — used by fault-injection policies.

        Aborts are deliberately kept out of :meth:`enabled_outputs` so that
        a simulated run only aborts transactions when its policy decides to
        inject a fault; the automaton itself still models them as ordinary
        enabled outputs via :meth:`enabled`.
        """
        for transaction in sorted(state.create_requested):
            abort = Abort(transaction)
            if self.enabled(state, abort):
                yield abort
