"""Assembling generic systems (Section 5.1).

A generic system composes: one transaction automaton per non-access
transaction, one generic object automaton per object name, and the
generic controller.  :func:`make_generic_system` builds the composition
from transaction programs and an object factory — pass
:class:`repro.locking.moss.MossRWLockingObject` for Moss' algorithm or
:class:`repro.undo.logging.UndoLoggingObject` for undo logging (or any
:class:`repro.generic.objects.GenericObject` subclass, including
per-object mixes, which the modular proof technique explicitly allows).
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional

from ..automata.base import IOAutomaton
from ..automata.composition import Composition
from ..core.names import ObjectName, SystemType, TransactionName
from ..generic.controller import GenericController
from ..generic.objects import GenericObject
from ..obs.hooks import ObsHooks
from ..sim.programs import ProgramTransaction, TransactionProgram, collect_programs

__all__ = ["ObjectFactory", "make_generic_system"]

ObjectFactory = Callable[[ObjectName, SystemType], GenericObject]


def make_generic_system(
    system_type: SystemType,
    programs: Mapping[TransactionName, TransactionProgram],
    object_factory: ObjectFactory,
    name: str = "generic-system",
    hooks: "Optional[ObsHooks]" = None,
) -> Composition:
    """Compose transactions, generic objects and the generic controller.

    ``object_factory`` may also be a mapping from object name to factory
    when different objects use different algorithms.  ``hooks`` is
    forwarded to the generic controller so observers see commit/abort/
    report/inform dispatch.
    """
    components: List[IOAutomaton] = [GenericController(system_type, hooks=hooks)]
    for obj in system_type.object_names():
        if isinstance(object_factory, Mapping):
            factory = object_factory[obj]
        else:
            factory = object_factory
        generic_object = factory(obj, system_type)
        if not isinstance(generic_object, GenericObject):
            raise TypeError(f"factory for {obj} did not build a GenericObject")
        components.append(generic_object)
    for transaction, program in sorted(collect_programs(programs).items()):
        components.append(ProgramTransaction(transaction, program))
    return Composition(components, name=name)
