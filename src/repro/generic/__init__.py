"""Generic systems: controller, generic object signature, composition (Section 5.1)."""

from .controller import GenericController, GenericControllerState
from .objects import GenericObject
from .system import ObjectFactory, make_generic_system
from .validation import RunOutcome, ValidationReport, validate_object_algorithm

__all__ = [
    "GenericController",
    "GenericControllerState",
    "GenericObject",
    "ObjectFactory",
    "make_generic_system",
    "RunOutcome",
    "ValidationReport",
    "validate_object_algorithm",
]
