"""A validation battery for user-defined generic object algorithms.

The paper's modularity promise cuts both ways: anyone may plug in their
own concurrency control/recovery object, and *should then validate it
the way this library validates Moss locking and undo logging*.  This
module packages that battery:

* randomized driver runs across seeds, policies and abort rates, each
  behavior judged by the Theorem 8/19 certifier (with witness);
* simple-behavior well-formedness of every produced run;
* the completion-order check (the Propositions 16/24 proof argument) —
  reported but not required, since a correct algorithm may serialise in
  an order other than completion order (MVTO legitimately fails it);
* small-instance cross-examination against the brute-force oracle.

Returns a structured :class:`ValidationReport`; `passed` is the overall
verdict.  See ``docs/TUTORIAL.md`` for the data-type-level checks that
complement this system-level battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.completion_order import edges_respect_completion_order
from ..core.correctness import certify
from ..core.oracle import oracle_serially_correct
from ..core.events import serial_projection
from ..core.serialization_graph import build_serialization_graph
from ..sim.driver import run_system
from ..sim.faults import AbortInjector
from ..sim.policies import EagerInformPolicy, RandomPolicy
from ..sim.workload import ObjectKind, RWKind, WorkloadConfig, generate_workload
from .system import ObjectFactory, make_generic_system

__all__ = ["RunOutcome", "ValidationReport", "validate_object_algorithm"]


@dataclass
class RunOutcome:
    """The judgement of one validation run."""

    seed: int
    policy: str
    abort_rate: float
    certified: bool
    witness_ok: bool
    simple_ok: bool
    completion_order_ok: bool
    oracle_ok: Optional[bool]  # None when not attempted (instance too big)
    detail: str = ""


@dataclass
class ValidationReport:
    """Aggregate result of :func:`validate_object_algorithm`."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """All runs certified, witnesses valid, inputs well-formed, and no
        oracle disagreement (completion order is informational only)."""
        return all(
            o.certified and o.witness_ok and o.simple_ok and o.oracle_ok is not False
            for o in self.outcomes
        )

    @property
    def completion_order_always_held(self) -> bool:
        """True when every run's SG edges sat inside the completion order —
        evidence the algorithm serialises by completion, like Moss/undo."""
        return all(o.completion_order_ok for o in self.outcomes)

    def failures(self) -> List[RunOutcome]:
        """The outcomes that make :attr:`passed` false."""
        return [
            o
            for o in self.outcomes
            if not (o.certified and o.witness_ok and o.simple_ok)
            or o.oracle_ok is False
        ]

    def summary(self) -> str:
        """One-paragraph human summary."""
        verdict = "PASSED" if self.passed else "FAILED"
        completion = (
            "completion-order serialisation held throughout"
            if self.completion_order_always_held
            else "some runs serialise outside completion order (not an error)"
        )
        return (
            f"{verdict}: {len(self.outcomes)} runs, "
            f"{len(self.failures())} failing; {completion}."
        )


def validate_object_algorithm(
    factory: ObjectFactory,
    kind: Optional[ObjectKind] = None,
    seeds: Sequence[int] = range(5),
    abort_rates: Sequence[float] = (0.0, 0.2),
    top_level: int = 4,
    objects: int = 2,
    max_depth: int = 2,
    max_steps: int = 6000,
    oracle_budget: int = 2000,
) -> ValidationReport:
    """Run the standard validation battery against an object algorithm.

    ``factory`` builds the generic object (``factory(obj, system_type)``);
    ``kind`` supplies workloads whose specs the factory accepts (defaults
    to read/write objects).  Small instances are additionally checked
    against the brute-force oracle.
    """
    from ..serial.simple_db import check_simple_behavior

    kind = kind if kind is not None else RWKind()
    report = ValidationReport()
    for abort_rate in abort_rates:
        for seed in seeds:
            config = WorkloadConfig(
                seed=seed,
                top_level=top_level,
                objects=objects,
                max_depth=max_depth,
                kind=kind,
            )
            system_type, programs = generate_workload(config)
            system = make_generic_system(system_type, programs, factory)
            policy_name = "eager" if seed % 2 == 0 else "random"
            base = (
                EagerInformPolicy(seed=seed)
                if policy_name == "eager"
                else RandomPolicy(seed)
            )
            policy = (
                AbortInjector(base, abort_rate=abort_rate, seed=seed)
                if abort_rate
                else base
            )
            result = run_system(
                system, policy, system_type, max_steps=max_steps,
                resolve_deadlocks=True,
            )
            serial = serial_projection(result.behavior)
            certificate = certify(result.behavior, system_type)
            graph = build_serialization_graph(serial, system_type)
            oracle_ok: Optional[bool] = None
            if top_level <= 4 and certificate.certified:
                oracle_ok = bool(
                    oracle_serially_correct(
                        result.behavior, system_type, max_orders=oracle_budget
                    )
                )
            detail = "" if certificate.certified else certificate.explain()
            report.outcomes.append(
                RunOutcome(
                    seed=seed,
                    policy=policy_name,
                    abort_rate=abort_rate,
                    certified=certificate.certified,
                    witness_ok=not certificate.witness_problems,
                    simple_ok=not check_simple_behavior(serial, system_type),
                    completion_order_ok=not edges_respect_completion_order(
                        serial, graph
                    ),
                    oracle_ok=oracle_ok,
                    detail=detail,
                )
            )
    return report
