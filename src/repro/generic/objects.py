"""The generic object automaton signature (Section 5.1).

A generic object for ``X`` is responsible for concurrency control and
recovery at ``X``.  Besides the CREATE inputs and REQUEST_COMMIT outputs
of a serial object, it receives ``INFORM_COMMIT_AT(X)OF(T)`` and
``INFORM_ABORT_AT(X)OF(T)`` inputs telling it the fate of (arbitrary)
transactions.  :class:`GenericObject` fixes the signature; concrete
algorithms — Moss locking (:mod:`repro.locking.moss`) and undo logging
(:mod:`repro.undo.logging`) — implement the transitions.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Iterator

from ..automata.base import IOAutomaton
from ..core.actions import Action, Create, InformAbort, InformCommit, RequestCommit
from ..core.names import ObjectName, SystemType, TransactionName

__all__ = ["GenericObject"]


class GenericObject(IOAutomaton):
    """Base class fixing the generic-object signature for one object name."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        self.obj = obj
        self.system_type = system_type

    def is_my_access(self, transaction: TransactionName) -> bool:
        return (
            self.system_type.is_access(transaction)
            and self.system_type.object_of(transaction) == self.obj
        )

    def is_input(self, action: Action) -> bool:
        if isinstance(action, Create):
            return self.is_my_access(action.transaction)
        if isinstance(action, (InformCommit, InformAbort)):
            return action.obj == self.obj
        return False

    def is_output(self, action: Action) -> bool:
        return isinstance(action, RequestCommit) and self.is_my_access(
            action.transaction
        )

    @abstractmethod
    def initial_state(self) -> Any: ...

    @abstractmethod
    def enabled(self, state: Any, action: Action) -> bool: ...

    @abstractmethod
    def effect(self, state: Any, action: Action) -> Any: ...

    @abstractmethod
    def enabled_outputs(self, state: Any) -> Iterator[Action]: ...

    def blocked_accesses(self, state: Any) -> Iterator[TransactionName]:
        """Accesses that are created, unanswered, and not currently enabled.

        Used by the simulation statistics (experiment E7) to measure how
        much concurrency an algorithm denies; algorithms override.
        """
        return iter(())
