"""A generic object with *no* concurrency control.

The undo logging object ``U_X`` (Section 6.2) delays a
``REQUEST_COMMIT`` until the operation commutes backward with every
uncommitted logged operation — that precondition is exactly what makes
the generic system serially correct.  :class:`PermissiveObject` drops
it: every created access is answered immediately with the value the
current log determines, dirty reads included.

That is deliberately *unsafe*.  The robustness validation bridge
(:mod:`repro.analysis.robustness`) uses it to realize the anomalous
interleavings a NOT-ROBUST verdict predicts: run the implicated
program templates over permissive objects, hand the behavior to the
certifier, and check that the serialization graph really does close a
cycle.  It doubles as the weakest member of the controller family
ROADMAP item 4 calls for — the baseline every isolation level is
measured against.

The log stays a legal serial behavior of ``S_X`` by construction (each
value is computed by replaying the log through ``spec.apply``), so the
object never blocks and runs always complete; only the *order* the
accesses committed in — and therefore the serialization graph — can go
wrong.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.names import ObjectName, SystemType, TransactionName
from ..generic.objects import GenericObject
from ..undo.logging import UndoLoggingObject, UndoLogState

__all__ = ["PermissiveObject"]


class PermissiveObject(UndoLoggingObject):
    """An undo-logging object that never waits: no commutativity gate,
    values read straight off the (possibly dirty) log."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        GenericObject.__init__(self, obj, system_type)
        self.spec = system_type.spec(obj)
        if not hasattr(self.spec, "apply"):
            raise TypeError(
                f"spec for {obj} lacks 'apply'; the permissive object "
                "replays its log through it"
            )
        self.name = f"P_{obj}"

    def _commutes_with_uncommitted(
        self, state: UndoLogState, transaction: TransactionName, value: Any
    ) -> bool:
        """No concurrency control: everything commutes."""
        return True

    def _forced_value(
        self, state: UndoLogState, transaction: TransactionName
    ) -> Optional[Any]:
        """The value the raw log determines — replay, don't validate."""
        op = self.system_type.access(transaction).op
        current = getattr(self.spec, "initial", None)
        for prior_op, _ in self._pairs(state.operations):
            current, _ = self.spec.apply(current, prior_op)
        _, value = self.spec.apply(current, op)
        return value
