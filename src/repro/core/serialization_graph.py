"""The serialization graph construction (Sections 4 and 6.1) — the paper's core.

``SG(beta)`` is a union of disjoint directed graphs ``SG(beta, T)``, one
per transaction ``T`` visible to ``T0``; the nodes of ``SG(beta, T)``
are children of ``T`` and the edges record the union of two relations on
siblings:

* ``conflict(beta)`` — ``(T, T')`` when a descendant access of ``T`` and
  a descendant access of ``T'`` performed *conflicting* operations in
  ``visible(beta, T0)``, in that order.  For read/write objects two
  operations conflict unless both are reads; for arbitrary types they
  conflict when they fail to commute backward (Section 6.1) — both cases
  are delegated to the object specification's ``conflicts`` predicate.
* ``precedes(beta)`` — ``(T, T')`` when their common parent saw a report
  for ``T`` before requesting the creation of ``T'``.  These edges
  capture the external-consistency obligations.

Acyclicity of ``SG(beta)`` (plus appropriate return values) is the
sufficient condition for serial correctness (Theorems 8 and 19),
implemented in :mod:`repro.core.correctness`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .actions import (
    Action,
    RequestCommit,
    RequestCreate,
    is_report,
)
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .events import StatusIndex, visible_projection
from .graph import CycleError, Digraph
from .history import HistoryIndex, spec_is_read_only
from .names import ROOT, ObjectName, SystemType, TransactionName, lca
from .sibling_order import SiblingOrder

__all__ = [
    "CONFLICT",
    "PRECEDES",
    "SiblingEdge",
    "conflict_pairs",
    "precedes_pairs",
    "SerializationGraph",
    "build_serialization_graph",
]

CONFLICT = "conflict"
PRECEDES = "precedes"


@dataclass(frozen=True)
class SiblingEdge:
    """A directed edge of the serialization graph, with provenance."""

    source: TransactionName
    target: TransactionName
    kind: str

    @property
    def parent(self) -> TransactionName:
        return self.source.parent

    def __str__(self) -> str:
        return f"{self.source} -[{self.kind}]-> {self.target}"


def conflict_pairs(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
    indexed: bool = True,
) -> List[SiblingEdge]:
    """The ``conflict(beta)`` sibling relation (Sections 4 / 6.1).

    Scans the access REQUEST_COMMIT events of ``visible(beta, T0)`` in
    order; every conflicting ordered pair of operations on the same
    object contributes an edge between the children of the accesses'
    least common ancestor (unless one access descends from the other, in
    which case no sibling pair exists).

    When ``index`` is a :class:`repro.core.history.HistoryIndex` covering
    ``behavior`` (and ``indexed`` is left on), enumeration runs off the
    index's per-object buckets: read-only runs are never compared against
    each other — only pairs with at least one state-changing operation
    reach the specification — and verdicts come from the index's shared
    :class:`repro.core.history.ConflictCache`.  ``indexed=False`` forces
    the all-pairs scan, kept as the A/B baseline.  An index carrying a
    columnar store (``HistoryIndex(..., columnar=True)``) resolves the
    relation from the dense int columns instead — same edges, one linear
    bitset sweep per read/write object.
    """
    if (
        indexed
        and isinstance(index, HistoryIndex)
        and index.system_type is system_type
        and index.covers(behavior)
    ):
        store = index.columnar
        if store is not None:
            from .columnar import columnar_conflict_edges

            return columnar_conflict_edges(store)
        return _conflict_pairs_indexed(index, system_type)
    index = index if index is not None else StatusIndex(behavior)
    visible = visible_projection(behavior, ROOT, index)
    per_object: Dict[ObjectName, List[Tuple[TransactionName, object, object]]] = {}
    for action in visible:
        if isinstance(action, RequestCommit) and system_type.is_access(
            action.transaction
        ):
            access = system_type.access(action.transaction)
            per_object.setdefault(access.obj, []).append(
                (action.transaction, access.op, action.value)
            )
    edges: Set[SiblingEdge] = set()
    for obj, events in per_object.items():
        spec = system_type.spec(obj)
        for i, (name_i, op_i, value_i) in enumerate(events):
            for name_j, op_j, value_j in events[i + 1 :]:
                if name_i.is_related_to(name_j):
                    continue
                if not spec.conflicts(op_i, value_i, op_j, value_j):
                    continue
                ancestor = lca(name_i, name_j)
                depth = ancestor.depth
                source = TransactionName(name_i.path[: depth + 1])
                target = TransactionName(name_j.path[: depth + 1])
                edges.add(SiblingEdge(source, target, CONFLICT))
    return sorted(edges, key=lambda e: (e.source, e.target))


def _conflict_pairs_indexed(
    index: HistoryIndex, system_type: SystemType
) -> List[SiblingEdge]:
    """Sub-quadratic ``conflict(beta)`` over a covering :class:`HistoryIndex`.

    For each object, classify the visible operations by read-only-ness
    once; a read-only operation is compared only against the *writers*
    after it (a read/read pair never conflicts — both operations preserve
    the state, so they commute backward), while a writer is compared
    against everything after it.  Each surviving pair's verdict is
    memoized in the index's conflict cache.  Read-heavy histories drop
    from O(k²) spec consultations to O(k·w) with ``w`` writers.
    """
    edges: Set[SiblingEdge] = set()
    cache = index.conflict_cache
    checked = 0
    skipped = 0
    for obj in index.objects_with_accesses():
        spec = system_type.spec(obj)
        events = index.visible_access_commits(obj)
        k = len(events)
        if k < 2:
            continue
        read_only = [spec_is_read_only(spec, entry[2]) for entry in events]
        writer_positions = [i for i in range(k) if not read_only[i]]
        compared = 0
        for i in range(k):
            _, name_i, op_i, value_i = events[i]
            if read_only[i]:
                partners = writer_positions[bisect_right(writer_positions, i) :]
            else:
                partners = range(i + 1, k)
            for j in partners:
                compared += 1
                _, name_j, op_j, value_j = events[j]
                if name_i.is_related_to(name_j):
                    continue
                if not cache.conflicts(spec, op_i, value_i, op_j, value_j):
                    continue
                depth = lca(name_i, name_j).depth + 1
                edges.add(
                    SiblingEdge(name_i.prefix(depth), name_j.prefix(depth), CONFLICT)
                )
        checked += compared
        skipped += k * (k - 1) // 2 - compared
    index.record_conflict_metrics(checked, skipped)
    return sorted(edges, key=lambda e: (e.source, e.target))


def precedes_pairs(
    behavior: Sequence[Action],
    index: Optional[StatusIndex] = None,
) -> List[SiblingEdge]:
    """The ``precedes(beta)`` sibling relation (Section 4).

    ``(T, T')`` when the common parent is visible to ``T0`` and a report
    event for ``T`` occurs before a ``REQUEST_CREATE(T')`` in ``beta``.

    A covering :class:`repro.core.history.HistoryIndex` supplies the
    first-report and request-create position maps (grouped by parent), so
    only same-parent candidates are examined; otherwise both maps are
    rebuilt by a scan.
    """
    if isinstance(index, HistoryIndex) and index.covers(behavior):
        store = index.columnar
        if store is not None:
            from .columnar import columnar_precedes_edges

            return columnar_precedes_edges(store)
        first_report = index.first_report
        request_positions = index.request_create_positions
        edges: Set[SiblingEdge] = set()
        for reported, report_position in first_report.items():
            parent = reported.parent
            if not index.is_visible(parent, ROOT):
                continue
            for requested in index.requests_by_parent.get(parent, ()):
                if requested == reported:
                    continue
                if report_position < request_positions[requested]:
                    edges.add(SiblingEdge(reported, requested, PRECEDES))
        return sorted(edges, key=lambda e: (e.source, e.target))
    index = index if index is not None else StatusIndex(behavior)
    first_report = {}
    request_creates: Dict[TransactionName, int] = {}
    for position, action in enumerate(behavior):
        if is_report(action):
            first_report.setdefault(action.transaction, position)
        elif isinstance(action, RequestCreate):
            request_creates.setdefault(action.transaction, position)
    edges = set()
    for reported, report_position in first_report.items():
        parent = reported.parent
        if not index.is_visible(parent, ROOT):
            continue
        for requested, request_position in request_creates.items():
            if requested == reported or requested.is_root:
                continue
            if requested.parent != parent:
                continue
            if report_position < request_position:
                edges.add(SiblingEdge(reported, requested, PRECEDES))
    return sorted(edges, key=lambda e: (e.source, e.target))


class SerializationGraph:
    """``SG(beta)``: one digraph per transaction visible to ``T0``.

    Provides acyclicity checks, cycle extraction for diagnostics, and
    topological sorting into the :class:`SiblingOrder` that the
    correctness theorem's proof (and our constructive witness) uses.
    """

    def __init__(self) -> None:
        self._graphs: Dict[TransactionName, Digraph[TransactionName]] = {}

    def graph_for(self, parent: TransactionName) -> Digraph[TransactionName]:
        """The (created-on-demand) digraph of the sibling group under ``parent``."""
        if parent not in self._graphs:
            self._graphs[parent] = Digraph()
        return self._graphs[parent]

    def peek_group(self, parent: TransactionName) -> Optional[Digraph[TransactionName]]:
        """The sibling group under ``parent`` if it exists, without creating it."""
        return self._graphs.get(parent)

    def add_node(self, node: TransactionName) -> None:
        """Add ``node`` to its parent's sibling group."""
        self.graph_for(node.parent).add_node(node)

    def add_edge(self, edge: SiblingEdge) -> None:
        """Add a labelled sibling edge to its parent's group."""
        self.graph_for(edge.parent).add_edge(edge.source, edge.target, edge.kind)

    def remove_node(self, node: TransactionName) -> None:
        """Remove ``node`` (and incident edges) from its parent's group.

        Part of the online certifier's prefix compaction: a retired
        sibling can be dropped without touching the rest of the group.
        Unknown nodes are a no-op; an emptied group is deleted.
        """
        group = self._graphs.get(node.parent)
        if group is None:
            return
        group.remove_node(node)
        if not len(group):
            del self._graphs[node.parent]

    def drop_group(self, parent: TransactionName) -> None:
        """Delete the whole sibling group under ``parent`` (compaction)."""
        self._graphs.pop(parent, None)

    def parents(self) -> Tuple[TransactionName, ...]:
        """The parents whose sibling groups have nodes or edges, sorted."""
        return tuple(sorted(self._graphs))

    def nodes(self) -> Tuple[TransactionName, ...]:
        """All nodes across all sibling groups."""
        return tuple(
            node for parent in self.parents() for node in self._graphs[parent].nodes()
        )

    def edges(self) -> Iterator[SiblingEdge]:
        """Iterate every edge of every sibling group, with its kind label.

        Labels arrive pre-sorted from :meth:`Digraph.edges` (sorted at
        insert), so iteration does no per-edge sorting.
        """
        for parent in self.parents():
            for src, dst, labels in self._graphs[parent].edges():
                for label in labels or ("",):
                    yield SiblingEdge(src, dst, label)

    def edge_count(self) -> int:
        """Total number of edges across all sibling groups."""
        return sum(g.edge_count() for g in self._graphs.values())

    def is_acyclic(self) -> bool:
        """True iff every sibling group's graph is acyclic."""
        return all(graph.is_acyclic() for graph in self._graphs.values())

    def find_cycle(self) -> Optional[Tuple[TransactionName, List[TransactionName]]]:
        """Return ``(parent, cycle)`` for some cyclic sibling group, or None."""
        for parent in self.parents():
            cycle = self._graphs[parent].find_cycle()
            if cycle is not None:
                return parent, cycle
        return None

    def to_sibling_order(self) -> SiblingOrder:
        """Topologically sort every sibling group into a total order.

        This is the order ``R`` chosen in the proof of Theorem 8.  Raises
        :class:`repro.core.graph.CycleError` when the graph is cyclic.
        """
        order = SiblingOrder()
        for parent in self.parents():
            order.set_order(parent, self._graphs[parent].topological_sort())
        return order

    def to_networkx(self) -> Any:
        """Export the union of all sibling graphs as one networkx DiGraph."""
        import networkx as nx

        graph = nx.DiGraph()
        for parent in self.parents():
            for node in self._graphs[parent].nodes():
                graph.add_node(node, parent=parent)
            for src, dst, labels in self._graphs[parent].edges():
                graph.add_edge(src, dst, kinds=list(labels))
        return graph

    def __repr__(self) -> str:
        return (
            f"SerializationGraph(groups={len(self._graphs)}, "
            f"nodes={len(self.nodes())}, edges={self.edge_count()})"
        )


def build_serialization_graph(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    indexed: bool = True,
    columnar: bool = False,
) -> SerializationGraph:
    """Construct ``SG(beta)`` from a sequence of serial actions.

    ``behavior`` is typically ``serial(beta)`` of a generic behavior, or
    a simple behavior directly.  Nodes are seeded with every child whose
    creation was requested under a parent visible to ``T0``, so that
    topological sorting yields an order covering all relevant siblings.

    With no ``index``, one :class:`repro.core.history.HistoryIndex` is
    built here and drives every phase; ``indexed=False`` keeps the naive
    :class:`StatusIndex` scans as the A/B baseline.  ``tracer`` adds
    sub-phase spans (node seeding, conflict and precedes enumeration);
    ``metrics`` records node/edge gauges.  Both default to no-ops.

    ``columnar=True`` builds the graph from the dense-int engine: the
    behavior streams into a :class:`repro.core.columnar.ColumnarHistory`
    (reusing the store on a covering ``HistoryIndex(..., columnar=True)``
    when one is passed) and the returned graph is the lazily-materialised
    :class:`repro.core.columnar.ColumnarSerializationGraph` — identical
    structure, cycles and sibling orders to the other lanes.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if columnar:
        from .columnar import build_columnar_graph

        store = None
        if (
            isinstance(index, HistoryIndex)
            and index.system_type is system_type
            and index.covers(behavior)
        ):
            store = index.columnar
        if store is None:
            store = HistoryIndex(
                behavior, system_type, metrics, columnar=True
            ).columnar
        assert store is not None
        return build_columnar_graph(store, tracer=tracer, metrics=metrics)
    if index is None:
        index = (
            HistoryIndex(behavior, system_type, metrics)
            if indexed
            else StatusIndex(behavior)
        )
    sg = SerializationGraph()
    with tracer.span("sg.seed_nodes"):
        for transaction in index.create_requested:
            if index.is_visible(transaction.parent, ROOT):
                sg.add_node(transaction)
    with tracer.span("sg.conflict_pairs", events=len(behavior)):
        conflicts = conflict_pairs(behavior, system_type, index, indexed=indexed)
        for edge in conflicts:
            sg.add_edge(edge)
    with tracer.span("sg.precedes_pairs"):
        precedes = precedes_pairs(behavior, index)
        for edge in precedes:
            sg.add_edge(edge)
    if metrics is not None:
        metrics.set_gauge("sg.groups", len(sg.parents()))
        metrics.set_gauge("sg.nodes", len(sg.nodes()))
        metrics.set_gauge("sg.edges", sg.edge_count())
        metrics.inc("sg.edges.conflict", len(conflicts))
        metrics.inc("sg.edges.precedes", len(precedes))
    return sg
