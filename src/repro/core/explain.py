"""SG-cycle provenance: map violation edges back to operation pairs.

A latched cycle ``(parent, [S1, S2, ..., S1])`` says *that* the behavior
is uncertifiable; an operator debugging a rejected stream needs *why* —
which concrete operations, at which stream positions, with which return
values, induced each edge.  The serialization graph itself does not
carry that: an edge collapses every conflicting descendant pair to one
``(sibling, sibling)`` arrow, and the online certifier additionally
drops intra-subtree evidence under compaction.

This module re-derives the evidence from a :class:`HistoryIndex` over
the full behavior, the same structures :func:`conflict_pairs` and
:func:`precedes_pairs` enumerate from — so the witnesses are consistent
with the batch relations *by construction*:

* a **conflict witness** for edge ``(S, T)`` under ``parent`` is an
  ordered pair of visible access ``REQUEST_COMMIT`` events on one
  object, the first under ``S`` and the second under ``T``, whose
  operations fail to commute backward per the object specification
  (``S``/``T`` being distinct siblings forces ``lca = parent``, exactly
  the pair :func:`conflict_pairs` would collapse to this edge);
* a **precedes witness** is the first report position of ``S`` against
  the request-create position of ``T`` under their (visible) common
  parent — the external-consistency obligation of Section 4.

:func:`explain_cycle` assembles one witness list per cycle edge;
:func:`explain_behavior` is the one-call form (build the index, find a
cycle, explain it) behind the ``repro explain`` CLI, whose DOT rendering
(:func:`repro.report.serialization_graph_to_dot` with an
``explanation=``) annotates the guilty edges.  Everything here is
cold-path diagnostics: nothing is invoked unless a violation is being
investigated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .actions import Action
from .history import HistoryIndex
from .names import ROOT, ObjectName, SystemType, TransactionName
from .serialization_graph import (
    CONFLICT,
    PRECEDES,
    SerializationGraph,
    SiblingEdge,
    build_serialization_graph,
)

__all__ = [
    "ConflictWitness",
    "PrecedesWitness",
    "EdgeExplanation",
    "CycleExplanation",
    "explain_edge",
    "explain_cycle",
    "explain_behavior",
]


@dataclass(frozen=True)
class ConflictWitness:
    """One ordered pair of conflicting visible operations behind an edge."""

    obj: ObjectName
    first: TransactionName
    first_position: int
    first_op: Any
    first_value: Any
    second: TransactionName
    second_position: int
    second_op: Any
    second_value: Any

    def to_dict(self) -> Dict[str, Any]:
        return {
            "object": str(self.obj),
            "first": {
                "transaction": str(self.first),
                "position": self.first_position,
                "op": str(self.first_op),
                "value": self.first_value,
            },
            "second": {
                "transaction": str(self.second),
                "position": self.second_position,
                "op": str(self.second_op),
                "value": self.second_value,
            },
        }

    def __str__(self) -> str:
        return (
            f"{self.obj}: {self.first} {self.first_op}@{self.first_position}"
            f" then {self.second} {self.second_op}@{self.second_position}"
        )


@dataclass(frozen=True)
class PrecedesWitness:
    """The report-before-request evidence behind a PRECEDES edge."""

    reported: TransactionName
    report_position: int
    requested: TransactionName
    request_position: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reported": str(self.reported),
            "report_position": self.report_position,
            "requested": str(self.requested),
            "request_position": self.request_position,
        }

    def __str__(self) -> str:
        return (
            f"report of {self.reported}@{self.report_position} before"
            f" REQUEST_CREATE({self.requested})@{self.request_position}"
        )


@dataclass(frozen=True)
class EdgeExplanation:
    """Everything the history says about one sibling edge."""

    source: TransactionName
    target: TransactionName
    conflicts: Tuple[ConflictWitness, ...]
    precedes: Tuple[PrecedesWitness, ...]

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The edge labels the witnesses substantiate."""
        kinds: List[str] = []
        if self.conflicts:
            kinds.append(CONFLICT)
        if self.precedes:
            kinds.append(PRECEDES)
        return tuple(kinds)

    @property
    def witnessed(self) -> bool:
        return bool(self.conflicts or self.precedes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": str(self.source),
            "target": str(self.target),
            "kinds": list(self.kinds),
            "conflicts": [witness.to_dict() for witness in self.conflicts],
            "precedes": [witness.to_dict() for witness in self.precedes],
        }


@dataclass(frozen=True)
class CycleExplanation:
    """A full provenance report for one SG cycle."""

    parent: TransactionName
    nodes: Tuple[TransactionName, ...]
    edges: Tuple[EdgeExplanation, ...]

    @property
    def complete(self) -> bool:
        """True iff every edge of the cycle has at least one witness."""
        return all(edge.witnessed for edge in self.edges)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parent": str(self.parent),
            "nodes": [str(node) for node in self.nodes],
            "complete": self.complete,
            "edges": [edge.to_dict() for edge in self.edges],
        }

    def edge_pairs(self) -> Tuple[Tuple[TransactionName, TransactionName], ...]:
        """The (source, target) pairs of the cycle, in traversal order."""
        return tuple(
            (explanation.source, explanation.target)
            for explanation in self.edges
        )


def explain_edge(
    index: HistoryIndex,
    system_type: SystemType,
    source: TransactionName,
    target: TransactionName,
    max_witnesses: int = 0,
) -> EdgeExplanation:
    """All operation-pair evidence for the sibling edge ``source → target``.

    ``source`` and ``target`` must be distinct siblings (same parent);
    the index must cover the behavior under explanation and have been
    built with ``system_type``.  ``max_witnesses`` caps the conflict
    witnesses collected per object (0 = unbounded) — a hot object can
    carry quadratically many, and one is enough to substantiate the
    edge.
    """
    if source.parent != target.parent or source == target:
        raise ValueError(
            f"{source} and {target} are not siblings; no SG edge exists"
        )
    if index.system_type is not system_type:
        raise ValueError("index was built for a different system type")
    conflicts: List[ConflictWitness] = []
    cache = index.conflict_cache
    for obj in index.objects_with_accesses():
        spec = system_type.spec(obj)
        events = index.visible_access_commits(obj)
        # descendants of source/target on this object, in behavior order
        under_source = [e for e in events if source.is_ancestor_of(e[1])]
        under_target = [e for e in events if target.is_ancestor_of(e[1])]
        if not under_source or not under_target:
            continue
        found = 0
        for first_pos, first_name, first_op, first_value in under_source:
            for second_pos, second_name, second_op, second_value in under_target:
                if second_pos < first_pos:
                    continue
                if not cache.conflicts(
                    spec, first_op, first_value, second_op, second_value
                ):
                    continue
                # source/target are distinct siblings, so lca(first,
                # second) is their parent: exactly the pair
                # conflict_pairs collapses to this edge
                conflicts.append(
                    ConflictWitness(
                        obj,
                        first_name,
                        first_pos,
                        first_op,
                        first_value,
                        second_name,
                        second_pos,
                        second_op,
                        second_value,
                    )
                )
                found += 1
                if max_witnesses and found >= max_witnesses:
                    break
            if max_witnesses and found >= max_witnesses:
                break
    precedes: List[PrecedesWitness] = []
    report_position = index.first_report.get(source)
    request_position = index.request_create_positions.get(target)
    if (
        report_position is not None
        and request_position is not None
        and report_position < request_position
        and index.is_visible(source.parent, ROOT)
    ):
        precedes.append(
            PrecedesWitness(source, report_position, target, request_position)
        )
    return EdgeExplanation(source, target, tuple(conflicts), tuple(precedes))


def explain_cycle(
    behavior: Sequence[Action],
    system_type: SystemType,
    cycle: Tuple[TransactionName, Sequence[TransactionName]],
    index: Optional[HistoryIndex] = None,
    max_witnesses: int = 0,
) -> CycleExplanation:
    """Explain every edge of ``cycle`` (as latched by a certifier).

    ``cycle`` is the ``(parent, [S1, ..., S1])`` shape
    :meth:`SerializationGraph.find_cycle` and the online certifier
    produce — the first node repeated last, so consecutive pairs are
    exactly the cycle's edges.
    """
    parent, nodes = cycle
    if len(nodes) < 2:
        raise ValueError("a cycle needs at least one edge")
    if index is None or not index.covers(behavior):
        index = HistoryIndex(behavior, system_type)
    edges = tuple(
        explain_edge(
            index, system_type, nodes[i], nodes[i + 1], max_witnesses
        )
        for i in range(len(nodes) - 1)
    )
    return CycleExplanation(parent, tuple(nodes), edges)


def explain_behavior(
    behavior: Sequence[Action],
    system_type: SystemType,
    max_witnesses: int = 0,
) -> Optional[Tuple[CycleExplanation, SerializationGraph]]:
    """Find one SG cycle in ``behavior`` and explain it, or ``None``.

    The one-call form behind ``repro explain``: builds the shared
    history index, constructs ``SG(beta)`` from it, extracts some cycle
    and maps every edge back to operation pairs.  Returns the
    explanation together with the graph (for DOT rendering).
    """
    index = HistoryIndex(behavior, system_type)
    graph = build_serialization_graph(behavior, system_type, index=index)
    cycle = graph.find_cycle()
    if cycle is None:
        return None
    return (
        explain_cycle(
            behavior, system_type, cycle, index=index, max_witnesses=max_witnesses
        ),
        graph,
    )
