"""Sibling orders and their extensions ``R_trans`` and ``R_event`` (Section 2.3.2).

A *sibling order* ``R`` is an irreflexive partial order relating only
siblings in the transaction tree.  It extends to

* ``R_trans`` on arbitrary transaction names: ``(T, T')`` when ``T`` and
  ``T'`` descend from siblings ``U`` and ``U'`` with ``(U, U') in R``;
* ``R_event(beta)`` on events of a behavior: ``(phi, pi)`` when their
  lowtransactions are related by ``R_trans``.

The Serializability Theorem needs ``R`` to be *suitable* for a behavior
``beta`` and a transaction ``T``; :func:`is_suitable` implements the
two-part definition, and :func:`consistent_partial_orders` is the check
underlying Lemma 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .actions import Action, hightransaction, is_serial_action, lowtransaction
from .events import AffectsRelation, StatusIndex, visible_projection
from .graph import Digraph
from .history import HistoryIndex
from .names import TransactionName, lca

__all__ = ["SiblingOrder", "is_suitable", "consistent_partial_orders"]


class SiblingOrder:
    """A sibling order stored as per-parent ordered child sequences.

    The common case (and the one produced by topologically sorting a
    serialization graph) is a *total* order on each relevant sibling
    group; arbitrary irreflexive sibling partial orders can be expressed
    via :meth:`from_pairs`, which stores them as explicit pair sets.
    """

    def __init__(
        self,
        orders: Optional[Mapping[TransactionName, Sequence[TransactionName]]] = None,
        extra_pairs: Optional[Iterable[Tuple[TransactionName, TransactionName]]] = None,
    ) -> None:
        self._rank: Dict[TransactionName, Dict[TransactionName, int]] = {}
        self._pairs: Set[Tuple[TransactionName, TransactionName]] = set()
        for parent, children in (orders or {}).items():
            self.set_order(parent, children)
        for first, second in extra_pairs or ():
            self.add_pair(first, second)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[TransactionName, TransactionName]]
    ) -> "SiblingOrder":
        return cls(extra_pairs=pairs)

    def set_order(
        self, parent: TransactionName, children: Sequence[TransactionName]
    ) -> None:
        """Impose a total order on (some of) the children of ``parent``."""
        ranks: Dict[TransactionName, int] = {}
        for position, child in enumerate(children):
            if child.is_root or child.parent != parent:
                raise ValueError(f"{child} is not a child of {parent}")
            if child in ranks:
                raise ValueError(f"duplicate child {child}")
            ranks[child] = position
        self._rank[parent] = ranks

    def add_pair(self, first: TransactionName, second: TransactionName) -> None:
        """Record the single ordered sibling pair ``(first, second)``."""
        if not first.is_sibling_of(second):
            raise ValueError(f"{first} and {second} are not siblings")
        if (second, first) in self._pairs:
            raise ValueError(f"pair would make the order reflexive on {first},{second}")
        self._pairs.add((first, second))

    # -- queries ---------------------------------------------------------

    def holds(self, first: TransactionName, second: TransactionName) -> bool:
        """True iff ``(first, second)`` is in ``R``."""
        if first == second:
            return False
        if (first, second) in self._pairs:
            return True
        if first.is_root or second.is_root or first.parent != second.parent:
            return False
        ranks = self._rank.get(first.parent)
        if ranks is None or first not in ranks or second not in ranks:
            return False
        return ranks[first] < ranks[second]

    def orders(self, first: TransactionName, second: TransactionName) -> bool:
        """True iff ``R`` relates the two siblings in either direction."""
        return self.holds(first, second) or self.holds(second, first)

    def trans_holds(self, first: TransactionName, second: TransactionName) -> bool:
        """``R_trans``: descendants of ``R``-related siblings are related."""
        if first == second or first.is_related_to(second):
            return False
        depth = lca(first, second).depth + 1
        return self.holds(first.prefix(depth), second.prefix(depth))

    def event_pairs(self, behavior: Sequence[Action]) -> List[Tuple[int, int]]:
        """``R_event(beta)`` as index pairs over the serial events of ``beta``."""
        lows = [
            (i, lowtransaction(action))
            for i, action in enumerate(behavior)
            if is_serial_action(action)
        ]
        pairs: List[Tuple[int, int]] = []
        for i, low_i in lows:
            for j, low_j in lows:
                if i != j and self.trans_holds(low_i, low_j):
                    pairs.append((i, j))
        return pairs

    def pairs(self) -> Set[Tuple[TransactionName, TransactionName]]:
        """All explicit pairs of the order (materialising total orders)."""
        result = set(self._pairs)
        for ranks in self._rank.values():
            ordered = sorted(ranks, key=ranks.__getitem__)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    result.add((first, second))
        return result

    def sorted_children(
        self, parent: TransactionName, children: Iterable[TransactionName]
    ) -> List[TransactionName]:
        """Sort ``children`` of ``parent`` consistently with the order.

        Children the order does not mention are placed after ordered
        ones, in name order, keeping the result deterministic.
        """
        ranks = self._rank.get(parent, {})

        def key(child: TransactionName) -> Tuple[int, object]:
            return (0, ranks[child]) if child in ranks else (1, child)

        return sorted(children, key=key)

    def __repr__(self) -> str:
        total = sum(len(r) for r in self._rank.values())
        return f"SiblingOrder(ordered_children={total}, extra_pairs={len(self._pairs)})"


def consistent_partial_orders(
    pairs_a: Iterable[Tuple[int, int]],
    pairs_b: Iterable[Tuple[int, int]],
    nodes: Iterable[int],
) -> bool:
    """True iff the union of the two relations on ``nodes`` is acyclic.

    This is the notion of "consistent partial orders" used by Lemma 1 and
    the suitability condition, specialised to event-index relations.
    """
    graph: Digraph[int] = Digraph()
    node_set = set(nodes)
    for node in node_set:
        graph.add_node(node)
    for i, j in pairs_a:
        if i in node_set and j in node_set:
            graph.add_edge(i, j, "a")
    for i, j in pairs_b:
        if i in node_set and j in node_set:
            graph.add_edge(i, j, "b")
    return graph.is_acyclic()


def is_suitable(
    order: SiblingOrder,
    behavior: Sequence[Action],
    to: TransactionName,
    index: Optional[StatusIndex] = None,
) -> bool:
    """Check that ``order`` is suitable for ``behavior`` and ``to`` (Section 2.3.2).

    1. ``order`` must order all sibling pairs that are lowtransactions of
       actions in ``visible(behavior, to)``.
    2. ``R_event(behavior)`` and ``affects(behavior)`` must be consistent
       partial orders on the events of ``visible(behavior, to)``.

    With no ``index``, a :class:`repro.core.history.HistoryIndex` is
    built so the per-event visibility tests below hit memoized verdicts.
    """
    index = index if index is not None else HistoryIndex(behavior)
    visible_indices = [
        i
        for i, action in enumerate(behavior)
        if is_serial_action(action) and index.is_visible(hightransaction(action), to)
    ]
    lows = {
        lowtransaction(behavior[i]) for i in visible_indices
    }
    for first in lows:
        for second in lows:
            if first.is_sibling_of(second) and not order.orders(first, second):
                return False
    affects = AffectsRelation(behavior)
    return consistent_partial_orders(
        order.event_pairs(behavior),
        affects.pairs(),
        visible_indices,
    )
