"""JSON serialization for behaviors and system types.

Recorded behaviors are the natural interchange format of this library —
a production system would log its serial actions and audit them offline
with the certifier.  This module round-trips behaviors and system types
(read/write objects and all built-in data types) through plain JSON.

Values and operation parameters are restricted to JSON-representable
scalars plus tuples/frozensets of them; this covers every type shipped
with the library.  Unknown specs or exotic values raise ``TypeError``
at encode time rather than producing lossy output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from .actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from .names import Access, ObjectName, SystemType, TransactionName
from .rw_semantics import ReadOp, RWSpec, WriteOp

__all__ = [
    "behavior_to_json",
    "behavior_from_json",
    "system_type_to_json",
    "system_type_from_json",
    "dump_case",
    "load_case",
]

_ACTION_KINDS = {
    "create": Create,
    "request_create": RequestCreate,
    "request_commit": RequestCommit,
    "commit": Commit,
    "abort": Abort,
    "report_commit": ReportCommit,
    "report_abort": ReportAbort,
    "inform_commit": InformCommit,
    "inform_abort": InformAbort,
}
_KIND_OF = {cls: kind for kind, cls in _ACTION_KINDS.items()}


def _encode_value(value: Any) -> Any:
    """Encode a return value / op parameter as tagged JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "scalar", "v": value}
    if isinstance(value, tuple):
        return {"t": "tuple", "v": [_encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        return {
            "t": "frozenset",
            "v": sorted((_encode_value(item) for item in value), key=json.dumps),
        }
    raise TypeError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def _decode_value(blob: Any) -> Any:
    tag = blob["t"]
    if tag == "scalar":
        return blob["v"]
    if tag == "tuple":
        return tuple(_decode_value(item) for item in blob["v"])
    if tag == "frozenset":
        return frozenset(_decode_value(item) for item in blob["v"])
    raise ValueError(f"unknown value tag {tag!r}")


def _encode_op(op: Any) -> Dict[str, Any]:
    """Encode an operation descriptor (RW ops and all built-in type ops)."""
    from ..spec import builtin

    table = [
        (ReadOp, ()),
        (WriteOp, ("data",)),
        (builtin.RegRead, ()),
        (builtin.RegWrite, ("data",)),
        (builtin.CounterInc, ("amount",)),
        (builtin.CounterRead, ()),
        (builtin.SetInsert, ("element",)),
        (builtin.SetRemove, ("element",)),
        (builtin.SetMember, ("element",)),
        (builtin.Deposit, ("amount",)),
        (builtin.Withdraw, ("amount",)),
        (builtin.BalanceRead, ()),
        (builtin.Enqueue, ("element",)),
        (builtin.Dequeue, ()),
        (builtin.MapPut, ("key", "value")),
        (builtin.MapGet, ("key",)),
        (builtin.MapRemove, ("key",)),
    ]
    for cls, fields in table:
        if isinstance(op, cls):
            return {
                "op": cls.__name__,
                "args": {name: _encode_value(getattr(op, name)) for name in fields},
            }
    raise TypeError(f"cannot encode operation {op!r}")


def _decode_op(blob: Mapping[str, Any]) -> Any:
    from ..spec import builtin

    classes = {
        cls.__name__: cls
        for cls in (
            ReadOp,
            WriteOp,
            builtin.RegRead,
            builtin.RegWrite,
            builtin.CounterInc,
            builtin.CounterRead,
            builtin.SetInsert,
            builtin.SetRemove,
            builtin.SetMember,
            builtin.Deposit,
            builtin.Withdraw,
            builtin.BalanceRead,
            builtin.Enqueue,
            builtin.Dequeue,
            builtin.MapPut,
            builtin.MapGet,
            builtin.MapRemove,
        )
    }
    cls = classes[blob["op"]]
    args = {name: _decode_value(value) for name, value in blob["args"].items()}
    return cls(**args)


def _encode_spec(spec: Any) -> Dict[str, Any]:
    from ..spec import builtin

    if isinstance(spec, RWSpec):
        return {"spec": "RWSpec", "initial": _encode_value(spec.initial)}
    for cls in (
        builtin.RegisterType,
        builtin.CounterType,
        builtin.SetType,
        builtin.BankAccountType,
        builtin.QueueType,
        builtin.MapType,
    ):
        if isinstance(spec, cls):
            return {"spec": cls.__name__, "initial": _encode_value(spec.initial)}
    raise TypeError(f"cannot encode spec {spec!r}")


def _decode_spec(blob: Mapping[str, Any]) -> Any:
    from ..spec import builtin

    initial = _decode_value(blob["initial"])
    name = blob["spec"]
    if name == "RWSpec":
        return RWSpec(initial=initial)
    classes = {
        cls.__name__: cls
        for cls in (
            builtin.RegisterType,
            builtin.CounterType,
            builtin.SetType,
            builtin.BankAccountType,
            builtin.QueueType,
            builtin.MapType,
        )
    }
    return classes[name](initial=initial)


# -- behaviors ----------------------------------------------------------------


def behavior_to_json(behavior: Sequence[Action]) -> List[Dict[str, Any]]:
    """Encode a behavior as a list of JSON objects."""
    encoded = []
    for action in behavior:
        blob: Dict[str, Any] = {
            "kind": _KIND_OF[type(action)],
            "transaction": list(action.transaction.path),
        }
        if isinstance(action, (RequestCommit, ReportCommit)):
            blob["value"] = _encode_value(action.value)
        if isinstance(action, (InformCommit, InformAbort)):
            blob["object"] = action.obj.name
        encoded.append(blob)
    return encoded


def behavior_from_json(blobs: Sequence[Mapping[str, Any]]) -> Behavior:
    """Decode a behavior produced by :func:`behavior_to_json`."""
    actions: List[Action] = []
    for blob in blobs:
        cls = _ACTION_KINDS[blob["kind"]]
        transaction = TransactionName(tuple(blob["transaction"]))
        if cls in (RequestCommit, ReportCommit):
            actions.append(cls(transaction, _decode_value(blob["value"])))
        elif cls in (InformCommit, InformAbort):
            actions.append(cls(ObjectName(blob["object"]), transaction))
        else:
            actions.append(cls(transaction))
    return tuple(actions)


# -- system types --------------------------------------------------------------


def system_type_to_json(system_type: SystemType) -> Dict[str, Any]:
    """Encode a system type (objects + specs + access registry)."""
    return {
        "objects": {
            obj.name: _encode_spec(system_type.spec(obj))
            for obj in system_type.object_names()
        },
        "accesses": [
            {
                "transaction": list(name.path),
                "object": access.obj.name,
                "operation": _encode_op(access.op),
            }
            for name, access in sorted(system_type.all_accesses().items())
        ],
    }


def system_type_from_json(blob: Mapping[str, Any]) -> SystemType:
    """Decode a system type produced by :func:`system_type_to_json`."""
    objects = {
        ObjectName(name): _decode_spec(spec) for name, spec in blob["objects"].items()
    }
    system_type = SystemType(objects)
    for entry in blob["accesses"]:
        system_type.register_access(
            TransactionName(tuple(entry["transaction"])),
            Access(ObjectName(entry["object"]), _decode_op(entry["operation"])),
        )
    return system_type


# -- whole cases ---------------------------------------------------------------


def dump_case(behavior: Sequence[Action], system_type: SystemType) -> str:
    """Serialize a (behavior, system type) pair to a JSON string."""
    return json.dumps(
        {
            "format": "repro-case-v1",
            "system_type": system_type_to_json(system_type),
            "behavior": behavior_to_json(behavior),
        },
        indent=2,
    )


def load_case(text: str) -> Tuple[Behavior, SystemType]:
    """Load a (behavior, system type) pair from :func:`dump_case` output."""
    blob = json.loads(text)
    if blob.get("format") != "repro-case-v1":
        raise ValueError(f"unsupported case format: {blob.get('format')!r}")
    system_type = system_type_from_json(blob["system_type"])
    behavior = behavior_from_json(blob["behavior"])
    return behavior, system_type
