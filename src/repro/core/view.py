"""The ``view`` operator and the Serializability Theorem (Section 2.3.2).

``view(beta, T, R, X)`` is the fundamental sequence of the
Serializability Theorem (Theorem 2 of the paper, imported from [11]):
the operations of accesses to ``X`` that are visible to ``T`` in
``beta``, ordered by ``R_trans`` on their transaction components, and
rendered as a serial-object behavior via ``perform``.

:func:`serializability_theorem_applies` is the executable form of
Theorem 2's hypothesis: ``T`` not an orphan, ``R`` suitable for
``beta`` and ``T``, and every object's view legal for its serial
specification.  When it returns an empty problem list, ``beta`` is
serially correct for ``T`` — the statement Theorem 8/19's proof reduces
to, and the test suite checks that reduction explicitly (the order
obtained by topologically sorting an acyclic ``SG(beta)`` always
satisfies these hypotheses when the behavior has appropriate return
values).
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import List, Optional, Sequence

from .actions import Action, Behavior, RequestCommit
from .events import StatusIndex, visible_projection
from .history import HistoryIndex
from .names import ObjectName, SystemType, TransactionName
from .operations import Operation, operation_payloads, perform
from .return_values import ReturnValueViolation
from .sibling_order import SiblingOrder, is_suitable

__all__ = ["view", "serializability_theorem_applies"]


def view(
    behavior: Sequence[Action],
    to: TransactionName,
    order: SiblingOrder,
    obj: ObjectName,
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> Behavior:
    """``view(beta, T, R, X)``: the R-ordered visible operations, performed.

    Requires ``order`` to totally order (via ``R_trans``) the accesses
    involved; suitability condition 1 guarantees that.  Raises
    ``ValueError`` when two distinct accesses are unordered.
    """
    index = index if index is not None else StatusIndex(behavior)
    visible = visible_projection(behavior, to, index)
    ops: List[Operation] = [
        Operation(action.transaction, action.value)
        for action in visible
        if isinstance(action, RequestCommit)
        and system_type.is_access(action.transaction)
        and system_type.object_of(action.transaction) == obj
    ]

    def compare(first: Operation, second: Operation) -> int:
        if first.transaction == second.transaction:
            return 0
        if order.trans_holds(first.transaction, second.transaction):
            return -1
        if order.trans_holds(second.transaction, first.transaction):
            return 1
        raise ValueError(
            f"sibling order does not relate {first.transaction} "
            f"and {second.transaction}"
        )

    ops.sort(key=cmp_to_key(compare))
    return perform(ops)


def serializability_theorem_applies(
    behavior: Sequence[Action],
    to: TransactionName,
    order: SiblingOrder,
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
    columnar: bool = False,
) -> List[str]:
    """Check the hypotheses of Theorem 2 for ``behavior``, ``to``, ``order``.

    Returns problem descriptions; an empty list means the theorem
    applies and ``behavior`` is serially correct for ``to``.  One shared
    :class:`repro.core.history.HistoryIndex` (built here unless passed
    in) serves the orphan test, the suitability check, and every
    per-object view.  ``columnar=True`` attaches the dense-int store to
    the index it builds, routing orphan/visibility queries through
    bitset flags.
    """
    problems: List[str] = []
    if index is None:
        index = HistoryIndex(behavior, system_type, columnar=columnar)
    if index.is_orphan(to):
        problems.append(f"{to} is an orphan in the behavior")
    if not is_suitable(order, behavior, to, index):
        problems.append("the sibling order is not suitable")
    for obj in system_type.object_names():
        try:
            object_view = view(behavior, to, order, obj, system_type, index)
        except ValueError as exc:
            problems.append(f"object {obj}: {exc}")
            continue
        ops = [
            Operation(action.transaction, action.value)
            for action in object_view
            if isinstance(action, RequestCommit)
        ]
        pairs = operation_payloads(ops, system_type)
        if not system_type.spec(obj).is_legal(pairs):
            problems.append(
                f"object {obj}: view is not a behavior of its serial spec"
            )
    return problems
