"""An online (incremental) Theorem 8/19 certifier for streaming audits.

:func:`repro.core.correctness.certify` judges a complete recorded
behavior; :class:`OnlineCertifier` consumes one action at a time and
maintains the same verdict — suitable for monitoring a live system.

The interesting dynamics are in *visibility*: an access's operation
enters ``visible(beta, T0)`` only when its whole ancestor chain has
committed, which can happen long after the operation itself.  A late
commit therefore

* inserts the operation into the middle of each object's visible
  sequence (by original event position), which can flip the legality of
  the operations after it in either direction — the ARV verdict is
  **not** monotone and is re-evaluated from the insertion point;
* adds conflict edges against every visible operation on the same
  object — edges only accumulate, so a cycle verdict *is* monotone and
  latches.

``OnlineCertifier.verdict()`` matches ``certify(prefix, ...)`` (without
witness construction) after every fed prefix; the test suite asserts
that equivalence on random behaviors.

Prefix compaction
-----------------

With ``compaction=True`` the certifier periodically retires finished
top-level subtrees so memory tracks the *live window* of the stream
instead of its whole history.  The split is by weight:

* **Root-level state is permanent** — transaction status name sets,
  the ``T0`` sibling buckets, and the ``T0`` sibling group of the
  serialization graph.  These grow with the number of top-level
  transactions (a name and a few edges each), exactly as in the
  uncompacted engine, and keeping them is what makes the verdict exact
  even when the stream later references a retired subtree (a late
  report, a late child, a late access under a committed ancestor).
* **Subtree-level state is evicted** — the raw ``_TrackedOp`` records
  with their payloads, the per-object visible rows / legality / state
  snapshots, nested sibling groups, and per-parent report/request
  buckets.  This is the per-*event* state, the actual memory driver.

The two halves of the subtree-level state retire on independent
conditions.  Per-object visible rows trim as a **stable prefix**: a row
is stable once its position precedes every still-pending operation on
its object, so no future visibility insertion can land at or before
it, conflict "first" against it, or change the state it observed —
its legality and its contribution to later resume states are final.
Trimming only a leading run keeps the retained sequence hole-free
(every surviving state snapshot still covers the whole evicted
prefix).  A subtree's bookkeeping *record* — op/parent trackers,
nested buckets and sibling groups — drops once the subtree is
**quiescent**: nothing in it still waits for an ancestor commit and
every tracked operation is dead or already visible, so no entry can
ever fire again.  Decoupling the two means a long-running
transaction's settled prefix compacts while the transaction is still
open, and an idle record drops even while its rows are still hot.

Evicted rows are folded into a per-object summary: the state after the
compacted prefix (the base for future front-of-sequence insertions),
the frozen ARV violations (merged back by stream position, preserving
the exact verdict tuple), and a **conflict frontier** — per object, the
distinct ``(op, value)`` pairs each retired top-level transaction
contributed.  When a later operation becomes visible it derives its
cross-subtree conflict edges against the frontier exactly as the
uncompacted engine would against the raw rows (evicted rows always
precede live ones, so the edge direction is fixed and both endpoints
collapse to top-level names).  The only edges the compacted engine ever
drops are *nested* edges from an evicted row or report to a later
arrival inside the same retired subtree; those can never complete a new
cycle, because every counter-edge back into the old portion of a nested
group would need a smaller position than the retired prefix — excluded
by stability.  Cycle and ARV verdicts are therefore identical to the
uncompacted engine's on arbitrary streams (the latched cycle *witness*
may differ, as edge insertion order does); randomized and directed
suites assert that equivalence, and lint rule R001 enforces the A/B
testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from .actions import (
    Abort,
    Action,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_report,
    is_serial_action,
)
from .graph import Digraph, IncrementalTopology
from .history import ConflictCache, spec_is_read_only
from .names import ROOT, ObjectName, SystemType, TransactionName, lca
from .serialization_graph import CONFLICT, PRECEDES, SerializationGraph, SiblingEdge

__all__ = ["OnlineVerdict", "OnlineCertifier"]


@dataclass(frozen=True)
class OnlineVerdict:
    """The current judgement of the stream consumed so far."""

    certified: bool
    arv_violations: Tuple[str, ...]
    cycle: Optional[Tuple[TransactionName, List[TransactionName]]]


@dataclass
class _TrackedOp:
    position: int
    transaction: TransactionName
    op: Any
    value: Any
    obj: ObjectName
    pending: Set[TransactionName]  # uncommitted ancestors (excl. ROOT)
    read_only: bool = False
    dead: bool = False
    visible: bool = False
    #: dense operation-class id in the shared ConflictCache interner
    cls: int = -1


@dataclass
class _TrackedTxn:
    """A non-access transaction watched for parent-visibility (precedes)."""

    transaction: TransactionName
    pending: Set[TransactionName]
    dead: bool = False
    visible: bool = False


@dataclass
class _Subtree:
    """Bookkeeping for one top-level transaction's subtree.

    Grouping tracked operations and parent-trackers by the child of
    ``T0`` they live under makes aborts O(subtree) instead of O(history)
    and gives prefix compaction its unit of eviction.
    """

    top: TransactionName
    #: position -> tracked operation (live accesses of this subtree)
    ops: Dict[int, _TrackedOp] = field(default_factory=dict)
    #: parent name -> tracker (every non-root parent touched in here)
    parents: Dict[TransactionName, _TrackedTxn] = field(default_factory=dict)
    #: operations + parent-trackers still waiting for an ancestor commit
    unresolved: int = 0


class OnlineCertifier:
    """Feed serial actions; read back the Theorem 8/19 verdict anytime.

    ``tracer`` (optional) opens an ``online.feed`` span per consumed
    action and an ``online.revalidate`` span around each late-commit
    visibility insertion's suffix re-evaluation — the two hot paths a
    streaming deployment needs to watch.  ``metrics`` (optional) counts
    fed actions, visible insertions, revalidated suffix operations,
    conflict/precedes edges and the cycle latch.  Both default to off
    with a single ``None`` check of overhead per call.

    ``flight`` (optional) attaches a
    :class:`repro.obs.flight.FlightRecorder`: every consumed serial
    action is appended to its bounded ring (one deque append), and when
    the verdict degrades — the cycle latches, or a re-validation flips
    a previously-legal operation to illegal — the recorder dumps the
    window, the cycle witness and the metrics snapshot as a post-mortem
    JSONL record.  Like the other hooks it defaults to off at a single
    ``None`` check.

    ``incremental`` selects the acyclicity engine.  The default maintains
    a Pearce–Kelly topological order per sibling group
    (:class:`repro.core.graph.IncrementalTopology`): an edge insert only
    searches the affected region between its endpoints and latches a
    cycle the moment the forward frontier reaches the edge source.
    ``incremental=False`` keeps the naive engine — a full DFS cycle
    search over the whole sibling group after every new edge — as the
    A/B baseline; the two engines produce identical verdicts (asserted
    on randomized workloads by the test suite) and the naive engine is
    what ``benchmarks/bench_e13_incremental.py`` measures against.

    ``compaction`` enables the bounded-memory mode described in the
    module docstring: every ``compaction_interval`` consumed actions a
    sweep retires quiescent top-level subtrees, folding their
    operations into per-object summaries and a conflict frontier.  The default keeps the
    uncompacted engine as the A/B baseline; verdicts are identical
    either way on well-formed streams.  Sweep work is surfaced through
    the ``online.compaction.*`` metrics and the
    :meth:`compaction_stats` / :meth:`live_tracked_ops` introspectors.
    """

    def __init__(
        self,
        system_type: SystemType,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        incremental: bool = True,
        conflict_cache: Optional[ConflictCache] = None,
        compaction: bool = False,
        compaction_interval: int = 64,
        flight: Optional[FlightRecorder] = None,
        session: str = "",
        site: str = "",
    ) -> None:
        if compaction_interval < 1:
            raise ValueError("compaction_interval must be >= 1")
        self.system_type = system_type
        self.tracer = tracer if tracer is not None else None
        self.metrics = metrics
        self.flight = flight
        self.session = session
        #: Originating site label for post-mortems ("" outside
        #: repro.distributed); recorded in every flight-dump context.
        self.site = site
        self.incremental = incremental
        self.compaction = compaction
        self.compaction_interval = compaction_interval
        # conflict verdicts are pure per (spec, ops, values): a cache may
        # be shared across certifier instances auditing the same objects
        self.conflict_cache = (
            conflict_cache if conflict_cache is not None else ConflictCache()
        )
        self._topologies: Dict[TransactionName, IncrementalTopology[TransactionName]] = {}
        self._position = 0
        self._committed: Set[TransactionName] = set()
        self._aborted: Set[TransactionName] = set()
        # ops awaiting visibility: uncommitted ancestor -> position -> op
        self._waiting: Dict[TransactionName, Dict[int, _TrackedOp]] = {}
        # per-top-level-subtree bookkeeping (aborts, compaction)
        self._subtrees: Dict[TransactionName, _Subtree] = {}
        # positions of pending (waiting, non-dead) ops per object: the
        # per-object stable boundary is the minimum of this set
        self._pending_by_object: Dict[ObjectName, Set[int]] = {}
        # per-object visible sequences (sorted by position) + states
        self._visible: Dict[ObjectName, List[_TrackedOp]] = {
            obj: [] for obj in system_type.object_names()
        }
        self._legal: Dict[ObjectName, List[bool]] = {
            obj: [] for obj in system_type.object_names()
        }
        # _states[obj][i] is the object state *after* applying the i-th
        # visible operation; revalidation resumes from the insertion
        # point instead of replaying the whole prefix.  Safe because
        # every serial specification treats states as immutable values.
        self._states: Dict[ObjectName, List[Any]] = {
            obj: [] for obj in system_type.object_names()
        }
        # precedes bookkeeping, grouped by parent so parent-visibility
        # events and new reports/requests touch one sibling group only
        self._reports_by_parent: Dict[
            TransactionName, Dict[TransactionName, int]
        ] = {}
        self._requests_by_parent: Dict[
            TransactionName, Dict[TransactionName, int]
        ] = {}
        self._parents: Dict[TransactionName, _TrackedTxn] = {}
        self._waiting_parents: Dict[
            TransactionName, Dict[TransactionName, _TrackedTxn]
        ] = {}
        self._graph = SerializationGraph()
        self._cycle: Optional[Tuple[TransactionName, List[TransactionName]]] = None
        # compaction summaries + counters
        self._last_sweep = 0
        self._compact_state: Dict[ObjectName, Any] = {}
        self._compact_last_position: Dict[ObjectName, int] = {}
        self._compact_count: Dict[ObjectName, int] = {}
        self._frozen_violations: Dict[ObjectName, List[Tuple[int, str]]] = {}
        # conflict frontier: obj -> retired top -> distinct evicted
        # (op, value, read_only) triples; future visible ops derive
        # their cross-subtree conflict edges from this instead of the
        # evicted raw rows
        self._frontier: Dict[
            ObjectName, Dict[TransactionName, Set[Tuple[Any, Any, bool]]]
        ] = {}
        self._sweeps = 0
        self._evicted_subtrees = 0
        self._evicted_ops = 0
        self._evicted_rows = 0

    # -- public API ---------------------------------------------------------

    def feed(self, action: Action) -> None:
        """Consume one action (non-serial actions are ignored)."""
        if not is_serial_action(action):
            return
        if self.metrics is not None:
            self.metrics.inc("online.actions")
        if self.flight is not None:
            self.flight.record(self._position, action)
        if self.tracer is not None:
            with self.tracer.span("online.feed", kind=type(action).__name__):
                self._consume(action)
        else:
            self._consume(action)
        if (
            self.compaction
            and self._position - self._last_sweep >= self.compaction_interval
        ):
            if self.tracer is not None:
                with self.tracer.span("online.compaction.sweep"):
                    self._compact()
            else:
                self._compact()

    def _consume(self, action: Action) -> None:
        position = self._position
        self._position += 1
        transaction = action.transaction
        if not transaction.is_root:
            self._subtree_for(transaction)
        if isinstance(action, RequestCreate):
            parent = transaction.parent
            bucket = self._requests_by_parent.setdefault(parent, {})
            if transaction not in bucket:
                bucket[transaction] = position
            self._touch_parent(parent)
            if self._graph_parent_visible(parent):
                self._add_precedes_for_new_request(transaction, position)
        elif isinstance(action, RequestCommit) and self.system_type.is_access(
            transaction
        ):
            self._track_operation(action, position)
        elif isinstance(action, Commit):
            self._on_commit(transaction)
        elif isinstance(action, Abort):
            self._on_abort(transaction)
        elif is_report(action):
            parent = transaction.parent
            bucket = self._reports_by_parent.setdefault(parent, {})
            first = transaction not in bucket
            if first:
                bucket[transaction] = position
            self._touch_parent(parent)
            if first and self._graph_parent_visible(parent):
                self._add_precedes_for_new_report(transaction, position)

    def verdict(self) -> OnlineVerdict:
        """The Theorem 8/19 judgement of everything fed so far."""
        violations: List[str] = []
        for obj, rows in self._visible.items():
            legal = self._legal[obj]
            frozen = self._frozen_violations.get(obj)
            if frozen is None:
                violations.extend(
                    f"object {obj}: operation of {rows[i].transaction} is illegal"
                    for i, ok in enumerate(legal)
                    if not ok
                )
            else:
                # merge compacted (frozen) violations with the live rows
                # by stream position: the exact tuple the uncompacted
                # engine would report
                entries = list(frozen)
                entries.extend(
                    (
                        rows[i].position,
                        f"object {obj}: operation of {rows[i].transaction} is illegal",
                    )
                    for i, ok in enumerate(legal)
                    if not ok
                )
                entries.sort()
                violations.extend(message for _, message in entries)
        certified = not violations and self._cycle is None
        return OnlineVerdict(certified, tuple(violations), self._cycle)

    def feed_all(self, behavior: Sequence[Action]) -> OnlineVerdict:
        """Feed a whole behavior and return the resulting verdict."""
        for action in behavior:
            self.feed(action)
        return self.verdict()

    @property
    def graph(self) -> SerializationGraph:
        """The serialization graph accumulated so far."""
        return self._graph

    def live_tracked_ops(self) -> int:
        """Raw tracked operations currently retained (the memory driver).

        Counts every distinct ``_TrackedOp`` still held: visible rows in
        the per-object sequences plus the not-yet-visible (waiting or
        dead) operations in the subtree records.  With
        ``compaction=True`` this stays proportional to the live window
        of the stream; without it, it grows with history length.
        """
        total = sum(len(rows) for rows in self._visible.values())
        for subtree in self._subtrees.values():
            for tracked in subtree.ops.values():
                if not tracked.visible:
                    total += 1
        return total

    def compaction_stats(self) -> Dict[str, int]:
        """Sweep/eviction totals (also surfaced as ``online.compaction.*``)."""
        return {
            "sweeps": self._sweeps,
            "evicted_subtrees": self._evicted_subtrees,
            "evicted_ops": self._evicted_ops,
            "evicted_rows": self._evicted_rows,
            "live_tracked_ops": self.live_tracked_ops(),
            "frontier_entries": sum(
                len(entries)
                for per_top in self._frontier.values()
                for entries in per_top.values()
            ),
        }

    # -- visibility machinery -------------------------------------------------

    def _subtree_for(self, transaction: TransactionName) -> _Subtree:
        top = transaction.prefix(1)
        subtree = self._subtrees.get(top)
        if subtree is None:
            subtree = self._subtrees[top] = _Subtree(top)
        return subtree

    def _uncommitted_chain(self, transaction: TransactionName) -> Set[TransactionName]:
        return {
            ancestor
            for ancestor in transaction.ancestors()
            if not ancestor.is_root and ancestor not in self._committed
        }

    def _chain_dead(self, transaction: TransactionName) -> bool:
        return any(
            ancestor in self._aborted for ancestor in transaction.ancestors()
        )

    def _track_operation(self, action: RequestCommit, position: int) -> None:
        if self._chain_dead(action.transaction):
            return  # dead on arrival: can never become visible
        access = self.system_type.access(action.transaction)
        tracked = _TrackedOp(
            position,
            action.transaction,
            access.op,
            action.value,
            access.obj,
            self._uncommitted_chain(action.transaction),
            read_only=spec_is_read_only(self.system_type.spec(access.obj), access.op),
            cls=self.conflict_cache.operation_id(access.op, action.value),
        )
        subtree = self._subtree_for(action.transaction)
        subtree.ops[position] = tracked
        if not tracked.pending:
            self._make_op_visible(tracked)
        else:
            subtree.unresolved += 1
            self._pending_by_object.setdefault(tracked.obj, set()).add(position)
            for ancestor in tracked.pending:
                self._waiting.setdefault(ancestor, {})[position] = tracked

    def _touch_parent(self, parent: TransactionName) -> None:
        if parent in self._parents:
            return
        tracked = _TrackedTxn(parent, self._uncommitted_chain(parent))
        self._parents[parent] = tracked
        if not parent.is_root:
            self._subtree_for(parent).parents[parent] = tracked
        if self._chain_dead(parent):
            tracked.dead = True
            return
        if not tracked.pending:
            self._make_parent_visible(tracked)
        else:
            self._subtree_for(parent).unresolved += 1
            for ancestor in tracked.pending:
                self._waiting_parents.setdefault(ancestor, {})[parent] = tracked

    def _on_commit(self, transaction: TransactionName) -> None:
        self._committed.add(transaction)
        for tracked in list(self._waiting.pop(transaction, {}).values()):
            if tracked.dead or tracked.visible:
                continue
            tracked.pending.discard(transaction)
            if not tracked.pending:
                subtree = self._subtree_for(tracked.transaction)
                subtree.unresolved -= 1
                pending_here = self._pending_by_object.get(tracked.obj)
                if pending_here is not None:
                    pending_here.discard(tracked.position)
                self._make_op_visible(tracked)
        for watcher in list(self._waiting_parents.pop(transaction, {}).values()):
            if watcher.dead or watcher.visible:
                continue
            watcher.pending.discard(transaction)
            if not watcher.pending:
                self._subtree_for(watcher.transaction).unresolved -= 1
                self._make_parent_visible(watcher)

    def _on_abort(self, transaction: TransactionName) -> None:
        self._aborted.add(transaction)
        if transaction.is_root:
            subtrees = list(self._subtrees.values())
        else:
            subtree = self._subtrees.get(transaction.prefix(1))
            subtrees = [subtree] if subtree is not None else []
        for subtree in subtrees:
            self._kill_descendants(subtree, transaction)

    def _kill_descendants(
        self, subtree: _Subtree, transaction: TransactionName
    ) -> None:
        """Mark the aborted transaction's waiting descendants dead and evict
        their waiting-list entries eagerly (the abort-leak fix: dead
        entries no longer linger until an unrelated ancestor commits)."""
        for tracked in subtree.ops.values():
            if tracked.visible or tracked.dead:
                continue
            if not transaction.is_ancestor_of(tracked.transaction):
                continue
            tracked.dead = True
            subtree.unresolved -= 1
            pending_here = self._pending_by_object.get(tracked.obj)
            if pending_here is not None:
                pending_here.discard(tracked.position)
            for ancestor in tracked.pending:
                bucket = self._waiting.get(ancestor)
                if bucket is not None:
                    bucket.pop(tracked.position, None)
                    if not bucket:
                        del self._waiting[ancestor]
        for watcher in subtree.parents.values():
            if watcher.visible or watcher.dead:
                continue
            if not transaction.is_ancestor_of(watcher.transaction):
                continue
            watcher.dead = True
            subtree.unresolved -= 1
            for ancestor in watcher.pending:
                parent_bucket = self._waiting_parents.get(ancestor)
                if parent_bucket is not None:
                    parent_bucket.pop(watcher.transaction, None)
                    if not parent_bucket:
                        del self._waiting_parents[ancestor]

    # -- graph + ARV maintenance ---------------------------------------------

    def _graph_parent_visible(self, parent: TransactionName) -> bool:
        tracked = self._parents.get(parent)
        return tracked is not None and tracked.visible

    def _make_op_visible(self, tracked: _TrackedOp) -> None:
        tracked.visible = True
        sequence = self._visible[tracked.obj]
        spec = self.system_type.spec(tracked.obj)
        cache = self.conflict_cache
        # conflict edges against the compacted prefix, via the frontier:
        # evicted rows always precede this op, so the edge runs from the
        # retired top to this op's top; intra-subtree (nested) pairs are
        # skipped — provably unable to complete a new cycle
        frontier = self._frontier.get(tracked.obj)
        if frontier:
            my_top = tracked.transaction.prefix(1)
            for top, entries in frontier.items():
                if top == my_top:
                    continue
                for op, value, read_only in entries:
                    if tracked.read_only and read_only:
                        continue
                    if cache.conflicts(spec, op, value, tracked.op, tracked.value):
                        self._add_edge(SiblingEdge(top, my_top, CONFLICT))
                        break  # further entries would re-add the same edge
        # conflict edges against every already-visible op on the object;
        # read/read pairs commute (both ops preserve the state) and are
        # skipped before the spec or the verdict cache is consulted.
        # Verdicts go through the dense-id interface: the op classes were
        # interned at track time, so the hot loop hashes small ints
        spec_id = cache.spec_id(spec)
        for other in sequence:
            if tracked.read_only and other.read_only:
                continue
            if other.transaction.is_related_to(tracked.transaction):
                continue
            first, second = (
                (other, tracked) if other.position < tracked.position else (tracked, other)
            )
            if cache.conflicts_ids(spec_id, first.cls, second.cls):
                depth = lca(first.transaction, second.transaction).depth + 1
                self._add_edge(
                    SiblingEdge(
                        first.transaction.prefix(depth),
                        second.transaction.prefix(depth),
                        CONFLICT,
                    )
                )
        # insert by position and re-validate the suffix
        index = 0
        while index < len(sequence) and sequence[index].position < tracked.position:
            index += 1
        sequence.insert(index, tracked)
        self._legal[tracked.obj].insert(index, True)
        self._states[tracked.obj].insert(index, None)
        if self.metrics is not None:
            self.metrics.inc("online.visible_insertions")
            if index < len(sequence) - 1:
                # a late commit landed mid-sequence: the non-monotone case
                self.metrics.inc("online.midstream_insertions")
        if self.tracer is not None:
            with self.tracer.span(
                "online.revalidate",
                obj=str(tracked.obj),
                suffix=len(sequence) - index,
            ):
                self._revalidate(tracked.obj, index)
        else:
            self._revalidate(tracked.obj, index)

    def _revalidate(self, obj: ObjectName, start: int) -> None:
        if self.metrics is not None:
            self.metrics.inc(
                "online.revalidated_ops", len(self._visible[obj]) - start
            )
            self.metrics.inc("online.revalidate.skipped_prefix_ops", start)
        spec = self.system_type.spec(obj)
        # resume from the cached state at the insertion point: the stable
        # prefix is never replayed (per-object decomposition of the work).
        # After compaction the base of the sequence is the summarised
        # state of the evicted prefix instead of the spec's initial state.
        states = self._states[obj]
        if start > 0:
            state: Any = states[start - 1]
        elif obj in self._compact_state:
            state = self._compact_state[obj]
        else:
            state = spec.initial
        legal = self._legal[obj]
        newly_illegal: List[TransactionName] = []
        for index in range(start, len(self._visible[obj])):
            tracked = self._visible[obj][index]
            state, expected = spec.apply(state, tracked.op)
            states[index] = state
            was_legal = legal[index]
            legal[index] = expected == tracked.value
            if was_legal and not legal[index] and self.flight is not None:
                newly_illegal.append(tracked.transaction)
        if newly_illegal and self.flight is not None:
            self.flight.dump(
                "arv",
                session=self.session,
                metrics_snapshot=(
                    self.metrics.snapshot() if self.metrics is not None else None
                ),
                context={
                    "object": str(obj),
                    "illegal": [str(name) for name in newly_illegal],
                    "site": self.site,
                },
            )

    def _make_parent_visible(self, tracked: _TrackedTxn) -> None:
        tracked.visible = True
        parent = tracked.transaction
        reports = self._reports_by_parent.get(parent)
        requests = self._requests_by_parent.get(parent)
        if not reports or not requests:
            return
        for reported, report_pos in reports.items():
            for requested, request_pos in requests.items():
                if reported != requested and report_pos < request_pos:
                    self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_precedes_for_new_report(
        self, reported: TransactionName, position: int
    ) -> None:
        requests = self._requests_by_parent.get(reported.parent)
        if not requests:
            return
        for requested, request_pos in requests.items():
            if requested != reported and position < request_pos:
                self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_precedes_for_new_request(
        self, requested: TransactionName, position: int
    ) -> None:
        reports = self._reports_by_parent.get(requested.parent)
        if not reports:
            return
        for reported, report_pos in reports.items():
            if reported != requested and report_pos < position:
                self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_edge(self, edge: SiblingEdge) -> None:
        group = self._graph.graph_for(edge.parent)
        had_edge = group.has_edge(edge.source, edge.target)
        self._graph.add_edge(edge)
        if self.metrics is not None and not had_edge:
            self.metrics.inc(
                "online.edges.conflict"
                if edge.kind == CONFLICT
                else "online.edges.precedes"
            )
        if self._cycle is None and not had_edge:
            if self.incremental:
                self._check_cycle_incremental(edge)
            else:
                self._check_cycle_naive(edge, group)

    def _check_cycle_naive(
        self, edge: SiblingEdge, group: Digraph[TransactionName]
    ) -> None:
        """The A/B baseline: full DFS over the sibling group per new edge."""
        if self.metrics is not None:
            self.metrics.inc("online.cycle_checks")
        cycle = group.find_cycle()
        if cycle is not None:
            self._latch_cycle(edge.parent, cycle)

    def _check_cycle_incremental(self, edge: SiblingEdge) -> None:
        """Pearce–Kelly insert: search only the affected index region."""
        topology = self._topologies.get(edge.parent)
        if topology is None:
            topology = self._topologies[edge.parent] = IncrementalTopology()
        cycle = topology.add_edge(edge.source, edge.target)
        if self.metrics is not None:
            self.metrics.inc("online.incremental.edge_inserts")
            self.metrics.inc(
                "online.incremental.affected_nodes", topology.last_affected
            )
        if cycle is not None:
            self._latch_cycle(edge.parent, cycle)

    def _latch_cycle(
        self, parent: TransactionName, cycle: List[TransactionName]
    ) -> None:
        self._cycle = (parent, cycle)
        if self.metrics is not None:
            # the verdict is monotone: once latched, always cyclic
            self.metrics.inc("online.cycle_latched")
        if self.flight is not None:
            self.flight.dump(
                "cycle",
                session=self.session,
                cycle=self._cycle,
                metrics_snapshot=(
                    self.metrics.snapshot() if self.metrics is not None else None
                ),
                context={"site": self.site},
            )

    # -- prefix compaction ----------------------------------------------------

    def _compact(self) -> None:
        """One compaction sweep: trim stable row prefixes, retire records."""
        self._last_sweep = self._position
        self._sweeps += 1
        boundaries: Dict[ObjectName, int] = {}
        for obj, positions in self._pending_by_object.items():
            if positions:
                boundaries[obj] = min(positions)
        self._trim_rows(boundaries)
        evictable = self._evictable_subtrees()
        if evictable:
            self._evict_subtrees(evictable)
        if self.metrics is not None:
            self.metrics.inc("online.compaction.sweeps")
            if evictable:
                self.metrics.inc(
                    "online.compaction.evicted_subtrees", len(evictable)
                )
            self.metrics.set_gauge(
                "online.compaction.live_tracked_ops", self.live_tracked_ops()
            )

    def _trim_rows(self, boundaries: Dict[ObjectName, int]) -> None:
        """Fold each object's *stable prefix* into its compaction summary.

        A visible row is stable once its position precedes every
        still-pending operation on its object: no future visibility
        insertion can land at or before it (pending operations sit at or
        beyond the boundary, brand-new ones beyond the stream horizon),
        so its legality and its contribution to later resume states are
        final.  Trimming strictly leading rows keeps the retained
        sequence hole-free — every surviving ``_states`` snapshot still
        includes the whole evicted prefix, and a front-of-sequence
        insertion resumes from ``_compact_state`` instead.

        Each trimmed row is folded into the object's conflict frontier
        (keyed by its top-level transaction, which is all a future
        cross-subtree conflict edge needs) and, when illegal, into the
        frozen ARV violations.  Rows are trimmed independently of their
        subtree records: a long-running transaction's settled prefix
        compacts even while the transaction itself stays open.
        """
        horizon = self._position  # every row position is < horizon
        for obj, rows in self._visible.items():
            if not rows:
                continue
            boundary = boundaries.get(obj, horizon)
            cut = 0
            while cut < len(rows) and rows[cut].position < boundary:
                cut += 1
            if cut == 0:
                continue
            legal = self._legal[obj]
            states = self._states[obj]
            frontier = self._frontier.setdefault(obj, {})
            for i in range(cut):
                row = rows[i]
                self._evicted_rows += 1
                self._compact_count[obj] = self._compact_count.get(obj, 0) + 1
                frontier.setdefault(row.transaction.prefix(1), set()).add(
                    (row.op, row.value, row.read_only)
                )
                if not legal[i]:
                    self._frozen_violations.setdefault(obj, []).append(
                        (
                            row.position,
                            f"object {obj}: operation of {row.transaction} is illegal",
                        )
                    )
                    if self.metrics is not None:
                        self.metrics.inc("online.compaction.frozen_violations")
                subtree = self._subtrees.get(row.transaction.prefix(1))
                if subtree is not None:
                    subtree.ops.pop(row.position, None)
            # rows are position-sorted, so the state after the last
            # trimmed row is absolute over the whole evicted prefix: the
            # base for any future front-of-sequence insertion
            self._compact_last_position[obj] = rows[cut - 1].position
            self._compact_state[obj] = states[cut - 1]
            del rows[:cut]
            del legal[:cut]
            del states[:cut]
            if self.metrics is not None:
                self.metrics.inc("online.compaction.evicted_rows", cut)

    def _evictable_subtrees(self) -> Set[TransactionName]:
        """Top-level subtrees whose bookkeeping records are quiescent.

        A record can be dropped once nothing in its subtree is still
        waiting for an ancestor commit and every tracked operation is
        either dead or already visible — nothing in the record can ever
        fire again.  Late events referencing the subtree afterwards (a
        report, a new child, even a new access under a committed
        ancestor) are handled exactly by the permanent root-level state:
        the status name sets, the ``T0`` sibling buckets and graph, and
        the per-object conflict frontier.
        """
        quiescent: Set[TransactionName] = set()
        for top, subtree in self._subtrees.items():
            if subtree.unresolved:
                continue
            if all(
                tracked.dead or tracked.visible
                for tracked in subtree.ops.values()
            ):
                quiescent.add(top)
        return quiescent

    def _evict_subtrees(self, evictable: Set[TransactionName]) -> None:
        """Drop the bookkeeping records of quiescent top-level subtrees.

        This removes the per-subtree op/parent trackers, the nested
        (within-subtree) report/request buckets and the nested sibling
        groups — state that only drives events which can no longer fire.
        Visible rows are *not* touched here; they retire separately via
        :meth:`_trim_rows` once stable.  Root-level state — the status
        name sets, the ``T0`` buckets and the ``T0`` sibling group — is
        deliberately left intact: it is what keeps late events that
        reference a retired subtree exact.
        """
        for top in evictable:
            subtree = self._subtrees.pop(top)
            self._evicted_subtrees += 1
            self._evicted_ops += len(subtree.ops)
            if self.metrics is not None:
                self.metrics.inc("online.compaction.evicted_ops", len(subtree.ops))
            for parent_name in subtree.parents:
                self._requests_by_parent.pop(parent_name, None)
                self._reports_by_parent.pop(parent_name, None)
                self._parents.pop(parent_name, None)
        # nested sibling groups of the evicted subtrees, wholesale
        for parent in [
            p
            for p in self._graph.parents()
            if not p.is_root and p.prefix(1) in evictable
        ]:
            self._graph.drop_group(parent)
        for parent in [
            p
            for p in self._topologies
            if not p.is_root and p.prefix(1) in evictable
        ]:
            del self._topologies[parent]
