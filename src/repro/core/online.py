"""An online (incremental) Theorem 8/19 certifier for streaming audits.

:func:`repro.core.correctness.certify` judges a complete recorded
behavior; :class:`OnlineCertifier` consumes one action at a time and
maintains the same verdict — suitable for monitoring a live system.

The interesting dynamics are in *visibility*: an access's operation
enters ``visible(beta, T0)`` only when its whole ancestor chain has
committed, which can happen long after the operation itself.  A late
commit therefore

* inserts the operation into the middle of each object's visible
  sequence (by original event position), which can flip the legality of
  the operations after it in either direction — the ARV verdict is
  **not** monotone and is re-evaluated from the insertion point;
* adds conflict edges against every visible operation on the same
  object — edges only accumulate, so a cycle verdict *is* monotone and
  latches.

``OnlineCertifier.verdict()`` matches ``certify(prefix, ...)`` (without
witness construction) after every fed prefix; the test suite asserts
that equivalence on random behaviors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from .actions import (
    Abort,
    Action,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_report,
    is_serial_action,
)
from .graph import Digraph, IncrementalTopology
from .history import ConflictCache, spec_is_read_only
from .names import ROOT, ObjectName, SystemType, TransactionName, lca
from .serialization_graph import CONFLICT, PRECEDES, SerializationGraph, SiblingEdge

__all__ = ["OnlineVerdict", "OnlineCertifier"]


@dataclass(frozen=True)
class OnlineVerdict:
    """The current judgement of the stream consumed so far."""

    certified: bool
    arv_violations: Tuple[str, ...]
    cycle: Optional[Tuple[TransactionName, List[TransactionName]]]


@dataclass
class _TrackedOp:
    position: int
    transaction: TransactionName
    op: Any
    value: Any
    obj: ObjectName
    pending: Set[TransactionName]  # uncommitted ancestors (excl. ROOT)
    read_only: bool = False
    dead: bool = False
    visible: bool = False


@dataclass
class _TrackedTxn:
    """A non-access transaction watched for parent-visibility (precedes)."""

    transaction: TransactionName
    pending: Set[TransactionName]
    dead: bool = False
    visible: bool = False


class OnlineCertifier:
    """Feed serial actions; read back the Theorem 8/19 verdict anytime.

    ``tracer`` (optional) opens an ``online.feed`` span per consumed
    action and an ``online.revalidate`` span around each late-commit
    visibility insertion's suffix re-evaluation — the two hot paths a
    streaming deployment needs to watch.  ``metrics`` (optional) counts
    fed actions, visible insertions, revalidated suffix operations,
    conflict/precedes edges and the cycle latch.  Both default to off
    with a single ``None`` check of overhead per call.

    ``incremental`` selects the acyclicity engine.  The default maintains
    a Pearce–Kelly topological order per sibling group
    (:class:`repro.core.graph.IncrementalTopology`): an edge insert only
    searches the affected region between its endpoints and latches a
    cycle the moment the forward frontier reaches the edge source.
    ``incremental=False`` keeps the naive engine — a full DFS cycle
    search over the whole sibling group after every new edge — as the
    A/B baseline; the two engines produce identical verdicts (asserted
    on randomized workloads by the test suite) and the naive engine is
    what ``benchmarks/bench_e13_incremental.py`` measures against.
    """

    def __init__(
        self,
        system_type: SystemType,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        incremental: bool = True,
        conflict_cache: Optional[ConflictCache] = None,
    ) -> None:
        self.system_type = system_type
        self.tracer = tracer if tracer else None
        self.metrics = metrics
        self.incremental = incremental
        # conflict verdicts are pure per (spec, ops, values): a cache may
        # be shared across certifier instances auditing the same objects
        self.conflict_cache = (
            conflict_cache if conflict_cache is not None else ConflictCache()
        )
        self._topologies: Dict[TransactionName, IncrementalTopology] = {}
        self._position = 0
        self._committed: Set[TransactionName] = set()
        self._aborted: Set[TransactionName] = set()
        # ops awaiting visibility, keyed by each uncommitted ancestor
        self._waiting: Dict[TransactionName, List[_TrackedOp]] = {}
        self._ops: List[_TrackedOp] = []
        # per-object visible sequences (sorted by position) + states
        self._visible: Dict[ObjectName, List[_TrackedOp]] = {
            obj: [] for obj in system_type.object_names()
        }
        self._legal: Dict[ObjectName, List[bool]] = {
            obj: [] for obj in system_type.object_names()
        }
        # _states[obj][i] is the object state *after* applying the i-th
        # visible operation; revalidation resumes from the insertion
        # point instead of replaying the whole prefix.  Safe because
        # every serial specification treats states as immutable values.
        self._states: Dict[ObjectName, List[Any]] = {
            obj: [] for obj in system_type.object_names()
        }
        # precedes bookkeeping
        self._first_report: Dict[TransactionName, int] = {}
        self._request_create: Dict[TransactionName, int] = {}
        self._parents: Dict[TransactionName, _TrackedTxn] = {}
        self._waiting_parents: Dict[TransactionName, List[_TrackedTxn]] = {}
        self._graph = SerializationGraph()
        self._cycle: Optional[Tuple[TransactionName, List[TransactionName]]] = None

    # -- public API ---------------------------------------------------------

    def feed(self, action: Action) -> None:
        """Consume one action (non-serial actions are ignored)."""
        if not is_serial_action(action):
            return
        if self.metrics is not None:
            self.metrics.inc("online.actions")
        if self.tracer is not None:
            with self.tracer.span("online.feed", kind=type(action).__name__):
                self._consume(action)
        else:
            self._consume(action)

    def _consume(self, action: Action) -> None:
        position = self._position
        self._position += 1
        if isinstance(action, RequestCreate):
            self._request_create.setdefault(action.transaction, position)
            self._touch_parent(action.transaction.parent)
            if self._graph_parent_visible(action.transaction.parent):
                self._add_precedes_for_new_request(action.transaction, position)
        elif isinstance(action, RequestCommit) and self.system_type.is_access(
            action.transaction
        ):
            self._track_operation(action, position)
        elif isinstance(action, Commit):
            self._on_commit(action.transaction)
        elif isinstance(action, Abort):
            self._on_abort(action.transaction)
        elif is_report(action):
            self._first_report.setdefault(action.transaction, position)
            self._touch_parent(action.transaction.parent)
            if self._graph_parent_visible(action.transaction.parent):
                self._add_precedes_for_new_report(action.transaction, position)

    def verdict(self) -> OnlineVerdict:
        """The Theorem 8/19 judgement of everything fed so far."""
        violations = tuple(
            f"object {obj}: operation of {ops[i].transaction} is illegal"
            for obj, ops in self._visible.items()
            for i, ok in enumerate(self._legal[obj])
            if not ok
        )
        certified = not violations and self._cycle is None
        return OnlineVerdict(certified, violations, self._cycle)

    def feed_all(self, behavior: Sequence[Action]) -> OnlineVerdict:
        """Feed a whole behavior and return the resulting verdict."""
        for action in behavior:
            self.feed(action)
        return self.verdict()

    @property
    def graph(self) -> SerializationGraph:
        """The serialization graph accumulated so far."""
        return self._graph

    # -- visibility machinery -------------------------------------------------

    def _uncommitted_chain(self, transaction: TransactionName) -> Set[TransactionName]:
        return {
            ancestor
            for ancestor in transaction.ancestors()
            if not ancestor.is_root and ancestor not in self._committed
        }

    def _chain_dead(self, transaction: TransactionName) -> bool:
        return any(
            ancestor in self._aborted for ancestor in transaction.ancestors()
        )

    def _track_operation(self, action: RequestCommit, position: int) -> None:
        access = self.system_type.access(action.transaction)
        tracked = _TrackedOp(
            position,
            action.transaction,
            access.op,
            action.value,
            access.obj,
            self._uncommitted_chain(action.transaction),
            read_only=spec_is_read_only(self.system_type.spec(access.obj), access.op),
        )
        self._ops.append(tracked)
        if self._chain_dead(action.transaction):
            tracked.dead = True
            return
        if not tracked.pending:
            self._make_op_visible(tracked)
        else:
            for ancestor in tracked.pending:
                self._waiting.setdefault(ancestor, []).append(tracked)

    def _touch_parent(self, parent: TransactionName) -> None:
        if parent in self._parents:
            return
        tracked = _TrackedTxn(parent, self._uncommitted_chain(parent))
        self._parents[parent] = tracked
        if self._chain_dead(parent):
            tracked.dead = True
            return
        if not tracked.pending:
            self._make_parent_visible(tracked)
        else:
            for ancestor in tracked.pending:
                self._waiting_parents.setdefault(ancestor, []).append(tracked)

    def _on_commit(self, transaction: TransactionName) -> None:
        self._committed.add(transaction)
        for tracked in self._waiting.pop(transaction, []):
            if tracked.dead or tracked.visible:
                continue
            tracked.pending.discard(transaction)
            if not tracked.pending:
                self._make_op_visible(tracked)
        for tracked in self._waiting_parents.pop(transaction, []):
            if tracked.dead or tracked.visible:
                continue
            tracked.pending.discard(transaction)
            if not tracked.pending:
                self._make_parent_visible(tracked)

    def _on_abort(self, transaction: TransactionName) -> None:
        self._aborted.add(transaction)
        for tracked in self._ops:
            if not tracked.visible and transaction.is_ancestor_of(
                tracked.transaction
            ):
                tracked.dead = True
        for tracked in self._parents.values():
            if not tracked.visible and transaction.is_ancestor_of(
                tracked.transaction
            ):
                tracked.dead = True

    # -- graph + ARV maintenance ---------------------------------------------

    def _graph_parent_visible(self, parent: TransactionName) -> bool:
        tracked = self._parents.get(parent)
        return tracked is not None and tracked.visible

    def _make_op_visible(self, tracked: _TrackedOp) -> None:
        tracked.visible = True
        sequence = self._visible[tracked.obj]
        spec = self.system_type.spec(tracked.obj)
        cache = self.conflict_cache
        # conflict edges against every already-visible op on the object;
        # read/read pairs commute (both ops preserve the state) and are
        # skipped before the spec or the verdict cache is consulted
        for other in sequence:
            if tracked.read_only and other.read_only:
                continue
            if other.transaction.is_related_to(tracked.transaction):
                continue
            first, second = (
                (other, tracked) if other.position < tracked.position else (tracked, other)
            )
            if cache.conflicts(spec, first.op, first.value, second.op, second.value):
                depth = lca(first.transaction, second.transaction).depth + 1
                self._add_edge(
                    SiblingEdge(
                        first.transaction.prefix(depth),
                        second.transaction.prefix(depth),
                        CONFLICT,
                    )
                )
        # insert by position and re-validate the suffix
        index = 0
        while index < len(sequence) and sequence[index].position < tracked.position:
            index += 1
        sequence.insert(index, tracked)
        self._legal[tracked.obj].insert(index, True)
        self._states[tracked.obj].insert(index, None)
        if self.metrics is not None:
            self.metrics.inc("online.visible_insertions")
            if index < len(sequence) - 1:
                # a late commit landed mid-sequence: the non-monotone case
                self.metrics.inc("online.midstream_insertions")
        if self.tracer is not None:
            with self.tracer.span(
                "online.revalidate",
                obj=str(tracked.obj),
                suffix=len(sequence) - index,
            ):
                self._revalidate(tracked.obj, index)
        else:
            self._revalidate(tracked.obj, index)

    def _revalidate(self, obj: ObjectName, start: int) -> None:
        if self.metrics is not None:
            self.metrics.inc(
                "online.revalidated_ops", len(self._visible[obj]) - start
            )
            self.metrics.inc("online.revalidate.skipped_prefix_ops", start)
        spec = self.system_type.spec(obj)
        # resume from the cached state at the insertion point: the stable
        # prefix is never replayed (per-object decomposition of the work)
        states = self._states[obj]
        state: Any = states[start - 1] if start > 0 else spec.initial
        legal = self._legal[obj]
        for index in range(start, len(self._visible[obj])):
            tracked = self._visible[obj][index]
            state, expected = spec.apply(state, tracked.op)
            states[index] = state
            legal[index] = expected == tracked.value

    def _make_parent_visible(self, tracked: _TrackedTxn) -> None:
        tracked.visible = True
        parent = tracked.transaction
        reports = [
            (txn, pos)
            for txn, pos in self._first_report.items()
            if not txn.is_root and txn.parent == parent
        ]
        requests = [
            (txn, pos)
            for txn, pos in self._request_create.items()
            if not txn.is_root and txn.parent == parent
        ]
        for reported, report_pos in reports:
            for requested, request_pos in requests:
                if reported != requested and report_pos < request_pos:
                    self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_precedes_for_new_report(
        self, reported: TransactionName, position: int
    ) -> None:
        if self._first_report.get(reported) != position:
            return  # not the first report: no new edges
        parent = reported.parent
        for requested, request_pos in self._request_create.items():
            if (
                requested != reported
                and not requested.is_root
                and requested.parent == parent
                and position < request_pos
            ):
                self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_precedes_for_new_request(
        self, requested: TransactionName, position: int
    ) -> None:
        parent = requested.parent
        for reported, report_pos in self._first_report.items():
            if (
                reported != requested
                and not reported.is_root
                and reported.parent == parent
                and report_pos < position
            ):
                self._add_edge(SiblingEdge(reported, requested, PRECEDES))

    def _add_edge(self, edge: SiblingEdge) -> None:
        group = self._graph.graph_for(edge.parent)
        had_edge = group.has_edge(edge.source, edge.target)
        self._graph.add_edge(edge)
        if self.metrics is not None and not had_edge:
            self.metrics.inc(
                "online.edges.conflict"
                if edge.kind == CONFLICT
                else "online.edges.precedes"
            )
        if self._cycle is None and not had_edge:
            if self.incremental:
                self._check_cycle_incremental(edge)
            else:
                self._check_cycle_naive(edge, group)

    def _check_cycle_naive(
        self, edge: SiblingEdge, group: Digraph[TransactionName]
    ) -> None:
        """The A/B baseline: full DFS over the sibling group per new edge."""
        if self.metrics is not None:
            self.metrics.inc("online.cycle_checks")
        cycle = group.find_cycle()
        if cycle is not None:
            self._latch_cycle(edge.parent, cycle)

    def _check_cycle_incremental(self, edge: SiblingEdge) -> None:
        """Pearce–Kelly insert: search only the affected index region."""
        topology = self._topologies.get(edge.parent)
        if topology is None:
            topology = self._topologies[edge.parent] = IncrementalTopology()
        cycle = topology.add_edge(edge.source, edge.target)
        if self.metrics is not None:
            self.metrics.inc("online.incremental.edge_inserts")
            self.metrics.inc(
                "online.incremental.affected_nodes", topology.last_affected
            )
        if cycle is not None:
            self._latch_cycle(edge.parent, cycle)

    def _latch_cycle(
        self, parent: TransactionName, cycle: List[TransactionName]
    ) -> None:
        self._cycle = (parent, cycle)
        if self.metrics is not None:
            # the verdict is monotone: once latched, always cyclic
            self.metrics.inc("online.cycle_latched")
