"""The completion-order relation used by Propositions 16 and 24.

The paper proves `SG(serial(beta))` acyclic for both verified algorithms
by exhibiting a partial order that contains every graph edge: the
*completion order* — ``(U, U')`` for siblings when ``beta`` contains a
completion event for ``U`` before any completion event for ``U'`` (or
``U`` completed and ``U'`` never did).

:func:`completion_holds` implements the relation and
:func:`edges_respect_completion_order` re-checks the propositions' key
step on actual behaviors: every conflict and precedes edge produced by
a locking or undo-logging run must agree with the completion order.
This is the paper's proof *argument* made executable, strictly stronger
than checking acyclicity alone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .actions import Action, is_completion
from .names import SystemType, TransactionName
from .serialization_graph import SerializationGraph, SiblingEdge

__all__ = ["completion_positions", "completion_holds", "edges_respect_completion_order"]


def completion_positions(
    behavior: Sequence[Action],
) -> Dict[TransactionName, int]:
    """Position of each transaction's (first) completion event."""
    positions: Dict[TransactionName, int] = {}
    for position, action in enumerate(behavior):
        if is_completion(action):
            positions.setdefault(action.transaction, position)
    return positions


def completion_holds(
    positions: Dict[TransactionName, int],
    first: TransactionName,
    second: TransactionName,
) -> bool:
    """``(first, second) in completion(beta)``: siblings, and ``first``
    completed before ``second`` did (or ``second`` never completed)."""
    if not first.is_sibling_of(second):
        return False
    if first not in positions:
        return False
    return second not in positions or positions[first] < positions[second]


def edges_respect_completion_order(
    behavior: Sequence[Action],
    graph: SerializationGraph,
) -> List[SiblingEdge]:
    """Edges of ``graph`` NOT contained in the completion order of ``behavior``.

    Propositions 16 and 24 assert this list is empty for behaviors of
    Moss-locking and undo-logging systems respectively (which then
    implies acyclicity, since the completion order is a partial order).
    """
    positions = completion_positions(behavior)
    return [
        edge
        for edge in graph.edges()
        if not completion_holds(positions, edge.source, edge.target)
    ]
