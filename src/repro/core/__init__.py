"""Core model: names, actions, event machinery, and the SG construction."""

from .actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    hightransaction,
    is_completion,
    is_serial_action,
    lowtransaction,
    object_of,
    transaction_of,
)
from .completion_order import (
    completion_holds,
    completion_positions,
    edges_respect_completion_order,
)
from .correctness import (
    Certificate,
    WitnessError,
    build_witness,
    certify,
    is_serially_correct_for_root,
    validate_serial_behavior,
)
from .explain import (
    ConflictWitness,
    CycleExplanation,
    EdgeExplanation,
    PrecedesWitness,
    explain_behavior,
    explain_cycle,
    explain_edge,
)
from .events import (
    AffectsRelation,
    StatusIndex,
    clean_projection,
    directly_affects_pairs,
    project_object,
    project_transaction,
    serial_projection,
    visible_projection,
)
from .graph import CycleError, Digraph, IncrementalTopology
from .columnar import (
    ColumnarHistory,
    ColumnarSerializationGraph,
    build_columnar_graph,
    certify_columnar,
)
from .history import ConflictCache, HistoryIndex
from .names import ROOT, Access, ObjectName, SystemType, TransactionName, lca
from .operations import (
    Operation,
    is_serial_object_well_formed,
    operation_payloads,
    operations,
    operations_of_object,
    perform,
)
from .online import OnlineCertifier, OnlineVerdict
from .oracle import OracleResult, enumerate_sibling_orders, oracle_serially_correct
from .return_values import (
    ReturnValueViolation,
    check_appropriate_return_values,
    check_current_and_safe,
    has_appropriate_return_values,
    has_appropriate_return_values_rw,
    is_current,
    is_safe,
)
from .rw_semantics import (
    OK,
    ReadOp,
    RWSpec,
    WriteOp,
    clean_final_value,
    clean_last_write,
    clean_write_sequence,
    final_value,
    is_read_access,
    is_write_access,
    last_write,
    write_sequence,
)
from .serialization_graph import (
    CONFLICT,
    PRECEDES,
    SerializationGraph,
    SiblingEdge,
    build_serialization_graph,
    conflict_pairs,
    precedes_pairs,
)
from .serde import (
    behavior_from_json,
    behavior_to_json,
    dump_case,
    load_case,
    system_type_from_json,
    system_type_to_json,
)
from .sibling_order import SiblingOrder, consistent_partial_orders, is_suitable
from .view import serializability_theorem_applies, view

__all__ = [name for name in dir() if not name.startswith("_")]
