"""A small directed graph with labelled edges, cycle detection and toposort.

The serialization graph construction needs only a handful of graph
operations; implementing them here keeps the core dependency-free.  A
:meth:`Digraph.to_networkx` export is provided for users who want to
draw or further analyse the graphs (networkx is an optional import).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

__all__ = ["Digraph", "CycleError", "IncrementalTopology"]

N = TypeVar("N", bound=Hashable)


class CycleError(ValueError):
    """Raised when a topological sort is requested on a cyclic graph."""

    def __init__(self, cycle: List[Any]) -> None:
        super().__init__(f"graph contains a cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle


class Digraph(Generic[N]):
    """A directed graph whose edges carry a set of string labels.

    Labels are kept as sorted tuples, maintained at insert time — label
    sets per edge are tiny (one or two kinds) and read far more often
    than written, so iteration never re-sorts.
    """

    def __init__(self) -> None:
        self._succ: Dict[N, Dict[N, Tuple[str, ...]]] = {}
        self._pred: Dict[N, Set[N]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = set()

    def add_edge(self, src: N, dst: N, label: str = "") -> None:
        """Add an edge; parallel labels accumulate on the same edge."""
        self.add_node(src)
        self.add_node(dst)
        labels = self._succ[src].get(dst, ())
        if label and label not in labels:
            labels = tuple(sorted(labels + (label,)))
        self._succ[src][dst] = labels
        self._pred[dst].add(src)

    def remove_node(self, node: N) -> None:
        """Remove ``node`` and every edge incident to it (missing is a no-op).

        Used by the online certifier's prefix compaction to evict retired
        sibling-group members; acyclicity is trivially preserved.
        """
        targets = self._succ.pop(node, None)
        if targets is None:
            return
        for dst in targets:
            self._pred[dst].discard(node)
        for src in self._pred.pop(node, ()):
            self._succ[src].pop(node, None)

    # -- inspection ----------------------------------------------------------

    def nodes(self) -> Tuple[N, ...]:
        return tuple(self._succ)

    def edges(self) -> Iterator[Tuple[N, N, Tuple[str, ...]]]:
        """Yield ``(src, dst, labels)``; labels are an already-sorted tuple."""
        for src, targets in self._succ.items():
            yield from ((src, dst, labels) for dst, labels in targets.items())

    def has_edge(self, src: N, dst: N) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge_labels(self, src: N, dst: N) -> FrozenSet[str]:
        return frozenset(self._succ[src][dst])

    def successors(self, node: N) -> Tuple[N, ...]:
        return tuple(self._succ.get(node, ()))

    def predecessors(self, node: N) -> Tuple[N, ...]:
        return tuple(self._pred.get(node, ()))

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: object) -> bool:
        return node in self._succ

    def edge_count(self) -> int:
        return sum(len(t) for t in self._succ.values())

    # -- algorithms ------------------------------------------------------------

    def find_cycle(self) -> Optional[List[N]]:
        """Return some cycle as a node list (first node repeated last), or None.

        Iterative colouring DFS; deterministic given insertion order.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[N, int] = {node: WHITE for node in self._succ}
        parent: Dict[N, Optional[N]] = {}
        for root in self._succ:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[N, Iterator[N]]] = [(root, iter(self._succ[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(self._succ[succ])))
                        advanced = True
                        break
                    if colour[succ] == GREY:
                        # Found a back edge node -> succ; reconstruct the cycle.
                        cycle = [node]
                        current = node
                        while current != succ:
                            current = parent[current]  # type: ignore[assignment]
                            cycle.append(current)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_sort(self) -> List[N]:
        """Kahn's algorithm; stable with respect to node insertion order.

        Raises :class:`CycleError` if the graph has a cycle.
        """
        indegree: Dict[N, int] = {node: 0 for node in self._succ}
        for _, dst, __ in self.edges():
            indegree[dst] += 1
        ready = [node for node in self._succ if indegree[node] == 0]
        order: List[N] = []
        position = 0
        while position < len(ready):
            node = ready[position]
            position += 1
            order.append(node)
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._succ):
            cycle = self.find_cycle()
            assert cycle is not None
            raise CycleError(cycle)
        return order

    def reachable_from(self, node: N) -> Set[N]:
        """All nodes reachable from ``node`` (excluding it unless on a cycle)."""
        seen: Set[N] = set()
        frontier = list(self._succ.get(node, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ.get(current, ()))
        return seen

    def subgraph(self, nodes: Iterable[N]) -> "Digraph[N]":
        keep = set(nodes)
        sub: Digraph[N] = Digraph()
        for node in self._succ:
            if node in keep:
                sub.add_node(node)
        for src, dst, labels in self.edges():
            if src in keep and dst in keep:
                for label in labels or ("",):
                    sub.add_edge(src, dst, label)
        return sub

    def to_networkx(self) -> Any:
        """Export as a ``networkx.DiGraph`` (labels under the ``kinds`` key)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        for src, dst, labels in self.edges():
            graph.add_edge(src, dst, kinds=list(labels))
        return graph

    def __repr__(self) -> str:
        return f"Digraph(nodes={len(self)}, edges={self.edge_count()})"


class IncrementalTopology(Generic[N]):
    """Incremental cycle detection via topological-order maintenance.

    Pearce–Kelly style: every node carries a topological index; inserting
    an edge ``u -> v`` with ``index[u] < index[v]`` is free (the order is
    already consistent), and only an out-of-order insert searches the
    *affected region* — the nodes whose indices lie between ``index[v]``
    and ``index[u]``.  If the forward frontier from ``v`` reaches ``u``
    inside that region the edge closes a cycle, which is returned as a
    node list (first node repeated last, like
    :meth:`Digraph.find_cycle`); otherwise the affected nodes are
    reindexed and the order is consistent again.

    This is the online certifier's replacement for running a full DFS
    over the whole sibling group on every new edge: amortised work is
    proportional to the affected region, which for append-mostly
    histories (new transactions conflict with older ones) is usually
    empty.  ``last_affected`` exposes the region size of the most recent
    insert so callers can surface the work in metrics.
    """

    def __init__(self) -> None:
        self._succ: Dict[N, Set[N]] = {}
        self._pred: Dict[N, Set[N]] = {}
        self._index: Dict[N, int] = {}
        self._next_index = 0
        #: nodes visited while repairing the order on the last insert
        self.last_affected = 0

    def __contains__(self, node: object) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._index)

    def index_of(self, node: N) -> int:
        """The node's current topological index (raises if unknown)."""
        return self._index[node]

    def add_node(self, node: N) -> None:
        """Register ``node`` with the next free (largest) index."""
        if node not in self._index:
            self._succ[node] = set()
            self._pred[node] = set()
            self._index[node] = self._next_index
            self._next_index += 1

    def has_edge(self, src: N, dst: N) -> bool:
        return src in self._succ and dst in self._succ[src]

    def remove_node(self, node: N) -> None:
        """Remove ``node`` and its incident edges (missing is a no-op).

        Deleting a node cannot invalidate the maintained order — every
        remaining edge keeps its endpoints' relative indices — so no
        repair pass is needed.  The freed index is simply retired;
        ``_next_index`` stays monotone.
        """
        targets = self._succ.pop(node, None)
        if targets is None:
            return
        for dst in targets:
            self._pred[dst].discard(node)
        for src in self._pred.pop(node, ()):
            self._succ[src].discard(node)
        del self._index[node]

    def add_edge(self, src: N, dst: N) -> Optional[List[N]]:
        """Insert an edge, repairing the order; return a cycle if one forms.

        Returns ``None`` when the graph stays acyclic.  When the edge
        closes a cycle, returns the cycle as ``[src, ..., src]`` *without*
        recording the edge, leaving the maintained order consistent (the
        caller latches the verdict and stops consulting this structure).
        """
        self.add_node(src)
        self.add_node(dst)
        self.last_affected = 0
        if dst in self._succ[src]:
            return None
        if src == dst:
            return [src, src]
        lower = self._index[dst]
        upper = self._index[src]
        if lower > upper:
            # already consistent: a plain insert, no search at all
            self._succ[src].add(dst)
            self._pred[dst].add(src)
            return None
        # forward search from dst, bounded by the affected region
        forward: List[N] = []
        seen: Set[N] = {dst}
        parent: Dict[N, N] = {}
        stack = [dst]
        while stack:
            node = stack.pop()
            forward.append(node)
            for succ in self._succ[node]:
                if succ == src:
                    # the new edge would close src -> dst -> ... -> src
                    path = [node]
                    while path[-1] != dst:
                        path.append(parent[path[-1]])
                    path.reverse()
                    self.last_affected = len(forward)
                    return [src, *path, src]
                if succ not in seen and self._index[succ] < upper:
                    seen.add(succ)
                    parent[succ] = node
                    stack.append(succ)
        # backward search from src, bounded below by index[dst]
        backward: List[N] = []
        seen_back: Set[N] = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            backward.append(node)
            for pred in self._pred[node]:
                if pred not in seen_back and self._index[pred] > lower:
                    seen_back.add(pred)
                    stack.append(pred)
        self.last_affected = len(forward) + len(backward)
        # reorder: backward nodes first, then forward nodes, into the
        # pooled (sorted) set of indices both regions occupied
        backward.sort(key=self._index.__getitem__)
        forward.sort(key=self._index.__getitem__)
        pool = sorted(self._index[node] for node in backward + forward)
        for node, index in zip(backward + forward, pool):
            self._index[node] = index
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        return None

    def as_digraph(self) -> Digraph[N]:
        """A :class:`Digraph` copy of the recorded edges (for inspection)."""
        graph: Digraph[N] = Digraph()
        for node in self._index:
            graph.add_node(node)
        for src, targets in self._succ.items():
            for dst in targets:
                graph.add_edge(src, dst)
        return graph

    def check_invariant(self) -> bool:
        """True iff every recorded edge respects the maintained order."""
        return all(
            self._index[src] < self._index[dst]
            for src, targets in self._succ.items()
            for dst in targets
        )

    def __repr__(self) -> str:
        edges = sum(len(t) for t in self._succ.values())
        return f"IncrementalTopology(nodes={len(self)}, edges={edges})"
