"""A small directed graph with labelled edges, cycle detection and toposort.

The serialization graph construction needs only a handful of graph
operations; implementing them here keeps the core dependency-free.  A
:meth:`Digraph.to_networkx` export is provided for users who want to
draw or further analyse the graphs (networkx is an optional import).
"""

from __future__ import annotations

from typing import (
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

__all__ = ["Digraph", "CycleError"]

N = TypeVar("N", bound=Hashable)


class CycleError(ValueError):
    """Raised when a topological sort is requested on a cyclic graph."""

    def __init__(self, cycle: List) -> None:
        super().__init__(f"graph contains a cycle: {' -> '.join(map(str, cycle))}")
        self.cycle = cycle


class Digraph(Generic[N]):
    """A directed graph whose edges carry a set of string labels."""

    def __init__(self) -> None:
        self._succ: Dict[N, Dict[N, Set[str]]] = {}
        self._pred: Dict[N, Set[N]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = set()

    def add_edge(self, src: N, dst: N, label: str = "") -> None:
        """Add an edge; parallel labels accumulate on the same edge."""
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].setdefault(dst, set())
        if label:
            self._succ[src][dst].add(label)
        self._pred[dst].add(src)

    # -- inspection ----------------------------------------------------------

    def nodes(self) -> Tuple[N, ...]:
        return tuple(self._succ)

    def edges(self) -> Iterator[Tuple[N, N, frozenset]]:
        for src, targets in self._succ.items():
            for dst, labels in targets.items():
                yield src, dst, frozenset(labels)

    def has_edge(self, src: N, dst: N) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge_labels(self, src: N, dst: N) -> frozenset:
        return frozenset(self._succ[src][dst])

    def successors(self, node: N) -> Tuple[N, ...]:
        return tuple(self._succ.get(node, ()))

    def predecessors(self, node: N) -> Tuple[N, ...]:
        return tuple(self._pred.get(node, ()))

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, node: object) -> bool:
        return node in self._succ

    def edge_count(self) -> int:
        return sum(len(t) for t in self._succ.values())

    # -- algorithms ------------------------------------------------------------

    def find_cycle(self) -> Optional[List[N]]:
        """Return some cycle as a node list (first node repeated last), or None.

        Iterative colouring DFS; deterministic given insertion order.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[N, int] = {node: WHITE for node in self._succ}
        parent: Dict[N, Optional[N]] = {}
        for root in self._succ:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[N, Iterator[N]]] = [(root, iter(self._succ[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if colour[succ] == WHITE:
                        colour[succ] = GREY
                        parent[succ] = node
                        stack.append((succ, iter(self._succ[succ])))
                        advanced = True
                        break
                    if colour[succ] == GREY:
                        # Found a back edge node -> succ; reconstruct the cycle.
                        cycle = [node]
                        current = node
                        while current != succ:
                            current = parent[current]  # type: ignore[assignment]
                            cycle.append(current)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def topological_sort(self) -> List[N]:
        """Kahn's algorithm; stable with respect to node insertion order.

        Raises :class:`CycleError` if the graph has a cycle.
        """
        indegree: Dict[N, int] = {node: 0 for node in self._succ}
        for _, dst, __ in self.edges():
            indegree[dst] += 1
        ready = [node for node in self._succ if indegree[node] == 0]
        order: List[N] = []
        position = 0
        while position < len(ready):
            node = ready[position]
            position += 1
            order.append(node)
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._succ):
            cycle = self.find_cycle()
            assert cycle is not None
            raise CycleError(cycle)
        return order

    def reachable_from(self, node: N) -> Set[N]:
        """All nodes reachable from ``node`` (excluding it unless on a cycle)."""
        seen: Set[N] = set()
        frontier = list(self._succ.get(node, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._succ.get(current, ()))
        return seen

    def subgraph(self, nodes: Iterable[N]) -> "Digraph[N]":
        keep = set(nodes)
        sub: Digraph[N] = Digraph()
        for node in self._succ:
            if node in keep:
                sub.add_node(node)
        for src, dst, labels in self.edges():
            if src in keep and dst in keep:
                for label in labels or ("",):
                    sub.add_edge(src, dst, label)
        return sub

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (labels under the ``kinds`` key)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self._succ)
        for src, dst, labels in self.edges():
            graph.add_edge(src, dst, kinds=sorted(labels))
        return graph

    def __repr__(self) -> str:
        return f"Digraph(nodes={len(self)}, edges={self.edge_count()})"
