"""Serial correctness: the Theorem 8/19 certifier and a constructive witness.

The paper's main theorems say: if a finite simple behavior ``beta`` has
appropriate return values and ``SG(beta)`` is acyclic, then ``beta`` is
serially correct for ``T0`` — there exists a *serial* behavior ``gamma``
with ``gamma | T0 == beta | T0``.

:func:`certify` checks the two hypotheses.  Because the theorem is
existential, we go one step further and make it constructive:
:func:`build_witness` follows the proof — topologically sort the
serialization graph into a sibling order ``R``, then replay the visible
part of ``beta`` as a depth-first serial execution whose siblings run in
``R`` order — and :func:`validate_serial_behavior` replays the produced
``gamma`` against the serial scheduler's rules and every object's serial
specification.  A successful certificate therefore carries an actual,
machine-checked serial behavior, with ``gamma | T == beta | T`` for every
transaction visible to ``T0`` (a stronger property than the theorem
demands for ``T0`` alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_serial_action,
    transaction_of,
)
from .events import StatusIndex, project_transaction, serial_projection
from .graph import CycleError
from .history import HistoryIndex
from .names import ROOT, SystemType, TransactionName
from .operations import (
    is_serial_object_well_formed,
    operation_payloads,
    operations_of_object,
)
from .return_values import ReturnValueViolation, check_appropriate_return_values
from .serialization_graph import SerializationGraph, build_serialization_graph
from .sibling_order import SiblingOrder

__all__ = [
    "Certificate",
    "certify",
    "build_witness",
    "WitnessError",
    "validate_serial_behavior",
    "is_serially_correct_for_root",
]


class WitnessError(RuntimeError):
    """Raised when the constructive witness cannot be built or validated.

    Under the hypotheses of Theorem 8/19 this should never happen; it
    indicates either a malformed input behavior or a bug.
    """


@dataclass
class Certificate:
    """The result of running the Theorem 8/19 check on a behavior."""

    certified: bool
    arv_violations: List[ReturnValueViolation]
    cycle: Optional[Tuple[TransactionName, List[TransactionName]]]
    graph: SerializationGraph
    order: Optional[SiblingOrder] = None
    witness: Optional[Behavior] = None
    witness_problems: List[str] = field(default_factory=list)
    input_problems: List[str] = field(default_factory=list)

    @property
    def has_appropriate_return_values(self) -> bool:
        return not self.arv_violations

    @property
    def graph_is_acyclic(self) -> bool:
        return self.cycle is None

    def explain(self) -> str:
        """A human-readable account of the verdict."""
        if self.certified:
            lines = ["CERTIFIED serially correct for T0 (Theorem 8/19)."]
            if self.witness is not None:
                lines.append(f"Witness serial behavior has {len(self.witness)} events.")
            return "\n".join(lines)
        lines = ["NOT certified (the condition is sufficient, not necessary):"]
        for problem in self.input_problems:
            lines.append(f"  malformed input: {problem}")
        for violation in self.arv_violations:
            lines.append(f"  return values: {violation}")
        if self.cycle is not None:
            parent, nodes = self.cycle
            path = " -> ".join(str(n) for n in nodes)
            lines.append(f"  SG cycle under {parent}: {path}")
        return "\n".join(lines)


def certify(
    behavior: Sequence[Action],
    system_type: SystemType,
    construct_witness: bool = True,
    validate_input: bool = False,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    indexed: bool = True,
    columnar: bool = False,
) -> Certificate:
    """Apply Theorem 8/19 to (the serial projection of) ``behavior``.

    Checks appropriate return values and acyclicity of ``SG(serial(beta))``.
    When both hold and ``construct_witness`` is set, also builds and
    validates the witness serial behavior; any witness problem is reported
    in the certificate (and the test suite asserts it never occurs).

    With ``validate_input``, first checks the simple-database constraints
    the theorems presuppose (Section 2.3.1); violations are reported in
    ``input_problems`` and make the certificate non-certified — a
    malformed log deserves a diagnosis, not a verdict.

    By default one :class:`repro.core.history.HistoryIndex` is built over
    ``serial(beta)`` and shared by every phase — ARV, graph construction,
    witness building and witness-projection comparison all read its
    cached projections and memoized visibility.  ``indexed=False`` keeps
    the original per-phase scans (a plain :class:`StatusIndex`) as the
    A/B baseline; the verdicts are identical either way, a property the
    test suite asserts on seeded workloads.  ``columnar=True`` routes to
    the third lane, :func:`repro.core.columnar.certify_columnar` — the
    dense-int struct-of-arrays engine — with identical certificates and
    span/metric names (the three-way equivalence suite asserts this).

    ``tracer`` wraps the run in a ``certify`` span whose children cover
    the phases (projection, input validation, ARV check, graph build,
    cycle search, witness); ``metrics`` gains phase gauges/counters.
    Both default to no-ops with ~zero overhead.
    """
    if columnar:
        # imported lazily: columnar builds on this module's Certificate
        from .columnar import certify_columnar

        return certify_columnar(
            behavior,
            system_type,
            construct_witness=construct_witness,
            validate_input=validate_input,
            tracer=tracer,
            metrics=metrics,
        )
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("certify", events=len(behavior)):
        with tracer.span("certify.project"):
            serial = serial_projection(behavior)
            index = (
                HistoryIndex(serial, system_type, metrics)
                if indexed
                else StatusIndex(serial)
            )
        input_problems: List[str] = []
        if validate_input:
            # imported lazily: the simple database lives one layer above core
            from ..serial.simple_db import check_simple_behavior

            with tracer.span("certify.validate_input"):
                input_problems = check_simple_behavior(serial, system_type)
            if input_problems:
                if metrics is not None:
                    metrics.inc("certify.runs")
                    metrics.inc("certify.rejected")
                    metrics.inc("certify.rejected.malformed_input")
                return Certificate(
                    False,
                    [],
                    None,
                    SerializationGraph(),
                    input_problems=input_problems,
                )
        with tracer.span("certify.arv"):
            arv_violations = check_appropriate_return_values(
                serial, system_type, index
            )
        with tracer.span("certify.build_graph"):
            graph = build_serialization_graph(
                serial,
                system_type,
                index,
                tracer=tracer,
                metrics=metrics,
                indexed=indexed,
            )
        with tracer.span("certify.find_cycle"):
            cycle = graph.find_cycle()
        certified = not arv_violations and cycle is None
        certificate = Certificate(certified, arv_violations, cycle, graph)
        if metrics is not None:
            metrics.inc("certify.runs")
            metrics.inc(
                "certify.certified" if certified else "certify.rejected"
            )
            metrics.set_gauge("certify.arv_violations", len(arv_violations))
        if certified and construct_witness:
            with tracer.span("certify.witness"):
                order = graph.to_sibling_order()
                certificate.order = order
                try:
                    witness = build_witness(serial, system_type, order, index)
                    certificate.witness_problems = validate_serial_behavior(
                        witness, system_type
                    )
                    if not certificate.witness_problems:
                        for transaction in _visible_transactions(index):
                            if project_transaction(
                                witness, transaction
                            ) != project_transaction(serial, transaction, index):
                                certificate.witness_problems.append(
                                    f"witness projection differs at {transaction}"
                                )
                    certificate.witness = witness
                except WitnessError as exc:
                    certificate.witness_problems = [str(exc)]
            if metrics is not None and certificate.witness is not None:
                metrics.set_gauge(
                    "certify.witness_events", len(certificate.witness)
                )
    return certificate


def is_serially_correct_for_root(
    behavior: Sequence[Action], system_type: SystemType
) -> bool:
    """Convenience wrapper: does Theorem 8/19 certify this behavior?"""
    return certify(behavior, system_type, construct_witness=False).certified


# ---------------------------------------------------------------------------
# Constructive witness
# ---------------------------------------------------------------------------


def _visible_transactions(index: StatusIndex) -> Set[TransactionName]:
    """Transactions visible to T0 among those mentioned in the behavior."""
    mentioned = index.create_requested | index.created | {ROOT}
    return {t for t in mentioned if index.is_visible(t, ROOT)}


def build_witness(
    serial: Sequence[Action],
    system_type: SystemType,
    order: SiblingOrder,
    index: Optional[StatusIndex] = None,
) -> Behavior:
    """Build the serial behavior ``gamma`` promised by Theorem 8/19.

    Follows the proof: runs the transactions visible to ``T0`` as a
    depth-first serial execution, executing each sibling group in the
    topological order ``order``, while reproducing each visible
    transaction's own action sequence (``beta | T``) verbatim.  Aborted
    children are aborted before creation (the only abort the serial
    scheduler permits); non-visible, never-completed children are
    requested but never scheduled.
    """
    index = index if index is not None else StatusIndex(serial)
    visible = _visible_transactions(index)
    builder = _WitnessBuilder(serial, system_type, order, index, visible)
    builder.emit_transaction(ROOT)
    return tuple(builder.output)


class _WitnessBuilder:
    def __init__(
        self,
        serial: Sequence[Action],
        system_type: SystemType,
        order: SiblingOrder,
        index: StatusIndex,
        visible: Set[TransactionName],
    ) -> None:
        self.serial = tuple(serial)
        self.system_type = system_type
        self.order = order
        self.index = index
        self.visible = visible
        self.output: List[Action] = []
        self._local_cache: Dict[TransactionName, Behavior] = {}

    def local_sequence(self, transaction: TransactionName) -> Behavior:
        if transaction not in self._local_cache:
            self._local_cache[transaction] = project_transaction(
                self.serial, transaction, self.index
            )
        return self._local_cache[transaction]

    def emit_transaction(self, transaction: TransactionName) -> None:
        """Emit the serial execution of ``transaction``'s subtree."""
        local = self.local_sequence(transaction)
        requested: List[TransactionName] = []
        ran: Set[TransactionName] = set()
        aborted_emitted: Set[TransactionName] = set()

        def run_child(child: TransactionName) -> None:
            if child in ran:
                return
            if child not in requested:
                raise WitnessError(
                    f"child {child} must run before its REQUEST_CREATE was emitted"
                )
            ran.add(child)
            self.emit_transaction(child)
            self.output.append(Commit(child))

        def run_up_to(target: TransactionName) -> None:
            """Run all pending visible R-predecessors of ``target``, then it."""
            pending = [
                c
                for c in requested
                if c in self.visible and c not in ran
            ]
            for child in self.order.sorted_children(transaction, pending):
                if child == target:
                    run_child(child)
                    return
                if self.order.holds(child, target):
                    run_child(child)
            # ``target`` may not have been pending (already ran) — ensure it ran.
            if target not in ran:
                run_child(target)

        for action in local:
            if isinstance(action, Create):
                self.output.append(action)
            elif isinstance(action, RequestCreate):
                requested.append(action.transaction)
                self.output.append(action)
            elif isinstance(action, ReportCommit):
                child = action.transaction
                if child not in self.visible:
                    raise WitnessError(
                        f"report of commit for non-visible child {child}"
                    )
                run_up_to(child)
                self.output.append(action)
            elif isinstance(action, ReportAbort):
                child = action.transaction
                if child not in aborted_emitted:
                    aborted_emitted.add(child)
                    self.output.append(Abort(child))
                self.output.append(action)
            elif isinstance(action, RequestCommit):
                pending = [
                    c for c in requested if c in self.visible and c not in ran
                ]
                for child in self.order.sorted_children(transaction, pending):
                    run_child(child)
                self.output.append(action)
            else:
                raise WitnessError(
                    f"unexpected action {action} in local sequence of {transaction}"
                )

        # Visible children whose reports never arrived (possible only at T0,
        # since any committed parent must have received all reports first)
        # still have globally visible effects: run them now, in order.
        leftovers = [c for c in requested if c in self.visible and c not in ran]
        for child in self.order.sorted_children(transaction, leftovers):
            run_child(child)


# ---------------------------------------------------------------------------
# Serial behavior validation
# ---------------------------------------------------------------------------


def validate_serial_behavior(
    behavior: Sequence[Action], system_type: SystemType
) -> List[str]:
    """Check that a sequence of serial actions is a serial-system behavior.

    Replays the serial scheduler's rules (Section 2.2.3): creations and
    completions need prior requests, siblings never overlap, aborts hit
    only never-created transactions, a transaction commits only after all
    its requested children completed, reports follow completions.  Also
    replays each object's serial specification over its projection
    (serial object well-formedness plus operation legality).

    Returns a list of problem descriptions; empty means valid.
    """
    problems: List[str] = []
    create_requested: Set[TransactionName] = set()
    created: Set[TransactionName] = set()
    completed: Set[TransactionName] = set()
    committed: Dict[TransactionName, Any] = {}
    commit_requested: Dict[TransactionName, Any] = {}
    reported: Set[TransactionName] = set()
    children_requested: Dict[TransactionName, Set[TransactionName]] = {}
    active_child: Dict[TransactionName, Optional[TransactionName]] = {}

    def note(message: str, position: int, action: Action) -> None:
        problems.append(f"event {position} ({action}): {message}")

    for position, action in enumerate(behavior):
        if not is_serial_action(action):
            note("not a serial action", position, action)
            continue
        if isinstance(action, RequestCreate):
            child = action.transaction
            if child in create_requested:
                note("duplicate REQUEST_CREATE", position, action)
            parent = child.parent
            if not parent.is_root and parent not in created:
                note(
                    "transaction requested a child before being created",
                    position,
                    action,
                )
            create_requested.add(child)
            children_requested.setdefault(parent, set()).add(child)
        elif isinstance(action, Create):
            transaction = action.transaction
            if transaction.is_root:
                note("CREATE(T0) is not a serial action", position, action)
                continue
            if transaction not in create_requested:
                note("CREATE without REQUEST_CREATE", position, action)
            if transaction in created:
                note("duplicate CREATE", position, action)
            if transaction in completed:
                note("CREATE after completion", position, action)
            parent = transaction.parent
            sibling = active_child.get(parent)
            if sibling is not None and sibling != transaction:
                note(f"sibling {sibling} still active", position, action)
            created.add(transaction)
            active_child[parent] = transaction
        elif isinstance(action, RequestCommit):
            transaction = action.transaction
            if system_type.is_access(transaction):
                if transaction not in created:
                    note("access responded before CREATE", position, action)
            if transaction in commit_requested:
                note("duplicate REQUEST_COMMIT", position, action)
            commit_requested[transaction] = action.value
        elif isinstance(action, Commit):
            transaction = action.transaction
            if transaction not in commit_requested:
                note("COMMIT without REQUEST_COMMIT", position, action)
            if transaction in completed:
                note("second completion", position, action)
            for child in children_requested.get(transaction, ()):
                if child not in completed:
                    note(
                        f"COMMIT before requested child {child} completed",
                        position,
                        action,
                    )
            completed.add(transaction)
            committed[transaction] = commit_requested.get(transaction)
            if active_child.get(transaction.parent) == transaction:
                active_child[transaction.parent] = None
        elif isinstance(action, Abort):
            transaction = action.transaction
            if transaction not in create_requested:
                note("ABORT without REQUEST_CREATE", position, action)
            if transaction in created:
                note("serial scheduler aborts only never-created transactions",
                     position, action)
            if transaction in completed:
                note("second completion", position, action)
            completed.add(transaction)
        elif isinstance(action, ReportCommit):
            transaction = action.transaction
            if transaction not in committed:
                note("REPORT_COMMIT without COMMIT", position, action)
            elif committed[transaction] != action.value:
                note(
                    f"reported value {action.value!r} differs from committed "
                    f"value {committed[transaction]!r}",
                    position,
                    action,
                )
            if transaction in reported:
                note("duplicate report", position, action)
            reported.add(transaction)
        elif isinstance(action, ReportAbort):
            transaction = action.transaction
            if transaction not in completed or transaction in committed:
                note("REPORT_ABORT without ABORT", position, action)
            if transaction in reported:
                note("duplicate report", position, action)
            reported.add(transaction)

    for obj in system_type.object_names():
        projection = tuple(
            a
            for a in behavior
            if isinstance(a, (Create, RequestCommit))
            and system_type.is_access(a.transaction)
            and system_type.object_of(a.transaction) == obj
        )
        if not is_serial_object_well_formed(projection):
            problems.append(f"object {obj}: projection not serial-object well-formed")
            continue
        ops = operations_of_object(projection, obj, system_type)
        pairs = operation_payloads(ops, system_type)
        if not system_type.spec(obj).is_legal(pairs):
            problems.append(f"object {obj}: operation sequence illegal for the spec")
    return problems
