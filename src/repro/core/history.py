"""A shared one-pass index over a behavior: the history side of certification.

Every consumer of a behavior — :func:`build_serialization_graph`, the
correctness checker, return-value checks, the oracle, ``view``,
suitability — needs the same handful of derived structures: projections
(``beta | T``, ``beta | X``), the visibility and orphan relations, the
first-report / request-create position maps, and the per-object access
sequences the conflict relation is enumerated from.  Before this module
each consumer re-scanned the full event sequence to recompute them.

:class:`HistoryIndex` materialises all of it in **one O(n) pass**:

* per-transaction and per-object event position lists, so projections
  become index slices instead of full scans;
* the completion/creation status sets of :class:`StatusIndex` (which it
  subclasses — a ``HistoryIndex`` is accepted anywhere a ``StatusIndex``
  is), with *memoized* ``is_orphan`` / ``is_visible`` — cached per
  transaction and per ``(source, to)`` pair instead of re-walking
  ancestor chains;
* cached ``visible(beta, T)`` / ``clean(beta)`` projections;
* per-object visible access REQUEST_COMMIT buckets with read-only
  operation classification, so conflict enumeration can skip read-runs
  and only compare across writer boundaries (sub-quadratic for
  read-heavy histories);
* the first-REPORT / first-REQUEST_CREATE position maps (grouped by
  parent) that ``precedes(beta)`` needs.

The index is a snapshot: it describes exactly the behavior it was built
over.  Helpers that accept an optional index therefore verify coverage
through :meth:`HistoryIndex.covers` before trusting the caches, and fall
back to the naive scan otherwise.

A shared :class:`ConflictCache` memoizes commutativity verdicts.  Specs
and ``(op, value)`` operation classes are interned to dense ints at
first sight and verdicts are keyed on the id triple — the same operation
pair never consults the specification twice *and* never re-hashes the
structured key, which matters both for data types whose
``commutes_backward`` replays bounded domains and for the columnar
engine (:mod:`repro.core.columnar`), whose event columns store the same
dense class ids directly.

Pass a :class:`repro.obs.MetricsRegistry` as ``metrics=`` to surface the
``history.index.*`` counters documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    hightransaction,
    is_serial_action,
    transaction_of,
)
from .events import StatusIndex
from .names import ROOT, ObjectName, SystemType, TransactionName

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .columnar import ColumnarHistory

__all__ = ["HistoryIndex", "ConflictCache", "spec_is_read_only"]


def spec_is_read_only(spec: Any, op: Any) -> bool:
    """True iff ``spec`` declares ``op`` read-only (state-preserving).

    Two read-only operations always commute backward — neither changes
    the state, and both return values are functions of the state — so
    conflict enumeration may skip read/read pairs entirely.  Specs
    without an ``is_read_only`` predicate get the safe answer.
    """
    probe = getattr(spec, "is_read_only", None)
    if probe is None:
        return False
    return bool(probe(op))


class ConflictCache:
    """Memoized conflict verdicts, keyed by dense interned ids.

    Specifications and ``(op, value)`` operation classes are interned to
    small ints on first sight; a verdict is stored once per
    ``(spec_id, class_i, class_j)`` triple.  Specifications are required
    to be hashable (read/write specs are frozen dataclasses; data types
    hash by identity) and conflict predicates are pure, so one verdict
    per distinct triple is enough for a whole process.  Shared by the
    batch conflict enumeration, the columnar engine (whose event columns
    hold the same class ids, so lookups skip the structured-key hashing
    entirely) and the online certifier.

    ``max_entries`` (optional) bounds the *verdict* table for long-lived
    streaming deployments whose operation/value domains are unbounded:
    once full, the oldest verdict is evicted first (insertion order — a
    recomputed verdict re-enters at the tail).  ``evictions`` counts how
    many verdicts were dropped.  The interning tables themselves grow
    with the distinct specs/operation classes observed — the same
    lifetime as a ``SystemType``'s access registry.  The default remains
    unbounded, matching the batch pipeline where the key domain is
    bounded by the behavior.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self._verdicts: Dict[Tuple[int, int, int], bool] = {}
        self._spec_ids: Dict[Any, int] = {}
        self._specs: List[Any] = []
        self._operation_ids: Dict[Tuple[Any, Any], int] = {}
        self._operations: List[Tuple[Any, Any]] = []
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- dense interning ---------------------------------------------------

    def spec_id(self, spec: Any) -> int:
        """The dense id of ``spec``, interning it on first sight."""
        sid = self._spec_ids.get(spec)
        if sid is None:
            sid = len(self._specs)
            self._spec_ids[spec] = sid
            self._specs.append(spec)
        return sid

    def operation_id(self, op: Any, value: Any) -> int:
        """The dense id of the operation class ``(op, value)``."""
        key = (op, value)
        oid = self._operation_ids.get(key)
        if oid is None:
            oid = len(self._operations)
            self._operation_ids[key] = oid
            self._operations.append(key)
        return oid

    def operation_payload(self, operation_id: int) -> Tuple[Any, Any]:
        """The ``(op, value)`` pair an operation id stands for."""
        return self._operations[operation_id]

    def operation_count(self) -> int:
        """How many distinct operation classes have been interned."""
        return len(self._operations)

    # -- verdicts ----------------------------------------------------------

    def conflicts(self, spec: Any, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        return self.conflicts_ids(
            self.spec_id(spec),
            self.operation_id(op1, value1),
            self.operation_id(op2, value2),
        )

    def conflicts_ids(self, spec_id: int, first: int, second: int) -> bool:
        """The memoized verdict for two already-interned operation classes."""
        key = (spec_id, first, second)
        verdict = self._verdicts.get(key)
        if verdict is None:
            op1, value1 = self._operations[first]
            op2, value2 = self._operations[second]
            verdict = bool(self._specs[spec_id].conflicts(op1, value1, op2, value2))
            if (
                self.max_entries is not None
                and len(self._verdicts) >= self.max_entries
            ):
                self._verdicts.pop(next(iter(self._verdicts)))
                self.evictions += 1
            self._verdicts[key] = verdict
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def __len__(self) -> int:
        return len(self._verdicts)


class HistoryIndex(StatusIndex):
    """The one-pass shared index described in the module docstring.

    ``system_type`` is optional: without it the object-level structures
    (per-object projections, access buckets) are simply absent, and the
    transaction-level machinery still works.  ``metrics`` (optional)
    records the build and the cache behavior under ``history.index.*``.

    ``columnar=True`` additionally builds a
    :class:`repro.core.columnar.ColumnarHistory` over the same behavior,
    sharing this index's :class:`ConflictCache`: orphan/visibility
    queries answer from the store's bitsets, and graph construction
    (:func:`repro.core.serialization_graph.conflict_pairs` and friends)
    runs off the dense int columns instead of the object buckets.  The
    flag is the third A/B lane next to ``indexed=`` — verdicts are
    identical, a property the test suite asserts three ways.
    """

    def __init__(
        self,
        behavior: Sequence[Action],
        system_type: Optional[SystemType] = None,
        metrics: Optional[Any] = None,
        columnar: bool = False,
    ) -> None:
        self.behavior: Behavior = (
            behavior if isinstance(behavior, tuple) else tuple(behavior)
        )
        self.system_type = system_type
        self._metrics = metrics
        # -- StatusIndex state (built here in the same single pass) ------
        self.committed = set()
        self.aborted = set()
        self.created = set()
        self.create_requested = set()
        self.commit_requested = {}
        self.reported = set()
        # -- positions ----------------------------------------------------
        self._serial_positions: List[int] = []
        self._by_transaction: Dict[TransactionName, List[int]] = {}
        self._by_object: Dict[ObjectName, List[int]] = {}
        #: per-object access REQUEST_COMMIT events in behavior order:
        #: (position, access name, op descriptor, returned value)
        self._access_commits: Dict[
            ObjectName, List[Tuple[int, TransactionName, Any, Any]]
        ] = {}
        #: first REPORT_* position per reported child
        self.first_report: Dict[TransactionName, int] = {}
        #: first REQUEST_CREATE position per requested child
        self.request_create_positions: Dict[TransactionName, int] = {}
        #: requested children grouped under their parent, in request order
        self.requests_by_parent: Dict[TransactionName, List[TransactionName]] = {}
        # -- memo caches ---------------------------------------------------
        self._orphan_memo: Dict[TransactionName, bool] = {}
        self._visible_memo: Dict[Tuple[TransactionName, TransactionName], bool] = {}
        self._visible_projections: Dict[TransactionName, Behavior] = {}
        self._clean_projection: Optional[Behavior] = None
        self._serial_projection: Optional[Behavior] = None
        self._transaction_projections: Dict[TransactionName, Behavior] = {}
        self._object_projections: Dict[ObjectName, Behavior] = {}
        self._visible_access_commits: Dict[
            ObjectName, List[Tuple[int, TransactionName, Any, Any]]
        ] = {}
        self.conflict_cache = ConflictCache()

        is_access = system_type.is_access if system_type is not None else None
        all_serial = True
        for position, action in enumerate(self.behavior):
            if not is_serial_action(action):
                all_serial = False
                continue
            self._serial_positions.append(position)
            txn = transaction_of(action)
            if txn is not None:
                self._by_transaction.setdefault(txn, []).append(position)
            if isinstance(action, Commit):
                self.committed.add(action.transaction)
            elif isinstance(action, Abort):
                self.aborted.add(action.transaction)
            elif isinstance(action, Create):
                self.created.add(action.transaction)
                if is_access is not None and is_access(action.transaction):
                    obj = system_type.object_of(action.transaction)
                    self._by_object.setdefault(obj, []).append(position)
            elif isinstance(action, RequestCreate):
                requested = action.transaction
                self.create_requested.add(requested)
                if requested not in self.request_create_positions:
                    self.request_create_positions[requested] = position
                    if not requested.is_root:
                        self.requests_by_parent.setdefault(
                            requested.parent, []
                        ).append(requested)
            elif isinstance(action, RequestCommit):
                self.commit_requested.setdefault(action.transaction, action.value)
                if is_access is not None and is_access(action.transaction):
                    access = system_type.access(action.transaction)
                    obj = access.obj
                    self._by_object.setdefault(obj, []).append(position)
                    self._access_commits.setdefault(obj, []).append(
                        (position, action.transaction, access.op, action.value)
                    )
            elif isinstance(action, (ReportCommit, ReportAbort)):
                self.reported.add(action.transaction)
                self.first_report.setdefault(action.transaction, position)
        self._all_serial = all_serial
        self.columnar: Optional["ColumnarHistory"] = None
        if columnar:
            # imported lazily: columnar builds on this module's cache
            from .columnar import ColumnarHistory

            store = ColumnarHistory(
                system_type, metrics=metrics, conflict_cache=self.conflict_cache
            )
            for action in self.behavior:
                store.append(action)
            store.record_build_metrics()
            self.columnar = store
        if metrics is not None:
            metrics.inc("history.index.builds")
            metrics.inc("history.index.events", len(self.behavior))

    # -- snapshot identity --------------------------------------------------

    def covers(self, behavior: Sequence[Action]) -> bool:
        """True iff this index was built over exactly ``behavior``."""
        if behavior is self.behavior:
            return True
        if len(behavior) != len(self.behavior):
            return False
        return tuple(behavior) == self.behavior

    # -- memoized orphan / visibility ----------------------------------------

    def is_orphan(self, transaction: TransactionName) -> bool:
        """Memoized: some ancestor of ``transaction`` aborted."""
        store = self.columnar
        if store is not None:
            dense = store.txn_id_of(transaction)
            if dense is not None:
                return bool(store.orphan_flags()[dense])
        memo = self._orphan_memo
        verdict = memo.get(transaction)
        if verdict is None:
            # orphan(T) = T aborted, or parent(T) is an orphan
            if transaction in self.aborted:
                verdict = True
            elif transaction.is_root:
                verdict = False
            else:
                verdict = self.is_orphan(transaction.parent)
            memo[transaction] = verdict
        return verdict

    def is_visible(self, source: TransactionName, to: TransactionName) -> bool:
        """Memoized per ``(source, to)``: every ancestor of ``source`` up to
        (but excluding) an ancestor of ``to`` has committed."""
        store = self.columnar
        if store is not None and to.is_root:
            dense = store.txn_id_of(source)
            if dense is not None:
                return bool(store.visible_flags()[dense])
        memo = self._visible_memo
        key = (source, to)
        verdict = memo.get(key)
        if verdict is None:
            if source.is_ancestor_of(to):
                verdict = True
            elif source not in self.committed:
                verdict = False
            else:
                verdict = self.is_visible(source.parent, to)
            memo[key] = verdict
            if self._metrics is not None:
                self._metrics.inc("history.index.visibility.memo_misses")
        elif self._metrics is not None:
            self._metrics.inc("history.index.visibility.memo_hits")
        return verdict

    # -- cached projections ----------------------------------------------------

    def serial_projection(self) -> Behavior:
        """``serial(beta)`` as an index slice (cached)."""
        if self._all_serial:
            return self.behavior
        if self._serial_projection is None:
            behavior = self.behavior
            self._serial_projection = tuple(
                behavior[i] for i in self._serial_positions
            )
        return self._serial_projection

    def project_transaction(self, transaction: TransactionName) -> Behavior:
        """``beta | T`` as an index slice (cached per transaction)."""
        cached = self._transaction_projections.get(transaction)
        if cached is None:
            behavior = self.behavior
            cached = tuple(
                behavior[i] for i in self._by_transaction.get(transaction, ())
            )
            self._transaction_projections[transaction] = cached
        return cached

    def project_object(self, obj: ObjectName) -> Behavior:
        """``beta | X`` as an index slice (cached per object).

        Requires the index to have been built with a ``system_type``.
        """
        if self.system_type is None:
            raise ValueError("HistoryIndex built without a system_type")
        cached = self._object_projections.get(obj)
        if cached is None:
            behavior = self.behavior
            cached = tuple(behavior[i] for i in self._by_object.get(obj, ()))
            self._object_projections[obj] = cached
        return cached

    def visible_projection(self, to: TransactionName = ROOT) -> Behavior:
        """``visible(beta, T)`` (cached per ``to``)."""
        cached = self._visible_projections.get(to)
        if cached is None:
            behavior = self.behavior
            is_visible = self.is_visible
            cached = tuple(
                behavior[i]
                for i in self._serial_positions
                if is_visible(hightransaction(behavior[i]), to)
            )
            self._visible_projections[to] = cached
        return cached

    def clean_projection(self) -> Behavior:
        """``clean(beta)`` (cached)."""
        if self._clean_projection is None:
            behavior = self.behavior
            is_orphan = self.is_orphan
            self._clean_projection = tuple(
                behavior[i]
                for i in self._serial_positions
                if not is_orphan(hightransaction(behavior[i]))
            )
        return self._clean_projection

    # -- dispatch hooks for the events-module helpers -------------------------

    def cached_visible_projection(
        self, behavior: Sequence[Action], to: TransactionName
    ) -> Optional[Behavior]:
        """The cached ``visible(beta, T)`` when this index covers ``behavior``."""
        if not self.covers(behavior):
            return None
        return self.visible_projection(to)

    def cached_clean_projection(
        self, behavior: Sequence[Action]
    ) -> Optional[Behavior]:
        """The cached ``clean(beta)`` when this index covers ``behavior``."""
        if not self.covers(behavior):
            return None
        return self.clean_projection()

    def cached_project_transaction(
        self, behavior: Sequence[Action], transaction: TransactionName
    ) -> Optional[Behavior]:
        """The cached ``beta | T`` when this index covers ``behavior``."""
        if not self.covers(behavior):
            return None
        return self.project_transaction(transaction)

    def cached_project_object(
        self, behavior: Sequence[Action], obj: ObjectName
    ) -> Optional[Behavior]:
        """The cached ``beta | X`` when this index covers ``behavior``."""
        if self.system_type is None or not self.covers(behavior):
            return None
        return self.project_object(obj)

    # -- conflict enumeration inputs -------------------------------------------

    def objects_with_accesses(self) -> Tuple[ObjectName, ...]:
        """Objects with at least one access REQUEST_COMMIT, in name order."""
        return tuple(sorted(self._access_commits))

    def visible_access_commits(
        self, obj: ObjectName
    ) -> List[Tuple[int, TransactionName, Any, Any]]:
        """The access REQUEST_COMMIT events on ``obj`` visible to ``T0``.

        Entries are ``(position, access, op, value)`` in behavior order —
        exactly the per-object operation sequence the ``conflict(beta)``
        relation is enumerated from.  Cached per object.
        """
        cached = self._visible_access_commits.get(obj)
        if cached is None:
            is_visible = self.is_visible
            cached = [
                entry
                for entry in self._access_commits.get(obj, ())
                if is_visible(entry[1], ROOT)
            ]
            self._visible_access_commits[obj] = cached
        return cached

    def record_conflict_metrics(self, checked: int, skipped: int) -> None:
        """Fold one conflict-enumeration run into the registry (if any)."""
        if self._metrics is None:
            return
        self._metrics.inc("history.index.conflict.pairs_checked", checked)
        self._metrics.inc("history.index.conflict.pairs_skipped_read_runs", skipped)
        self._metrics.set_gauge(
            "history.index.conflict.cache_size", len(self.conflict_cache)
        )
        self._metrics.inc(
            "history.index.conflict.cache_hits", self.conflict_cache.hits
        )
        self.conflict_cache.hits = 0

    def __repr__(self) -> str:
        return (
            f"HistoryIndex(events={len(self.behavior)}, "
            f"transactions={len(self._by_transaction)}, "
            f"objects={len(self._access_commits)})"
        )
