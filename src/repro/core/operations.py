"""Operations and the ``perform`` / ``operations`` translations.

An *operation* of an object ``X`` is a pair ``(T, v)`` where ``T`` is an
access to ``X`` and ``v`` a return value (Section 2.2).  The paper moves
back and forth between sequences of operations and the serial-object
behaviors they induce:

* ``perform(T, v) = CREATE(T) REQUEST_COMMIT(T, v)`` and its extension to
  sequences (:func:`perform`);
* ``operations(beta)`` extracts the operations corresponding to the
  REQUEST_COMMIT events of accesses in an event sequence
  (:func:`operations`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Set, Tuple

from .actions import Action, Behavior, Create, RequestCommit
from .names import ObjectName, SystemType, TransactionName

__all__ = [
    "Operation",
    "perform",
    "operations",
    "operations_of_object",
    "is_serial_object_well_formed",
    "operation_payloads",
]


@dataclass(frozen=True)
class Operation:
    """An operation ``(T, v)``: an access transaction paired with a value."""

    transaction: TransactionName
    value: Any

    def __str__(self) -> str:
        return f"({self.transaction}, {self.value!r})"


def perform(ops: Sequence[Operation]) -> Behavior:
    """``perform(xi)``: the action sequence CREATE/REQUEST_COMMIT per operation."""
    actions: List[Action] = []
    for op in ops:
        actions.append(Create(op.transaction))
        actions.append(RequestCommit(op.transaction, op.value))
    return tuple(actions)


def operations(
    behavior: Sequence[Action], system_type: SystemType
) -> Tuple[Operation, ...]:
    """``operations(beta)``: operations of the access REQUEST_COMMIT events."""
    return tuple(
        Operation(action.transaction, action.value)
        for action in behavior
        if isinstance(action, RequestCommit) and system_type.is_access(action.transaction)
    )


def operations_of_object(
    behavior: Sequence[Action], obj: ObjectName, system_type: SystemType
) -> Tuple[Operation, ...]:
    """Operations in ``behavior`` whose access touches the object ``obj``."""
    return tuple(
        op
        for op in operations(behavior, system_type)
        if system_type.object_of(op.transaction) == obj
    )


def is_serial_object_well_formed(behavior: Sequence[Action]) -> bool:
    """Check serial object well-formedness (Section 2.2.2).

    The sequence must be a prefix of
    ``CREATE(T1) REQUEST_COMMIT(T1, v1) CREATE(T2) REQUEST_COMMIT(T2, v2) ...``
    with pairwise distinct transaction names.
    """
    seen: Set[TransactionName] = set()
    pending: Optional[TransactionName] = None
    for action in behavior:
        if isinstance(action, Create):
            if pending is not None or action.transaction in seen:
                return False
            pending = action.transaction
            seen.add(action.transaction)
        elif isinstance(action, RequestCommit):
            if pending != action.transaction:
                return False
            pending = None
        else:
            return False
    return True


def operation_payloads(
    ops: Sequence[Operation], system_type: SystemType
) -> Tuple[Tuple[Any, Any], ...]:
    """Resolve operations to ``(op_descriptor, value)`` pairs via the system type.

    Serial specifications (read/write registers, arbitrary data types)
    speak in operation descriptors, not transaction names; this is the
    bridge.
    """
    return tuple(
        (system_type.access(op.transaction).op, op.value) for op in ops
    )
