"""Columnar history engine: dense ints, struct-of-arrays, bitset visibility.

:class:`repro.core.history.HistoryIndex` (PR 3) centralised every scan a
certifier needs, but the representation underneath it is still one
Python object per event, walked through dict and tuple lookups.  This
module changes the representation without changing any answer:

* **Append-time interning.**  Transaction names, objects and operation
  classes are interned to dense ints as events arrive; parents are
  interned before children, so every derived relation can run a single
  forward pass over ids.  Operation classes — ``(op descriptor, value)``
  pairs — share the :class:`repro.core.history.ConflictCache` interner,
  so the memoized conflict verdicts are keyed by exactly the ints the
  event columns store.
* **Struct-of-arrays storage.**  The history is parallel ``array('q')``
  columns (event kind, transaction id; per object: position,
  transaction id, operation class id) instead of a list of action
  objects.  :meth:`ColumnarHistory.append` accepts a lazy event stream —
  nothing requires a materialised behavior.
* **Bitset visibility and orphans.**  ``visible(·, T0)`` membership and
  the orphan set are computed in one forward pass over transaction ids
  (parents first) and stored both as Python-int bitsets (one bit per
  transaction) and as flat flag bytes for O(1) point queries.
* **Linear conflict enumeration.**  For read/write-structured specs
  (``conflicts_iff_writer``) each object is resolved in one pass: two
  running bitsets over top-level transactions (any-access, writer) give
  every cross-top conflict edge by bitwise OR, with the writer-boundary
  skip expressed on the operation-class column; nested same-top pairs
  fall out of tiny per-top buckets via dense id-chain LCA.  Generic
  specs keep the writer-boundary pair scan, but over int columns with
  :meth:`repro.core.history.ConflictCache.conflicts_ids` verdicts.

The object API stays a *view layer*: :class:`TransactionName` and
operation objects are materialised only at the boundary — cycle
witnesses, ARV diagnostics, sibling-edge provenance.  In particular
:class:`ColumnarSerializationGraph` answers ``find_cycle`` by a dense
DFS that replicates the object graph's traversal order exactly, and only
builds the real per-group :class:`repro.core.graph.Digraph` structures
when a caller walks nodes/edges or topologically sorts.

The engine is exposed as the third A/B lane: ``certify(...,
columnar=True)``, ``HistoryIndex(..., columnar=True)``, and the
``columnar=`` flags on the oracle/view/parallel layers all route here;
verdicts, ARVs, cycles and witnesses are identical across the naive,
indexed and columnar lanes (asserted by the three-way equivalence
suite).  Metrics appear under ``history.columnar.*`` (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .actions import (
    Abort,
    Action,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_serial_action,
)
from .correctness import (
    Certificate,
    WitnessError,
    _visible_transactions,
    build_witness,
    validate_serial_behavior,
)
from .events import project_transaction
from .history import ConflictCache, HistoryIndex, spec_is_read_only
from .names import ROOT, ObjectName, SystemType, TransactionName
from .return_values import ReturnValueViolation
from .graph import Digraph
from .serialization_graph import (
    CONFLICT,
    PRECEDES,
    SerializationGraph,
    SiblingEdge,
)
from .sibling_order import SiblingOrder

__all__ = [
    "ColumnarHistory",
    "ColumnarSerializationGraph",
    "build_columnar_graph",
    "certify_columnar",
    "columnar_arv_violations",
    "columnar_conflict_edges",
    "columnar_precedes_edges",
]

# Event kind codes for the kind column; one small int per serial action
# class.  Inform actions are non-serial and never enter the columns.
K_CREATE = 0
K_REQUEST_CREATE = 1
K_REQUEST_COMMIT = 2
K_COMMIT = 3
K_ABORT = 4
K_REPORT_COMMIT = 5
K_REPORT_ABORT = 6

_KIND_OF: Dict[Type[Action], int] = {
    Create: K_CREATE,
    RequestCreate: K_REQUEST_CREATE,
    RequestCommit: K_REQUEST_COMMIT,
    Commit: K_COMMIT,
    Abort: K_ABORT,
    ReportCommit: K_REPORT_COMMIT,
    ReportAbort: K_REPORT_ABORT,
}


def _unpack_bits(bits: int, count: int) -> bytes:
    """One byte (0/1) per position of a ``count``-bit bitset int."""
    if count <= 0:
        return b""
    raw = bits.to_bytes((count + 7) // 8, "little")
    flags = bytearray(count)
    for position in range(count):
        flags[position] = (raw[position >> 3] >> (position & 7)) & 1
    return bytes(flags)


def _pack_bits(flags: Sequence[int]) -> int:
    """The bitset int whose bit ``i`` is set iff ``flags[i]`` is truthy."""
    packed = bytearray((len(flags) + 7) // 8)
    for position, flag in enumerate(flags):
        if flag:
            packed[position >> 3] |= 1 << (position & 7)
    return int.from_bytes(bytes(packed), "little")


class ColumnarHistory:
    """Struct-of-arrays history with dense ids and bitset derived state.

    Feed events through :meth:`append` (accepts any iterable order the
    behavior arrives in; non-serial actions are dropped, mirroring
    ``serial(beta)``), then query the derived columns.  ``system_type``
    is required for object columns (conflicts, ARVs); without it only
    the transaction-level machinery is available.  ``conflict_cache``
    shares one interner/verdict table with the indexed and online lanes.
    """

    def __init__(
        self,
        system_type: Optional[SystemType] = None,
        metrics: Optional[MetricsRegistry] = None,
        conflict_cache: Optional[ConflictCache] = None,
    ) -> None:
        self.system_type = system_type
        self._metrics = metrics
        self.cache = conflict_cache if conflict_cache is not None else ConflictCache()
        self.events = 0
        # -- transaction interning (parent id < child id, root is 0) -----
        self._txn_ids: Dict[TransactionName, int] = {}
        self.txn_names: List[TransactionName] = []
        self.txn_parent = array("q")
        #: dense ancestor chain per transaction: ids at depth 1..depth(T)
        self._txn_chains: List[Tuple[int, ...]] = []
        #: object id per access leaf, -1 for non-accesses
        self._txn_obj = array("q")
        #: op descriptor per access leaf, None for non-accesses
        self._txn_op: List[Any] = []
        # -- object interning --------------------------------------------
        self._obj_ids: Dict[ObjectName, int] = {}
        self.obj_names: List[ObjectName] = []
        # -- the event log: parallel int columns -------------------------
        self.ev_kind = array("q")
        self.ev_txn = array("q")
        # -- status bitsets (bit = transaction id) -----------------------
        self.committed_bits = 0
        self.aborted_bits = 0
        self.created_bits = 0
        self.reported_bits = 0
        # -- per-object access REQUEST_COMMIT columns --------------------
        self.acc_pos: List["array[int]"] = []
        self.acc_txn: List["array[int]"] = []
        self.acc_cls: List["array[int]"] = []
        # -- precedes inputs, in dense ids / event positions -------------
        self.first_report_pos: Dict[int, int] = {}
        self.request_pos: Dict[int, int] = {}
        self.requests_by_parent: Dict[int, List[int]] = {}
        #: transaction ids in first-REQUEST_CREATE order (node seeding)
        self.request_order: List[int] = []
        # -- lazily derived state ----------------------------------------
        self._visible_bits: Optional[int] = None
        self._visible_flags: Optional[bytes] = None
        self._orphan_bits: Optional[int] = None
        self._orphan_flags: Optional[bytes] = None
        self._rank: Optional[List[int]] = None
        self.intern(ROOT)

    # -- interning ---------------------------------------------------------

    def intern(self, name: TransactionName) -> int:
        """The dense id of ``name``, interning its ancestors first."""
        dense = self._txn_ids.get(name)
        if dense is None:
            parent_id = -1 if name.is_root else self.intern(name.parent)
            dense = len(self.txn_names)
            self._txn_ids[name] = dense
            self.txn_names.append(name)
            self.txn_parent.append(parent_id)
            if parent_id < 0:
                self._txn_chains.append(())
            else:
                self._txn_chains.append(self._txn_chains[parent_id] + (dense,))
            system_type = self.system_type
            if system_type is not None and system_type.is_access(name):
                access = system_type.access(name)
                self._txn_obj.append(self._intern_object(access.obj))
                self._txn_op.append(access.op)
            else:
                self._txn_obj.append(-1)
                self._txn_op.append(None)
        return dense

    def txn_id_of(self, name: TransactionName) -> Optional[int]:
        """The dense id of ``name`` if it was interned, else None."""
        return self._txn_ids.get(name)

    def _intern_object(self, obj: ObjectName) -> int:
        oid = self._obj_ids.get(obj)
        if oid is None:
            oid = len(self.obj_names)
            self._obj_ids[obj] = oid
            self.obj_names.append(obj)
            self.acc_pos.append(array("q"))
            self.acc_txn.append(array("q"))
            self.acc_cls.append(array("q"))
        return oid

    # -- ingestion ---------------------------------------------------------

    def append(self, action: Action) -> bool:
        """Fold one action into the columns; True iff it was serial."""
        kind = _KIND_OF.get(type(action))
        if kind is None:
            if not is_serial_action(action):
                return False
            # subclassed action types: resolve through isinstance once
            for action_type, code in _KIND_OF.items():
                if isinstance(action, action_type):
                    kind = code
                    break
            else:  # pragma: no cover - is_serial_action covers the 7 kinds
                return False
        dense = self.intern(action.transaction)
        position = self.events
        self.events = position + 1
        self.ev_kind.append(kind)
        self.ev_txn.append(dense)
        self._visible_bits = self._visible_flags = None
        self._orphan_bits = self._orphan_flags = None
        if kind == K_REQUEST_COMMIT:
            oid = self._txn_obj[dense]
            if oid >= 0:
                cls = self.cache.operation_id(self._txn_op[dense], action.value)
                self.acc_pos[oid].append(position)
                self.acc_txn[oid].append(dense)
                self.acc_cls[oid].append(cls)
        elif kind == K_COMMIT:
            self.committed_bits |= 1 << dense
        elif kind == K_ABORT:
            self.aborted_bits |= 1 << dense
        elif kind == K_CREATE:
            self.created_bits |= 1 << dense
        elif kind == K_REQUEST_CREATE:
            if dense not in self.request_pos:
                self.request_pos[dense] = position
                self.request_order.append(dense)
                self.requests_by_parent.setdefault(
                    self.txn_parent[dense], []
                ).append(dense)
        else:  # K_REPORT_COMMIT / K_REPORT_ABORT
            self.reported_bits |= 1 << dense
            self.first_report_pos.setdefault(dense, position)
        return True

    def extend(self, behavior: Iterable[Action]) -> int:
        """Append a whole (possibly lazy) event stream; serial count."""
        count = 0
        for action in behavior:
            if self.append(action):
                count += 1
        return count

    # -- bitset derived state ----------------------------------------------

    def visible_bits(self) -> int:
        """Bitset: bit ``t`` set iff transaction ``t`` is visible to T0."""
        if self._visible_bits is None:
            self.visible_flags()
        assert self._visible_bits is not None
        return self._visible_bits

    def visible_flags(self) -> bytes:
        """Flat 0/1 byte per transaction id: visible to T0?

        One forward pass: ids are allocated parents-first, so
        ``visible(T) = committed(T) and visible(parent(T))`` resolves in
        id order with no recursion (``T0`` itself is visible).
        """
        flags = self._visible_flags
        if flags is None:
            count = len(self.txn_names)
            committed = _unpack_bits(self.committed_bits, count)
            parent = self.txn_parent
            out = bytearray(count)
            out[0] = 1
            for dense in range(1, count):
                if committed[dense] and out[parent[dense]]:
                    out[dense] = 1
            flags = bytes(out)
            self._visible_flags = flags
            self._visible_bits = _pack_bits(flags)
        return flags

    def orphan_bits(self) -> int:
        """Bitset: bit ``t`` set iff some ancestor of ``t`` aborted."""
        if self._orphan_bits is None:
            self.orphan_flags()
        assert self._orphan_bits is not None
        return self._orphan_bits

    def orphan_flags(self) -> bytes:
        """Flat 0/1 byte per transaction id: is the transaction an orphan?"""
        flags = self._orphan_flags
        if flags is None:
            count = len(self.txn_names)
            aborted = _unpack_bits(self.aborted_bits, count)
            parent = self.txn_parent
            out = bytearray(count)
            for dense in range(1, count):
                if aborted[dense] or out[parent[dense]]:
                    out[dense] = 1
            flags = bytes(out)
            self._orphan_flags = flags
            self._orphan_bits = _pack_bits(flags)
        return flags

    def name_rank(self) -> List[int]:
        """Rank of each dense id under TransactionName sort order.

        Lets dense edge lists sort by int keys while reproducing exactly
        the ``(source, target)`` name ordering of the object lanes.
        """
        rank = self._rank
        if rank is None:
            order = sorted(
                range(len(self.txn_names)), key=self.txn_names.__getitem__
            )
            rank = [0] * len(order)
            for position, dense in enumerate(order):
                rank[dense] = position
            self._rank = rank
        return rank

    # -- conflict / precedes enumeration over int columns ------------------

    def conflict_edge_ids(self) -> List[Tuple[int, int]]:
        """The deduplicated ``conflict(beta)`` edges as dense id pairs.

        Per object: read/write-structured specs resolve in one linear
        bitset sweep; generic specs run the writer-boundary pair scan
        with id-keyed memoized verdicts.  Order is unspecified (callers
        sort by :meth:`name_rank`).
        """
        system_type = self.system_type
        if system_type is None:
            raise ValueError("ColumnarHistory built without a system_type")
        visible = self.visible_flags()
        edges: Set[Tuple[int, int]] = set()
        checked = 0
        skipped = 0
        bitset_pairs = 0
        payload = self.cache.operation_payload
        for oid, obj in enumerate(self.obj_names):
            spec = system_type.spec(obj)
            txn_col = self.acc_txn[oid]
            cls_col = self.acc_cls[oid]
            tids: List[int] = []
            clss: List[int] = []
            for row in range(len(txn_col)):
                dense = txn_col[row]
                if visible[dense]:
                    tids.append(dense)
                    clss.append(cls_col[row])
            k = len(tids)
            if k < 2:
                continue
            read_only: List[bool] = []
            ro_by_cls: Dict[int, bool] = {}
            for cls in clss:
                flag = ro_by_cls.get(cls)
                if flag is None:
                    flag = spec_is_read_only(spec, payload(cls)[0])
                    ro_by_cls[cls] = flag
                read_only.append(flag)
            if getattr(spec, "conflicts_iff_writer", False):
                self._rw_bitset_edges(tids, read_only, edges)
                bitset_pairs += k * (k - 1) // 2
                continue
            sid = self.cache.spec_id(spec)
            conflicts_ids = self.cache.conflicts_ids
            chains = self._txn_chains
            writer_positions = [i for i in range(k) if not read_only[i]]
            compared = 0
            for i in range(k):
                tid_i = tids[i]
                cls_i = clss[i]
                if read_only[i]:
                    partners: Sequence[int] = writer_positions[
                        bisect_right(writer_positions, i):
                    ]
                else:
                    partners = range(i + 1, k)
                for j in partners:
                    compared += 1
                    tid_j = tids[j]
                    if tid_i == tid_j:
                        continue  # same access leaf: ancestor-related
                    if not conflicts_ids(sid, cls_i, clss[j]):
                        continue
                    chain_i = chains[tid_i]
                    chain_j = chains[tid_j]
                    depth = 0
                    limit = min(len(chain_i), len(chain_j))
                    while depth < limit and chain_i[depth] == chain_j[depth]:
                        depth += 1
                    if depth == limit:
                        continue  # one access under the other: no siblings
                    edges.add((chain_i[depth], chain_j[depth]))
            checked += compared
            skipped += k * (k - 1) // 2 - compared
        if self._metrics is not None:
            metrics = self._metrics
            metrics.inc("history.columnar.conflict.pairs_bitset", bitset_pairs)
            metrics.inc("history.columnar.conflict.pairs_checked", checked)
            metrics.inc(
                "history.columnar.conflict.pairs_skipped_read_runs", skipped
            )
            metrics.inc("history.columnar.conflict.edges", len(edges))
            metrics.set_gauge(
                "history.columnar.conflict.cache_size", len(self.cache)
            )
        return list(edges)

    def _rw_bitset_edges(
        self,
        tids: Sequence[int],
        read_only: Sequence[bool],
        edges: Set[Tuple[int, int]],
    ) -> None:
        """One-pass conflict edges for a writer-structured object.

        ``any_tops``/``writer_tops`` are bitsets over *top-level* ids
        accumulating the tops with a prior access / prior writer.  Each
        event ORs the appropriate partner mask into its top's incoming
        set — that covers every cross-top ordered pair with a writer.
        Same-top (nested) pairs are resolved pairwise from small per-top
        buckets via the dense ancestor chains.
        """
        chains = self._txn_chains
        any_tops = 0
        writer_tops = 0
        incoming: Dict[int, int] = {}
        per_top: Dict[int, List[Tuple[int, bool]]] = {}
        top_of: Dict[int, int] = {}
        for row, dense in enumerate(tids):
            is_read = read_only[row]
            top = top_of.get(dense)
            if top is None:
                top = chains[dense][0]
                top_of[dense] = top
            partners = writer_tops if is_read else any_tops
            if partners:
                incoming[top] = incoming.get(top, 0) | partners
            bucket = per_top.get(top)
            if bucket is None:
                per_top[top] = bucket = []
            else:
                chain = chains[dense]
                for prior, prior_read in bucket:
                    if prior == dense or (prior_read and is_read):
                        continue
                    prior_chain = chains[prior]
                    depth = 1  # index 0 is the shared top
                    limit = min(len(prior_chain), len(chain))
                    while depth < limit and prior_chain[depth] == chain[depth]:
                        depth += 1
                    if depth == limit:
                        continue  # ancestor-related accesses: no siblings
                    edges.add((prior_chain[depth], chain[depth]))
            bucket.append((dense, is_read))
            bit = 1 << top
            any_tops |= bit
            if not is_read:
                writer_tops |= bit
        for top, bits in incoming.items():
            bits &= ~(1 << top)
            while bits:
                low = bits & -bits
                edges.add((low.bit_length() - 1, top))
                bits ^= low

    def precedes_edge_ids(self) -> List[Tuple[int, int]]:
        """The ``precedes(beta)`` edges as dense id pairs (unordered)."""
        visible = self.visible_flags()
        parent = self.txn_parent
        request_pos = self.request_pos
        edges: List[Tuple[int, int]] = []
        for reported, report_position in self.first_report_pos.items():
            group = parent[reported]
            if not visible[group]:
                continue
            for requested in self.requests_by_parent.get(group, ()):
                if requested == reported:
                    continue
                if report_position < request_pos[requested]:
                    edges.append((reported, requested))
        return edges

    # -- metrics -----------------------------------------------------------

    def record_build_metrics(self) -> None:
        """Fold the build into the registry (if any)."""
        if self._metrics is None:
            return
        metrics = self._metrics
        metrics.inc("history.columnar.builds")
        metrics.inc("history.columnar.events", self.events)
        metrics.set_gauge("history.columnar.transactions", len(self.txn_names))
        metrics.set_gauge("history.columnar.objects", len(self.obj_names))
        metrics.set_gauge(
            "history.columnar.operation_classes", self.cache.operation_count()
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarHistory(events={self.events}, "
            f"transactions={len(self.txn_names)}, "
            f"objects={len(self.obj_names)})"
        )


# ---------------------------------------------------------------------------
# Object-boundary views: sibling edges, ARV diagnostics
# ---------------------------------------------------------------------------


def columnar_conflict_edges(store: ColumnarHistory) -> List[SiblingEdge]:
    """``conflict(beta)`` as sorted :class:`SiblingEdge` objects.

    Same result as the indexed enumeration — names materialise only
    here, at the boundary.
    """
    names = store.txn_names
    edges = [
        SiblingEdge(names[source], names[target], CONFLICT)
        for source, target in store.conflict_edge_ids()
    ]
    return sorted(edges, key=lambda e: (e.source, e.target))


def columnar_precedes_edges(store: ColumnarHistory) -> List[SiblingEdge]:
    """``precedes(beta)`` as sorted :class:`SiblingEdge` objects."""
    names = store.txn_names
    edges = [
        SiblingEdge(names[source], names[target], PRECEDES)
        for source, target in store.precedes_edge_ids()
    ]
    return sorted(edges, key=lambda e: (e.source, e.target))


def columnar_arv_violations(
    store: ColumnarHistory,
) -> List[ReturnValueViolation]:
    """Appropriate-return-value check straight off the columns.

    Replays each object's *visible* operation-class column against the
    spec's ``apply`` protocol; diagnostics (names, reason strings) are
    identical to :func:`repro.core.return_values.check_appropriate_return_values`.
    """
    system_type = store.system_type
    if system_type is None:
        raise ValueError("ColumnarHistory built without a system_type")
    visible = store.visible_flags()
    payload = store.cache.operation_payload
    names = store.txn_names
    violations: List[ReturnValueViolation] = []
    for obj in system_type.object_names():
        oid = store._obj_ids.get(obj)
        if oid is None:
            continue  # no accesses: the empty sequence is trivially legal
        spec = system_type.spec(obj)
        txn_col = store.acc_txn[oid]
        cls_col = store.acc_cls[oid]
        apply = getattr(spec, "apply", None)
        if apply is None:
            # is_legal-only specs: prefix replays, as in the object lane
            rows = [
                (names[txn_col[row]], payload(cls_col[row]))
                for row in range(len(txn_col))
                if visible[txn_col[row]]
            ]
            pairs = [pair for _, pair in rows]
            for cut in range(1, len(pairs) + 1):
                if not spec.is_legal(pairs[:cut]):
                    violations.append(
                        ReturnValueViolation(
                            obj,
                            rows[cut - 1][0],
                            f"operation {pairs[cut - 1]!r} is illegal after "
                            f"{cut - 1} visible operation(s)",
                        )
                    )
                    break
            continue
        state = spec.initial
        position = 0
        for row in range(len(txn_col)):
            dense = txn_col[row]
            if not visible[dense]:
                continue
            op, value = payload(cls_col[row])
            state, expected = apply(state, op)
            if value != expected:
                violations.append(
                    ReturnValueViolation(
                        obj,
                        names[dense],
                        f"operation {(op, value)!r} is illegal after "
                        f"{position} visible operation(s)",
                    )
                )
                break
            position += 1
    return violations


# ---------------------------------------------------------------------------
# The lazy serialization graph
# ---------------------------------------------------------------------------


class ColumnarSerializationGraph(SerializationGraph):
    """``SG(beta)`` over dense ids with on-demand object materialisation.

    The cycle search — the only structural query the certifier needs —
    runs directly on int adjacency lists built to replicate the object
    :class:`SerializationGraph`'s insertion order exactly (seeded nodes,
    then conflict edges in name order, then precedes edges in name
    order), so it returns the *same* cycle the other lanes would.  Any
    richer access (nodes, edges, topological sort, mutation) first
    materialises the real per-group digraphs from the same dense data,
    after which this behaves exactly like its base class.
    """

    def __init__(
        self,
        store: ColumnarHistory,
        seed_ids: Sequence[int],
        conflict_ids: Sequence[Tuple[int, int]],
        precedes_ids: Sequence[Tuple[int, int]],
    ) -> None:
        super().__init__()
        self._store = store
        self._seed_ids = list(seed_ids)
        self._conflict_ids = list(conflict_ids)
        self._precedes_ids = list(precedes_ids)
        self._materialized = False
        # dense adjacency in first-insertion order, as Digraph would see it
        self._dense_groups: Dict[int, List[int]] = {}
        self._dense_nodes: Set[int] = set()
        self._dense_succ: Dict[int, List[int]] = {}
        self._dense_succ_seen: Dict[int, Set[int]] = {}
        parent = store.txn_parent
        touch = self._touch
        for dense in self._seed_ids:
            touch(parent, dense)
        for source, target in self._conflict_ids:
            touch(parent, source)
            touch(parent, target)
            seen = self._dense_succ_seen[source]
            if target not in seen:
                seen.add(target)
                self._dense_succ[source].append(target)
        for source, target in self._precedes_ids:
            touch(parent, source)
            touch(parent, target)
            seen = self._dense_succ_seen[source]
            if target not in seen:
                seen.add(target)
                self._dense_succ[source].append(target)

    def _touch(self, parent: "array[int]", dense: int) -> None:
        if dense not in self._dense_nodes:
            self._dense_nodes.add(dense)
            self._dense_groups.setdefault(parent[dense], []).append(dense)
            self._dense_succ[dense] = []
            self._dense_succ_seen[dense] = set()

    # -- dense structural counts (no materialisation) ----------------------

    def dense_group_count(self) -> int:
        return len(self._dense_groups)

    def dense_node_count(self) -> int:
        return len(self._dense_nodes)

    def dense_edge_count(self) -> int:
        """Distinct (source, target) pairs — labels merged, like Digraph."""
        return sum(len(succ) for succ in self._dense_succ.values())

    # -- materialisation ---------------------------------------------------

    def _ensure(self) -> None:
        """Populate the object digraphs from the dense data, once.

        Insertion order replicates the indexed lane exactly: seed nodes
        first, then conflict edges (already in name order), then
        precedes edges — so topological sorts and witnesses agree.
        """
        if self._materialized:
            return
        self._materialized = True
        names = self._store.txn_names
        for dense in self._seed_ids:
            super().add_node(names[dense])
        for source, target in self._conflict_ids:
            super().add_edge(SiblingEdge(names[source], names[target], CONFLICT))
        for source, target in self._precedes_ids:
            super().add_edge(SiblingEdge(names[source], names[target], PRECEDES))

    # -- cycle search over int columns -------------------------------------

    def find_cycle(
        self,
    ) -> Optional[Tuple[TransactionName, List[TransactionName]]]:
        if self._materialized:
            return super().find_cycle()
        names = self._store.txn_names
        for group in sorted(self._dense_groups, key=names.__getitem__):
            cycle = self._dense_group_cycle(group)
            if cycle is not None:
                return names[group], [names[dense] for dense in cycle]
        return None

    def _dense_group_cycle(self, group: int) -> Optional[List[int]]:
        """Digraph.find_cycle transliterated onto the dense adjacency."""
        succ = self._dense_succ
        nodes = self._dense_groups[group]
        WHITE, GREY = 0, 1
        colour = {dense: WHITE for dense in nodes}
        parent: Dict[int, Optional[int]] = {}
        for root in nodes:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(succ[root]))]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, targets = stack[-1]
                advanced = False
                for target in targets:
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        parent[target] = node
                        stack.append((target, iter(succ[target])))
                        advanced = True
                        break
                    if colour[target] == GREY:
                        cycle = [node]
                        current: Optional[int] = node
                        while current != target:
                            current = parent[current]  # type: ignore[index]
                            assert current is not None
                            cycle.append(current)
                        cycle.reverse()
                        cycle.append(cycle[0])
                        return cycle
                if not advanced:
                    colour[node] = 2  # BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        if self._materialized:
            return super().is_acyclic()
        return self.find_cycle() is None

    # -- everything else materialises first --------------------------------

    def graph_for(self, parent: TransactionName) -> Digraph[TransactionName]:
        self._ensure()
        return super().graph_for(parent)

    def peek_group(
        self, parent: TransactionName
    ) -> Optional[Digraph[TransactionName]]:
        self._ensure()
        return super().peek_group(parent)

    def add_node(self, node: TransactionName) -> None:
        self._ensure()
        super().add_node(node)

    def add_edge(self, edge: SiblingEdge) -> None:
        self._ensure()
        super().add_edge(edge)

    def remove_node(self, node: TransactionName) -> None:
        self._ensure()
        super().remove_node(node)

    def drop_group(self, parent: TransactionName) -> None:
        self._ensure()
        super().drop_group(parent)

    def parents(self) -> Tuple[TransactionName, ...]:
        self._ensure()
        return super().parents()

    def nodes(self) -> Tuple[TransactionName, ...]:
        self._ensure()
        return super().nodes()

    def edges(self) -> Iterator[SiblingEdge]:
        self._ensure()
        return super().edges()

    def edge_count(self) -> int:
        if self._materialized:
            return super().edge_count()
        return self.dense_edge_count()

    def to_sibling_order(self) -> SiblingOrder:
        self._ensure()
        return super().to_sibling_order()

    def to_networkx(self) -> Any:
        self._ensure()
        return super().to_networkx()

    def __repr__(self) -> str:
        return (
            f"SerializationGraph(groups={self.dense_group_count()}, "
            f"nodes={self.dense_node_count()}, "
            f"edges={self.dense_edge_count()})"
        )


def build_columnar_graph(
    store: ColumnarHistory,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ColumnarSerializationGraph:
    """Construct ``SG(beta)`` from a populated :class:`ColumnarHistory`.

    Node seeding, edge enumeration and ordering replicate
    :func:`repro.core.serialization_graph.build_serialization_graph`
    over the same behavior, span names and metrics included.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    visible = store.visible_flags()
    parent = store.txn_parent
    names = store.txn_names
    with tracer.span("sg.seed_nodes"):
        # replicate the indexed lane's set-iteration seeding order
        seed_set: Set[TransactionName] = set()
        for dense in store.request_order:
            seed_set.add(names[dense])
        txn_ids = store._txn_ids
        seed_ids: List[int] = []
        for name in seed_set:
            dense = txn_ids[name]
            if visible[parent[dense]]:
                seed_ids.append(dense)
    with tracer.span("sg.conflict_pairs", events=store.events):
        conflict_ids = store.conflict_edge_ids()
    with tracer.span("sg.precedes_pairs"):
        precedes_ids = store.precedes_edge_ids()
    rank = store.name_rank()
    width = len(rank)

    def edge_key(edge: Tuple[int, int]) -> int:
        return rank[edge[0]] * width + rank[edge[1]]

    conflict_ids.sort(key=edge_key)
    precedes_ids.sort(key=edge_key)
    graph = ColumnarSerializationGraph(store, seed_ids, conflict_ids, precedes_ids)
    if metrics is not None:
        metrics.set_gauge("sg.groups", graph.dense_group_count())
        metrics.set_gauge("sg.nodes", graph.dense_node_count())
        metrics.set_gauge("sg.edges", graph.dense_edge_count())
        metrics.inc("sg.edges.conflict", len(conflict_ids))
        metrics.inc("sg.edges.precedes", len(precedes_ids))
    return graph


# ---------------------------------------------------------------------------
# The columnar certifier
# ---------------------------------------------------------------------------


def certify_columnar(
    behavior: Iterable[Action],
    system_type: SystemType,
    construct_witness: bool = True,
    validate_input: bool = False,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    conflict_cache: Optional[ConflictCache] = None,
) -> Certificate:
    """Theorem 8/19 over the columnar engine; same certificates as
    :func:`repro.core.correctness.certify`.

    ``behavior`` may be any iterable — a lazy generator streams straight
    into the columns, and the raw actions are retained only when the
    witness or input validation needs them.  Phase span names and
    certify metrics mirror the object lanes so dashboards don't care
    which engine ran.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    keep = construct_witness or validate_input
    store = ColumnarHistory(
        system_type, metrics=metrics, conflict_cache=conflict_cache
    )
    serial: List[Action] = []
    with tracer.span("certify"):
        with tracer.span("certify.project"):
            if keep:
                for action in behavior:
                    if store.append(action):
                        serial.append(action)
            else:
                for action in behavior:
                    store.append(action)
        store.record_build_metrics()
        if validate_input:
            # imported lazily: the simple database lives one layer above core
            from ..serial.simple_db import check_simple_behavior

            with tracer.span("certify.validate_input"):
                input_problems = check_simple_behavior(tuple(serial), system_type)
            if input_problems:
                if metrics is not None:
                    metrics.inc("certify.runs")
                    metrics.inc("certify.rejected")
                    metrics.inc("certify.rejected.malformed_input")
                return Certificate(
                    False,
                    [],
                    None,
                    SerializationGraph(),
                    input_problems=input_problems,
                )
        with tracer.span("certify.arv"):
            arv_violations = columnar_arv_violations(store)
        with tracer.span("certify.build_graph"):
            graph = build_columnar_graph(store, tracer=tracer, metrics=metrics)
        with tracer.span("certify.find_cycle"):
            cycle = graph.find_cycle()
        certified = not arv_violations and cycle is None
        certificate = Certificate(certified, arv_violations, cycle, graph)
        if metrics is not None:
            metrics.inc("certify.runs")
            metrics.inc("certify.certified" if certified else "certify.rejected")
            metrics.set_gauge("certify.arv_violations", len(arv_violations))
        if certified and construct_witness:
            serial_tuple = tuple(serial)
            with tracer.span("certify.witness"):
                order = graph.to_sibling_order()
                certificate.order = order
                index = HistoryIndex(serial_tuple, system_type)
                try:
                    witness = build_witness(
                        serial_tuple, system_type, order, index
                    )
                    certificate.witness_problems = validate_serial_behavior(
                        witness, system_type
                    )
                    if not certificate.witness_problems:
                        for transaction in _visible_transactions(index):
                            if project_transaction(
                                witness, transaction
                            ) != project_transaction(
                                serial_tuple, transaction, index
                            ):
                                certificate.witness_problems.append(
                                    f"witness projection differs at {transaction}"
                                )
                    certificate.witness = witness
                except WitnessError as exc:
                    certificate.witness_problems = [str(exc)]
            if metrics is not None and certificate.witness is not None:
                metrics.set_gauge(
                    "certify.witness_events", len(certificate.witness)
                )
    return certificate
