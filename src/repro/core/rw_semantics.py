"""Read/write object semantics: kinds, final values, and the RW serial spec.

Section 3.1 of the paper fixes a particularly simple object type where
the only accesses are reads and writes.  This module provides:

* the operation descriptors :class:`ReadOp` and :class:`WriteOp`;
* the paper's ``write-sequence``, ``last-write`` and ``final-value``
  operators over sequences of serial actions (and their ``clean-``
  variants from Section 3.3);
* :class:`RWSpec`, the serial specification object used by the checkers
  (legality of operation sequences per Lemma 4, conflicts per Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Optional, Sequence, Tuple

from .actions import Action, RequestCommit
from .events import StatusIndex, clean_projection
from .names import ObjectName, SystemType, TransactionName

__all__ = [
    "ReadOp",
    "WriteOp",
    "OK",
    "is_read_access",
    "is_write_access",
    "write_sequence",
    "last_write",
    "final_value",
    "clean_write_sequence",
    "clean_last_write",
    "clean_final_value",
    "RWSpec",
]


@dataclass(frozen=True)
class ReadOp:
    """The read operation descriptor (no parameters)."""

    def __str__(self) -> str:
        return "read"


@dataclass(frozen=True)
class WriteOp:
    """The write operation descriptor; ``data`` is the value written."""

    data: Any

    def __post_init__(self) -> None:
        hash(self.data)

    def __str__(self) -> str:
        return f"write({self.data!r})"


#: The fixed return value of every write access (Section 3.1).
OK = "OK"


def is_read_access(name: TransactionName, system_type: SystemType) -> bool:
    """True iff ``name`` is an access performing a read."""
    return system_type.is_access(name) and isinstance(
        system_type.access(name).op, ReadOp
    )


def is_write_access(name: TransactionName, system_type: SystemType) -> bool:
    """True iff ``name`` is an access performing a write."""
    return system_type.is_access(name) and isinstance(
        system_type.access(name).op, WriteOp
    )


def write_sequence(
    behavior: Sequence[Action], obj: ObjectName, system_type: SystemType
) -> Tuple[RequestCommit, ...]:
    """``write-sequence(beta, X)``: REQUEST_COMMIT events of writes to ``X``."""
    return tuple(
        action
        for action in behavior
        if isinstance(action, RequestCommit)
        and is_write_access(action.transaction, system_type)
        and system_type.object_of(action.transaction) == obj
    )


def last_write(
    behavior: Sequence[Action], obj: ObjectName, system_type: SystemType
) -> Optional[TransactionName]:
    """``last-write(beta, X)``: the transaction of the last write, if any."""
    writes = write_sequence(behavior, obj, system_type)
    return writes[-1].transaction if writes else None


def final_value(
    behavior: Sequence[Action], obj: ObjectName, system_type: SystemType
) -> Any:
    """``final-value(beta, X)``: the latest value written, else the initial value."""
    writer = last_write(behavior, obj, system_type)
    if writer is None:
        return system_type.spec(obj).initial
    return system_type.access(writer).op.data


def clean_write_sequence(
    behavior: Sequence[Action],
    obj: ObjectName,
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> Tuple[RequestCommit, ...]:
    """``clean-write-sequence(beta, X) = write-sequence(clean(beta), X)``."""
    return write_sequence(clean_projection(behavior, index), obj, system_type)


def clean_last_write(
    behavior: Sequence[Action],
    obj: ObjectName,
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> Optional[TransactionName]:
    """``clean-last-write(beta, X) = last-write(clean(beta), X)``."""
    return last_write(clean_projection(behavior, index), obj, system_type)


def clean_final_value(
    behavior: Sequence[Action],
    obj: ObjectName,
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> Any:
    """``clean-final-value(beta, X) = final-value(clean(beta), X)``."""
    return final_value(clean_projection(behavior, index), obj, system_type)


@dataclass(frozen=True)
class RWSpec:
    """The serial specification of a read/write object.

    Exposes the protocol the correctness checkers rely on:

    * ``initial`` — the initial value ``d``;
    * :meth:`replay` — run a sequence of ``(op, value)`` pairs, returning
      the final data value, or raising ``ValueError`` on an illegal pair
      (Lemma 4: a read must return the latest written value, a write must
      return ``OK``);
    * :meth:`is_legal` — the boolean form of :meth:`replay`;
    * :meth:`conflicts` — the RW conflict relation of Section 4: two
      operations conflict unless both are reads.
    """

    initial: Any = None

    #: Structural marker: ``conflicts`` is exactly "not both operands
    #: read-only" (two reads commute; anything touching a write
    #: conflicts).  The columnar engine keys on this to resolve whole
    #: objects with bitset sweeps over writer/any-top masks instead of
    #: consulting the spec per pair.  Specs with value-dependent
    #: conflict relations simply omit it (consumers probe with a False
    #: default and fall back to per-pair memoized verdicts).
    conflicts_iff_writer: ClassVar[bool] = True

    def apply(self, state: Any, op: Any) -> Tuple[Any, Any]:
        """Apply one operation to a data value; returns ``(new_state, value)``.

        The same protocol as :meth:`repro.spec.datatype.DataType.apply`,
        so read/write objects and typed objects are interchangeable for
        replay-based checkers.
        """
        if isinstance(op, WriteOp):
            return op.data, OK
        if isinstance(op, ReadOp):
            return state, state
        raise TypeError(f"not a read/write operation: {op!r}")

    def replay(self, pairs: Sequence[Tuple[Any, Any]]) -> Any:
        data = self.initial
        for op, value in pairs:
            data, expected = self.apply(data, op)
            if value != expected:
                raise ValueError(
                    f"{op} returned {value!r}, expected {expected!r}"
                )
        return data

    def is_legal(self, pairs: Sequence[Tuple[Any, Any]]) -> bool:
        try:
            self.replay(pairs)
        except ValueError:
            return False
        return True

    def result_of(self, pairs: Sequence[Tuple[Any, Any]], op: Any) -> Any:
        """The value the next operation ``op`` must return after ``pairs``."""
        data = self.replay(pairs)
        if isinstance(op, WriteOp):
            return OK
        if isinstance(op, ReadOp):
            return data
        raise TypeError(f"not a read/write operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        """True iff ``op`` never changes the state — exactly the reads.

        Same protocol as :meth:`repro.spec.datatype.DataType.is_read_only`;
        conflict enumeration uses it to skip read/read pairs wholesale.
        """
        return isinstance(op, ReadOp)

    def conflicts(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        """Two RW operations conflict iff at least one is a write."""
        return isinstance(op1, WriteOp) or isinstance(op2, WriteOp)
