"""Transaction names, object names, accesses and system types.

The paper models the pattern of transaction nesting as an (in general
infinite) tree of *transaction names* rooted at the mythical transaction
``T0``.  The leaves of the tree are *accesses*; the accesses are
partitioned among *objects*.  We represent a transaction name as a path
of string components from the root, so that the ancestor relation is a
prefix test and the tree never needs to be materialised.

A :class:`SystemType` records the finite part of the tree that a
particular workload actually uses: the set of object names, and for each
access leaf the :class:`Access` record describing which object it
touches and which abstract operation it performs.  In the paper "all
parameters of an access are regarded as encoded in its name"; the
``SystemType`` registry is the executable version of that encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

__all__ = [
    "TransactionName",
    "ROOT",
    "ObjectName",
    "Access",
    "SystemType",
    "lca",
]


# Interning caches.  Names are immutable values, so hot loops (ancestor
# walks, LCA projections, sibling-edge construction) can share one
# canonical instance per path instead of allocating fresh tuples and
# names on every call.  The caches grow with the set of *distinct* names
# a process touches — bounded by the workloads it certifies, the same
# lifetime as a ``SystemType``'s access registry.
_INTERNED: Dict[Tuple[str, ...], "TransactionName"] = {}
_CHAINS: Dict[Tuple[str, ...], Tuple["TransactionName", ...]] = {}


@dataclass(frozen=True, order=True)
class TransactionName:
    """A transaction name: a path of components from the root ``T0``.

    The root is the empty path.  ``TransactionName(("a", "b"))`` is the
    child ``b`` of the child ``a`` of the root.  Names are immutable,
    hashable and totally ordered (lexicographically), which makes them
    usable as graph nodes and dict keys.
    """

    path: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.path, tuple):
            raise TypeError(f"path must be a tuple, got {type(self.path).__name__}")
        for part in self.path:
            if not isinstance(part, str) or not part:
                raise ValueError(f"path components must be non-empty strings: {self.path!r}")

    # -- interning -------------------------------------------------------

    @classmethod
    def interned(cls, path: Tuple[str, ...]) -> "TransactionName":
        """The canonical shared instance for ``path``.

        Equality and hashing are value-based either way; interning only
        lets hot loops reuse one instance (and its cached ancestor
        chain) instead of re-allocating.
        """
        name = _INTERNED.get(path)
        if name is None:
            name = _INTERNED.setdefault(path, cls(path))
        return name

    # -- tree structure -------------------------------------------------

    @property
    def is_root(self) -> bool:
        """True iff this is ``T0``, the root of the transaction tree."""
        return not self.path

    @property
    def depth(self) -> int:
        """Distance from the root; ``T0`` has depth 0."""
        return len(self.path)

    @property
    def parent(self) -> "TransactionName":
        """The parent name.  Raises ``ValueError`` on the root."""
        if self.is_root:
            raise ValueError("T0 has no parent")
        return TransactionName.interned(self.path[:-1])

    def child(self, component: str) -> "TransactionName":
        """The child of this name labelled ``component``."""
        return TransactionName.interned(self.path + (component,))

    def ancestor_chain(self) -> Tuple["TransactionName", ...]:
        """The cached tuple of ancestors, from this name up to the root.

        Per the paper, a transaction is its own ancestor; the chain is
        ``(self, parent, ..., T0)``.  Computed once per distinct path and
        shared, so ancestor walks in hot loops stop allocating.
        """
        chain = _CHAINS.get(self.path)
        if chain is None:
            if not self.path:
                chain = (TransactionName.interned(()),)
            else:
                me = TransactionName.interned(self.path)
                chain = (me,) + me.parent.ancestor_chain()
            _CHAINS[self.path] = chain
        return chain

    def ancestors(self) -> Iterator["TransactionName"]:
        """Yield every ancestor, from this name up to and including the root.

        Per the paper, a transaction is its own ancestor.
        """
        return iter(self.ancestor_chain())

    def proper_ancestors(self) -> Iterator["TransactionName"]:
        """Yield every ancestor strictly above this name, up to the root."""
        return iter(self.ancestor_chain()[1:])

    def prefix(self, depth: int) -> "TransactionName":
        """The (interned) ancestor of this name at the given depth.

        ``name.prefix(d)`` equals ``TransactionName(name.path[:d])`` but
        reads the cached ancestor chain instead of slicing.
        """
        if not 0 <= depth <= len(self.path):
            raise ValueError(f"depth {depth} out of range for {self}")
        return self.ancestor_chain()[len(self.path) - depth]

    def is_ancestor_of(self, other: "TransactionName") -> bool:
        """True iff ``self`` is an ancestor of ``other`` (reflexively)."""
        if self is other:
            return True
        n = len(self.path)
        if n > len(other.path):
            return False
        return other.path[:n] == self.path

    def is_descendant_of(self, other: "TransactionName") -> bool:
        """True iff ``self`` is a descendant of ``other`` (reflexively)."""
        return other.is_ancestor_of(self)

    def is_sibling_of(self, other: "TransactionName") -> bool:
        """True iff both names are distinct children of the same parent."""
        if self == other or self.is_root or other.is_root:
            return False
        return self.path[:-1] == other.path[:-1]

    def is_related_to(self, other: "TransactionName") -> bool:
        """True iff one name is an ancestor of the other."""
        return self.is_ancestor_of(other) or other.is_ancestor_of(self)

    def __str__(self) -> str:
        return "T0" if self.is_root else "T0/" + "/".join(self.path)

    def __repr__(self) -> str:
        return str(self)


ROOT = TransactionName.interned(())
"""The mythical root transaction ``T0`` modelling the environment."""


def lca(a: TransactionName, b: TransactionName) -> TransactionName:
    """The least common ancestor of two transaction names.

    O(depth) with early exit: walks the two paths until they diverge and
    returns the (interned) ancestor at that depth — no prefix list is
    built, and when one name is an ancestor of the other it is returned
    directly.
    """
    if a is b:
        return a
    a_path, b_path = a.path, b.path
    limit = min(len(a_path), len(b_path))
    i = 0
    while i < limit and a_path[i] == b_path[i]:
        i += 1
    if i == len(a_path):
        return a
    if i == len(b_path):
        return b
    return a.prefix(i)


@dataclass(frozen=True, order=True)
class ObjectName:
    """The name of a shared data object."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("object names must be non-empty strings")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Access:
    """The access information encoded in an access (leaf) name.

    ``obj`` names the object the access touches and ``op`` is the
    abstract operation the access performs.  For read/write objects,
    ``op`` is a :class:`repro.core.rw_semantics.ReadOp` or
    :class:`repro.core.rw_semantics.WriteOp`; for arbitrary data types it
    is whatever (hashable) operation descriptor the type understands.
    """

    obj: ObjectName
    op: Any

    def __post_init__(self) -> None:
        hash(self.op)  # operations must be hashable, like names


class SystemType:
    """The finite, workload-relevant part of a system type.

    Holds the set of object names, a *serial specification* for each
    object (anything with the small protocol used by the checkers — see
    :mod:`repro.core.rw_semantics` and :mod:`repro.spec.datatype`), and
    the registry mapping access leaf names to :class:`Access` records.
    """

    def __init__(
        self,
        objects: Mapping[ObjectName, Any],
        accesses: Optional[Mapping[TransactionName, Access]] = None,
    ) -> None:
        self._objects: Dict[ObjectName, Any] = dict(objects)
        self._accesses: Dict[TransactionName, Access] = {}
        for name, access in (accesses or {}).items():
            self.register_access(name, access)

    # -- objects ---------------------------------------------------------

    @property
    def objects(self) -> Mapping[ObjectName, Any]:
        """Read-only view of the object-name → serial-spec mapping."""
        return dict(self._objects)

    def object_names(self) -> Tuple[ObjectName, ...]:
        return tuple(sorted(self._objects))

    def spec(self, obj: ObjectName) -> Any:
        """The serial specification registered for ``obj``."""
        try:
            return self._objects[obj]
        except KeyError:
            raise KeyError(f"unknown object {obj}") from None

    # -- accesses ---------------------------------------------------------

    def register_access(self, name: TransactionName, access: Access) -> None:
        """Declare ``name`` to be an access leaf with the given access info."""
        if name.is_root:
            raise ValueError("T0 cannot be an access")
        if access.obj not in self._objects:
            raise KeyError(f"access {name} names unknown object {access.obj}")
        existing = self._accesses.get(name)
        if existing is not None and existing != access:
            raise ValueError(f"access {name} already registered with different info")
        for ancestor in name.proper_ancestors():
            if ancestor in self._accesses:
                raise ValueError(f"{name} is a descendant of the access {ancestor}")
        self._accesses[name] = access

    def is_access(self, name: TransactionName) -> bool:
        """True iff ``name`` is a registered access leaf."""
        return name in self._accesses

    def access(self, name: TransactionName) -> Access:
        """The :class:`Access` record for an access leaf name."""
        try:
            return self._accesses[name]
        except KeyError:
            raise KeyError(f"{name} is not a registered access") from None

    def object_of(self, name: TransactionName) -> ObjectName:
        """The object that the access leaf ``name`` touches."""
        return self.access(name).obj

    def accesses_to(self, obj: ObjectName) -> Tuple[TransactionName, ...]:
        """All registered access names touching ``obj``, sorted."""
        return tuple(sorted(t for t, a in self._accesses.items() if a.obj == obj))

    def all_accesses(self) -> Mapping[TransactionName, Access]:
        return dict(self._accesses)

    def merged_with(self, other: "SystemType") -> "SystemType":
        """A new system type combining the objects and accesses of both."""
        objects = dict(self._objects)
        for obj, spec in other._objects.items():
            if obj in objects and objects[obj] is not spec and objects[obj] != spec:
                raise ValueError(f"conflicting specs for object {obj}")
            objects[obj] = spec
        merged = SystemType(objects, self._accesses)
        for name, access in other._accesses.items():
            merged.register_access(name, access)
        return merged

    def __repr__(self) -> str:
        return (
            f"SystemType(objects={sorted(map(str, self._objects))}, "
            f"accesses={len(self._accesses)})"
        )
