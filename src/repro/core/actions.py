"""The action vocabulary of nested transaction systems.

Serial actions (Section 2.2.4 of the paper):

* ``CREATE(T)``                  — the scheduler wakes up transaction ``T``
* ``REQUEST_CREATE(T)``          — ``parent(T)`` asks for ``T`` to be created
* ``REQUEST_COMMIT(T, v)``       — ``T`` announces completion with value ``v``
* ``COMMIT(T)`` / ``ABORT(T)``   — the irrevocable completion decision
* ``REPORT_COMMIT(T, v)``        — ``parent(T)`` learns ``T`` committed with ``v``
* ``REPORT_ABORT(T)``            — ``parent(T)`` learns ``T`` aborted

Generic systems add two *non-serial* actions that inform objects of
completions (Section 5.1):

* ``INFORM_COMMIT_AT(X)OF(T)`` and ``INFORM_ABORT_AT(X)OF(T)``

The functions :func:`transaction_of`, :func:`hightransaction`,
:func:`lowtransaction` and :func:`object_of` implement the paper's
``transaction``, ``hightransaction``, ``lowtransaction`` and ``object``
operators on serial actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple, Union

from .names import ObjectName, TransactionName

__all__ = [
    "Action",
    "Create",
    "RequestCreate",
    "RequestCommit",
    "Commit",
    "Abort",
    "ReportCommit",
    "ReportAbort",
    "InformCommit",
    "InformAbort",
    "SerialAction",
    "CompletionAction",
    "ReportAction",
    "InformAction",
    "is_serial_action",
    "is_completion",
    "is_report",
    "transaction_of",
    "hightransaction",
    "lowtransaction",
    "object_of",
    "Behavior",
]


@dataclass(frozen=True)
class Create:
    """``CREATE(T)`` — wake up transaction ``T`` (an input to ``T``)."""

    transaction: TransactionName

    def __str__(self) -> str:
        return f"CREATE({self.transaction})"


@dataclass(frozen=True)
class RequestCreate:
    """``REQUEST_CREATE(T)`` — ``parent(T)`` requests the creation of ``T``."""

    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("REQUEST_CREATE(T0) is not an action")

    def __str__(self) -> str:
        return f"REQUEST_CREATE({self.transaction})"


@dataclass(frozen=True)
class RequestCommit:
    """``REQUEST_COMMIT(T, v)`` — ``T`` announces it finished with value ``v``."""

    transaction: TransactionName
    value: Any

    def __post_init__(self) -> None:
        hash(self.value)  # values travel through reports; keep them hashable

    def __str__(self) -> str:
        return f"REQUEST_COMMIT({self.transaction}, {self.value!r})"


@dataclass(frozen=True)
class Commit:
    """``COMMIT(T)`` — the decision that ``T`` committed (``T != T0``)."""

    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("COMMIT(T0) is not an action")

    def __str__(self) -> str:
        return f"COMMIT({self.transaction})"


@dataclass(frozen=True)
class Abort:
    """``ABORT(T)`` — the decision that ``T`` aborted (``T != T0``)."""

    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("ABORT(T0) is not an action")

    def __str__(self) -> str:
        return f"ABORT({self.transaction})"


@dataclass(frozen=True)
class ReportCommit:
    """``REPORT_COMMIT(T, v)`` — report ``T``'s commit (and value) to its parent."""

    transaction: TransactionName
    value: Any

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("REPORT_COMMIT(T0, v) is not an action")
        hash(self.value)

    def __str__(self) -> str:
        return f"REPORT_COMMIT({self.transaction}, {self.value!r})"


@dataclass(frozen=True)
class ReportAbort:
    """``REPORT_ABORT(T)`` — report ``T``'s abort to its parent."""

    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("REPORT_ABORT(T0) is not an action")

    def __str__(self) -> str:
        return f"REPORT_ABORT({self.transaction})"


@dataclass(frozen=True)
class InformCommit:
    """``INFORM_COMMIT_AT(X)OF(T)`` — tell object ``X`` that ``T`` committed."""

    obj: ObjectName
    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("INFORM_COMMIT of T0 is not an action")

    def __str__(self) -> str:
        return f"INFORM_COMMIT_AT({self.obj})OF({self.transaction})"


@dataclass(frozen=True)
class InformAbort:
    """``INFORM_ABORT_AT(X)OF(T)`` — tell object ``X`` that ``T`` aborted."""

    obj: ObjectName
    transaction: TransactionName

    def __post_init__(self) -> None:
        if self.transaction.is_root:
            raise ValueError("INFORM_ABORT of T0 is not an action")

    def __str__(self) -> str:
        return f"INFORM_ABORT_AT({self.obj})OF({self.transaction})"


SerialAction = Union[
    Create, RequestCreate, RequestCommit, Commit, Abort, ReportCommit, ReportAbort
]
CompletionAction = Union[Commit, Abort]
ReportAction = Union[ReportCommit, ReportAbort]
InformAction = Union[InformCommit, InformAbort]
Action = Union[SerialAction, InformAction]

#: A behavior is a finite sequence of actions; we use tuples throughout.
Behavior = Tuple[Action, ...]

_SERIAL_TYPES = (
    Create,
    RequestCreate,
    RequestCommit,
    Commit,
    Abort,
    ReportCommit,
    ReportAbort,
)


def is_serial_action(action: Action) -> bool:
    """True iff ``action`` is one of the seven serial action kinds."""
    return isinstance(action, _SERIAL_TYPES)


def is_completion(action: Action) -> bool:
    """True iff ``action`` is ``COMMIT(T)`` or ``ABORT(T)``."""
    return isinstance(action, (Commit, Abort))


def is_report(action: Action) -> bool:
    """True iff ``action`` is ``REPORT_COMMIT`` or ``REPORT_ABORT``."""
    return isinstance(action, (ReportCommit, ReportAbort))


def transaction_of(action: Action) -> Optional[TransactionName]:
    """The paper's ``transaction(pi)`` operator.

    ``transaction(CREATE(T)) = T`` and ``transaction(REQUEST_COMMIT(T, v)) = T``;
    for requests and reports concerning a child ``T'``, the transaction is the
    *parent* of ``T'``.  Completion and inform actions have no transaction
    (the paper leaves ``transaction`` undefined for them); we return ``None``.
    """
    if isinstance(action, (Create, RequestCommit)):
        return action.transaction
    if isinstance(action, (RequestCreate, ReportCommit, ReportAbort)):
        return action.transaction.parent
    return None


def hightransaction(action: Action) -> TransactionName:
    """The paper's ``hightransaction(pi)``: the parent for completions.

    For a completion action of a child of ``T`` this is ``T``; for every
    other serial action it is ``transaction(pi)``.
    """
    if isinstance(action, (Commit, Abort)):
        return action.transaction.parent
    result = transaction_of(action)
    if result is None:
        raise ValueError(f"hightransaction is undefined for {action}")
    return result


def lowtransaction(action: Action) -> TransactionName:
    """The paper's ``lowtransaction(pi)``: the completing transaction itself.

    For ``COMMIT(T)``/``ABORT(T)`` this is ``T``; for every other serial
    action it is ``transaction(pi)``.
    """
    if isinstance(action, (Commit, Abort)):
        return action.transaction
    result = transaction_of(action)
    if result is None:
        raise ValueError(f"lowtransaction is undefined for {action}")
    return result


def object_of(action: Action, system_type: "SystemTypeLike") -> Optional[ObjectName]:
    """The paper's ``object(pi)``: defined for CREATE/REQUEST_COMMIT of accesses."""
    if isinstance(action, (Create, RequestCommit)) and system_type.is_access(
        action.transaction
    ):
        return system_type.object_of(action.transaction)
    if isinstance(action, (InformCommit, InformAbort)):
        return action.obj
    return None


class SystemTypeLike:
    """Structural protocol for what :func:`object_of` needs (documentation only)."""

    def is_access(self, name: TransactionName) -> bool:  # pragma: no cover
        raise NotImplementedError

    def object_of(self, name: TransactionName) -> ObjectName:  # pragma: no cover
        raise NotImplementedError


def format_behavior(behavior: Sequence[Action]) -> str:
    """Human-readable one-action-per-line rendering of a behavior."""
    return "\n".join(f"{i:4d}  {action}" for i, action in enumerate(behavior))
