"""Appropriate return values, and the "current"/"safe" sufficient conditions.

Sections 3.2, 3.3 and 6.1 of the paper.  A simple behavior ``beta`` has
*appropriate return values* (ARV) when, for every object ``X``,
``perform(operations(visible(beta, T0)|X))`` is a behavior of the serial
object ``S_X``.  For read/write objects this unfolds (Lemma 5) into the
concrete condition that every visible write returns ``OK`` and every
visible read returns the final value of the visible prefix before it.

Section 3.3 gives the *current* and *safe* per-event conditions, which
can be checked at the moment a REQUEST_COMMIT occurs and which jointly
imply ARV (Lemma 6).  All variants are implemented here so the theory's
internal implications can be tested, not just assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from .actions import Action, RequestCommit, is_serial_action
from .events import StatusIndex, visible_projection
from .names import ROOT, ObjectName, SystemType, TransactionName
from .operations import operation_payloads, operations_of_object
from .rw_semantics import (
    OK,
    clean_final_value,
    clean_last_write,
    final_value,
    is_read_access,
    is_write_access,
)

__all__ = [
    "ReturnValueViolation",
    "has_appropriate_return_values",
    "check_appropriate_return_values",
    "has_appropriate_return_values_rw",
    "is_current",
    "is_safe",
    "check_current_and_safe",
]


@dataclass(frozen=True)
class ReturnValueViolation:
    """Diagnostic describing why a behavior fails a return-value condition."""

    obj: ObjectName
    transaction: Optional[TransactionName]
    reason: str

    def __str__(self) -> str:
        where = f" at access {self.transaction}" if self.transaction else ""
        return f"object {self.obj}{where}: {self.reason}"


def check_appropriate_return_values(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> List[ReturnValueViolation]:
    """The general ARV definition (Section 6.1), with diagnostics.

    For every object ``X``, replays ``operations(visible(beta, T0)|X)``
    against the object's serial specification.  Returns a (possibly
    empty) list of violations.
    """
    index = index if index is not None else StatusIndex(behavior)
    visible = visible_projection(behavior, ROOT, index)
    violations: List[ReturnValueViolation] = []
    for obj in system_type.object_names():
        ops = operations_of_object(visible, obj, system_type)
        pairs = operation_payloads(ops, system_type)
        spec = system_type.spec(obj)
        violation = _first_illegal(spec, obj, ops, pairs)
        if violation is not None:
            violations.append(violation)
    return violations


def _first_illegal(
    spec: Any,
    obj: ObjectName,
    ops: Sequence[Any],
    pairs: Sequence[Tuple[Any, Any]],
) -> Optional[ReturnValueViolation]:
    """The first offending access of an operation sequence, if any.

    One linear replay via the spec's ``apply`` protocol; specs exposing
    only ``is_legal`` fall back to prefix replays.
    """
    apply = getattr(spec, "apply", None)
    if apply is not None:
        state = spec.initial
        for position, (op, value) in enumerate(pairs):
            state, expected = apply(state, op)
            if value != expected:
                return ReturnValueViolation(
                    obj,
                    ops[position].transaction,
                    f"operation {pairs[position]!r} is illegal after "
                    f"{position} visible operation(s)",
                )
        return None
    for cut in range(1, len(pairs) + 1):
        if not spec.is_legal(pairs[:cut]):
            return ReturnValueViolation(
                obj,
                ops[cut - 1].transaction,
                f"operation {pairs[cut - 1]!r} is illegal after "
                f"{cut - 1} visible operation(s)",
            )
    return None


def has_appropriate_return_values(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> bool:
    """True iff ``behavior`` has appropriate return values (general form)."""
    return not check_appropriate_return_values(behavior, system_type, index)


def has_appropriate_return_values_rw(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> bool:
    """The concrete read/write ARV definition of Section 3.2.

    Every visible write access must return ``OK``; every visible read
    access must return ``final-value(delta, X)`` where ``delta`` is the
    prefix of ``visible(beta, T0)`` preceding it.  By Lemma 5 this agrees
    with :func:`has_appropriate_return_values` on RW system types — a
    fact the test suite checks.
    """
    index = index if index is not None else StatusIndex(behavior)
    visible = visible_projection(behavior, ROOT, index)
    for position, action in enumerate(visible):
        if not isinstance(action, RequestCommit):
            continue
        name = action.transaction
        if is_write_access(name, system_type):
            if action.value != OK:
                return False
        elif is_read_access(name, system_type):
            obj = system_type.object_of(name)
            expected = final_value(visible[:position], obj, system_type)
            if action.value != expected:
                return False
    return True


def is_current(
    behavior: Sequence[Action],
    position: int,
    system_type: SystemType,
) -> bool:
    """Is the read REQUEST_COMMIT at ``position`` *current* in ``behavior``?

    The return value must equal ``clean-final-value`` of the prefix
    preceding the event (Section 3.3).  ``behavior`` should be a sequence
    of serial actions, typically ``serial(beta)``.
    """
    action = behavior[position]
    if not isinstance(action, RequestCommit) or not is_read_access(
        action.transaction, system_type
    ):
        raise ValueError(f"event {position} is not a read REQUEST_COMMIT: {action}")
    obj = system_type.object_of(action.transaction)
    prefix = behavior[:position]
    return action.value == clean_final_value(prefix, obj, system_type)


def is_safe(
    behavior: Sequence[Action],
    position: int,
    system_type: SystemType,
) -> bool:
    """Is the read REQUEST_COMMIT at ``position`` *safe* in ``behavior``?

    ``clean-last-write`` of the preceding prefix must be undefined or
    visible to the reader in that prefix — the "no dirty reads"
    condition of Section 3.3.
    """
    action = behavior[position]
    if not isinstance(action, RequestCommit) or not is_read_access(
        action.transaction, system_type
    ):
        raise ValueError(f"event {position} is not a read REQUEST_COMMIT: {action}")
    obj = system_type.object_of(action.transaction)
    prefix = behavior[:position]
    writer = clean_last_write(prefix, obj, system_type)
    if writer is None:
        return True
    return StatusIndex(prefix).is_visible(writer, action.transaction)


def check_current_and_safe(
    behavior: Sequence[Action],
    system_type: SystemType,
    index: Optional[StatusIndex] = None,
) -> List[ReturnValueViolation]:
    """Check the hypotheses of Lemma 6 on a sequence of serial actions.

    Condition (1): every write REQUEST_COMMIT in ``visible(beta, T0)``
    returns ``OK``.  Condition (2): every read REQUEST_COMMIT in
    ``visible(beta, T0)`` is current and safe *in beta*.  An empty result
    means Lemma 6 applies and the behavior has appropriate return values.
    """
    index = index if index is not None else StatusIndex(behavior)
    violations: List[ReturnValueViolation] = []
    for position, action in enumerate(behavior):
        if not isinstance(action, RequestCommit):
            continue
        name = action.transaction
        if not system_type.is_access(name):
            continue
        if not index.is_visible(name, ROOT):
            continue
        obj = system_type.object_of(name)
        if is_write_access(name, system_type):
            if action.value != OK:
                violations.append(
                    ReturnValueViolation(obj, name, f"write returned {action.value!r}")
                )
        elif is_read_access(name, system_type):
            if not is_current(behavior, position, system_type):
                violations.append(
                    ReturnValueViolation(obj, name, "read is not current")
                )
            if not is_safe(behavior, position, system_type):
                violations.append(
                    ReturnValueViolation(obj, name, "read is not safe (dirty data)")
                )
    return violations
