"""A brute-force serial-correctness oracle for small instances.

The serialization-graph condition of Theorem 8/19 is *sufficient* but not
necessary.  To measure its precision (experiment E4) and to cross-check
the certifier, this oracle searches for a witness over **all** sibling
orders of the visible transactions, not just the one obtained by
topologically sorting the serialization graph.

The oracle is sound: when it accepts, it has constructed and validated an
actual serial behavior ``gamma`` with ``gamma | T == beta | T`` for every
visible transaction (hence serially correct for ``T0``).  It is complete
with respect to witnesses of that shape — serial executions that replay
each visible transaction's local sequence verbatim — which covers every
behavior the theorems of the paper can certify and more.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .actions import Action, Behavior
from .correctness import WitnessError, build_witness, validate_serial_behavior
from .events import StatusIndex, project_transaction, serial_projection
from .history import HistoryIndex
from .names import ROOT, SystemType, TransactionName
from .sibling_order import SiblingOrder

__all__ = ["OracleResult", "oracle_serially_correct", "enumerate_sibling_orders"]


@dataclass
class OracleResult:
    """Outcome of the brute-force search."""

    correct: bool
    orders_tried: int
    witness: Optional[Behavior] = None
    order: Optional[SiblingOrder] = None
    truncated: bool = False

    def __bool__(self) -> bool:
        return self.correct


def _sibling_groups(
    index: StatusIndex, visible: Set[TransactionName]
) -> Dict[TransactionName, List[TransactionName]]:
    """Visible children grouped under their (visible) parents."""
    groups: Dict[TransactionName, List[TransactionName]] = {}
    for transaction in sorted(visible):
        if transaction.is_root:
            continue
        parent = transaction.parent
        if parent in visible:
            groups.setdefault(parent, []).append(transaction)
    return groups


def enumerate_sibling_orders(
    behavior: Sequence[Action],
    limit: Optional[int] = None,
    index: Optional[StatusIndex] = None,
) -> Iterator[SiblingOrder]:
    """Yield every total sibling order over the visible transactions.

    The number of orders is the product of factorials of the sibling
    group sizes; ``limit`` truncates the enumeration (the caller learns
    about truncation through :class:`OracleResult`).  Pass the caller's
    :class:`repro.core.history.HistoryIndex` to reuse its memoized
    visibility instead of re-indexing.
    """
    serial = serial_projection(behavior)
    if index is None or not (
        isinstance(index, HistoryIndex) and index.covers(serial)
    ):
        index = HistoryIndex(serial)
    visible = {
        t
        for t in (index.create_requested | index.created | {ROOT})
        if index.is_visible(t, ROOT)
    }
    groups = _sibling_groups(index, visible)
    parents = sorted(groups)
    permutation_sets = [
        list(itertools.permutations(groups[parent])) for parent in parents
    ]
    count = 0
    for combination in itertools.product(*permutation_sets):
        if limit is not None and count >= limit:
            return
        count += 1
        yield SiblingOrder(dict(zip(parents, combination)))


def oracle_serially_correct(
    behavior: Sequence[Action],
    system_type: SystemType,
    max_orders: int = 50_000,
    columnar: bool = False,
) -> OracleResult:
    """Search all sibling orders for a valid serial witness.

    Accepts as soon as one order yields a witness that validates against
    the serial scheduler rules and every object's serial specification.
    One :class:`repro.core.history.HistoryIndex` serves the whole search:
    its memoized visibility and cached ``beta | T`` slices are shared by
    the order enumeration and every witness attempt.  ``columnar=True``
    attaches the dense-int store to that index, so orphan/visibility
    queries during the search resolve from bitset flags.
    """
    serial = serial_projection(behavior)
    index = HistoryIndex(serial, system_type, columnar=columnar)
    tried = 0
    truncated = False
    orders = enumerate_sibling_orders(serial, limit=max_orders + 1, index=index)
    for order in orders:
        if tried >= max_orders:
            truncated = True
            break
        tried += 1
        try:
            witness = build_witness(serial, system_type, order, index)
        except WitnessError:
            continue
        if validate_serial_behavior(witness, system_type):
            continue
        if project_transaction(witness, ROOT) != project_transaction(
            serial, ROOT, index
        ):
            continue
        return OracleResult(True, tried, witness=witness, order=order)
    return OracleResult(False, tried, truncated=truncated)
