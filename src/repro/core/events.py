"""Sequence machinery over behaviors: projections, visibility, orphans, affects.

Everything in this module is a pure function of a behavior (a sequence of
actions), mirroring Section 2.2.4 and 2.3.2 of the paper:

* ``beta | T``     — :func:`project_transaction`
* ``beta | X``     — :func:`project_object`
* ``serial(beta)`` — :func:`serial_projection`
* orphans / live   — :meth:`StatusIndex.is_orphan` / :meth:`StatusIndex.is_live`
* ``visible(beta, T)``  — :func:`visible_projection`
* ``clean(beta)``  — :func:`clean_projection`
* ``directly-affects`` and ``affects`` — :func:`directly_affects_pairs`,
  :class:`AffectsRelation`

Because the same action can occur more than once in a behavior, relations
on *events* are represented as relations on event indices.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    hightransaction,
    is_completion,
    is_serial_action,
    lowtransaction,
    object_of,
    transaction_of,
)
from .names import ObjectName, SystemType, TransactionName

__all__ = [
    "serial_projection",
    "project_transaction",
    "project_object",
    "StatusIndex",
    "visible_projection",
    "clean_projection",
    "directly_affects_pairs",
    "AffectsRelation",
]


def serial_projection(behavior: Sequence[Action]) -> Behavior:
    """``serial(beta)``: the subsequence of serial actions of ``behavior``."""
    return tuple(action for action in behavior if is_serial_action(action))


def project_transaction(
    behavior: Sequence[Action],
    transaction: TransactionName,
    index: Optional["StatusIndex"] = None,
) -> Behavior:
    """``beta | T``: serial actions whose ``transaction(pi)`` equals ``T``.

    When ``index`` is a :class:`repro.core.history.HistoryIndex` covering
    ``behavior``, the projection is a cached index slice.
    """
    if index is not None:
        cached = getattr(index, "cached_project_transaction", None)
        if cached is not None:
            result = cached(behavior, transaction)
            if result is not None:
                return result
    return tuple(
        action
        for action in behavior
        if is_serial_action(action) and transaction_of(action) == transaction
    )


def project_object(
    behavior: Sequence[Action],
    obj: ObjectName,
    system_type: SystemType,
    index: Optional["StatusIndex"] = None,
) -> Behavior:
    """``beta | X``: serial actions whose ``object(pi)`` equals ``X``.

    These are exactly the CREATE and REQUEST_COMMIT events of accesses
    to ``X``.  When ``index`` is a :class:`repro.core.history.HistoryIndex`
    covering ``behavior``, the projection is a cached index slice.
    """
    if index is not None:
        cached = getattr(index, "cached_project_object", None)
        if cached is not None:
            projected = cached(behavior, obj)
            if projected is not None:
                return projected
    result = []
    for action in behavior:
        if not isinstance(action, (Create, RequestCommit)):
            continue
        if system_type.is_access(action.transaction):
            if system_type.object_of(action.transaction) == obj:
                result.append(action)
    return tuple(result)


class StatusIndex:
    """A one-pass index of completion and creation status over a behavior.

    Precomputes the sets needed by nearly every definition in the paper
    (committed, aborted, created, requested transactions; commit values)
    so that visibility and orphan tests are cheap.
    """

    def __init__(self, behavior: Sequence[Action]) -> None:
        self.committed: Set[TransactionName] = set()
        self.aborted: Set[TransactionName] = set()
        self.created: Set[TransactionName] = set()
        self.create_requested: Set[TransactionName] = set()
        self.commit_requested: Dict[TransactionName, object] = {}
        self.reported: Set[TransactionName] = set()
        for action in behavior:
            if isinstance(action, Commit):
                self.committed.add(action.transaction)
            elif isinstance(action, Abort):
                self.aborted.add(action.transaction)
            elif isinstance(action, Create):
                self.created.add(action.transaction)
            elif isinstance(action, RequestCreate):
                self.create_requested.add(action.transaction)
            elif isinstance(action, RequestCommit):
                self.commit_requested.setdefault(action.transaction, action.value)
            elif isinstance(action, (ReportCommit, ReportAbort)):
                self.reported.add(action.transaction)

    def completed(self, transaction: TransactionName) -> bool:
        return transaction in self.committed or transaction in self.aborted

    def is_orphan(self, transaction: TransactionName) -> bool:
        """True iff some ancestor of ``transaction`` aborted (Section 2.2.4)."""
        return any(ancestor in self.aborted for ancestor in transaction.ancestors())

    def is_live(self, transaction: TransactionName) -> bool:
        """True iff ``transaction`` was created but has no completion event."""
        return transaction in self.created and not self.completed(transaction)

    def is_visible(self, source: TransactionName, to: TransactionName) -> bool:
        """``source`` is visible to ``to``: every ancestor of ``source`` that is
        not an ancestor of ``to`` has committed (Section 2.3.2)."""
        for ancestor in source.ancestors():
            if ancestor.is_ancestor_of(to):
                return True
            if ancestor not in self.committed:
                return False
        return True

    def visible_transactions(
        self, to: TransactionName, candidates: Iterable[TransactionName]
    ) -> Set[TransactionName]:
        return {t for t in candidates if self.is_visible(t, to)}


def visible_projection(
    behavior: Sequence[Action],
    to: TransactionName,
    index: Optional[StatusIndex] = None,
) -> Behavior:
    """``visible(beta, T)``: serial actions whose hightransaction is visible to T.

    When ``index`` is a :class:`repro.core.history.HistoryIndex` covering
    ``behavior``, the cached projection is returned without a scan.
    """
    if index is not None:
        cached = getattr(index, "cached_visible_projection", None)
        if cached is not None:
            result = cached(behavior, to)
            if result is not None:
                return result
    index = index if index is not None else StatusIndex(behavior)
    return tuple(
        action
        for action in behavior
        if is_serial_action(action) and index.is_visible(hightransaction(action), to)
    )


def clean_projection(
    behavior: Sequence[Action], index: Optional[StatusIndex] = None
) -> Behavior:
    """``clean(beta)``: serial actions whose hightransaction is not an orphan.

    When ``index`` is a :class:`repro.core.history.HistoryIndex` covering
    ``behavior``, the cached projection is returned without a scan.
    """
    if index is not None:
        cached = getattr(index, "cached_clean_projection", None)
        if cached is not None:
            result = cached(behavior)
            if result is not None:
                return result
    index = index if index is not None else StatusIndex(behavior)
    return tuple(
        action
        for action in behavior
        if is_serial_action(action) and not index.is_orphan(hightransaction(action))
    )


def directly_affects_pairs(behavior: Sequence[Action]) -> List[Tuple[int, int]]:
    """The ``directly-affects(beta)`` relation as forward index pairs.

    Per Section 2.3.2, ``(phi, pi)`` is in the relation when one of:

    * ``transaction(phi) == transaction(pi)`` and ``phi`` precedes ``pi``;
    * ``phi = REQUEST_CREATE(T)`` and ``pi = CREATE(T)``;
    * ``phi = REQUEST_COMMIT(T, v)`` and ``pi = COMMIT(T)``;
    * ``phi = REQUEST_CREATE(T)`` and ``pi = ABORT(T)``;
    * ``phi = COMMIT(T)`` and ``pi = REPORT_COMMIT(T, v)``;
    * ``phi = ABORT(T)`` and ``pi = REPORT_ABORT(T)``.

    Only serial events participate; in a well-formed behavior all these
    dependencies point forward, and we record only forward pairs.
    """
    pairs: List[Tuple[int, int]] = []
    serial_events = [
        (i, action) for i, action in enumerate(behavior) if is_serial_action(action)
    ]
    by_transaction: Dict[TransactionName, List[int]] = {}
    for i, action in serial_events:
        txn = transaction_of(action)
        if txn is not None:
            positions = by_transaction.setdefault(txn, [])
            for earlier in positions:
                pairs.append((earlier, i))
            positions.append(i)

    def matching_positions(predicate: Callable[[Action], bool]) -> List[int]:
        return [i for i, action in serial_events if predicate(action)]

    for j, action in serial_events:
        if isinstance(action, Create):
            target = action.transaction
            sources = matching_positions(
                lambda a, t=target: isinstance(a, RequestCreate) and a.transaction == t
            )
        elif isinstance(action, Commit):
            target = action.transaction
            sources = matching_positions(
                lambda a, t=target: isinstance(a, RequestCommit) and a.transaction == t
            )
        elif isinstance(action, Abort):
            target = action.transaction
            sources = matching_positions(
                lambda a, t=target: isinstance(a, RequestCreate) and a.transaction == t
            )
        elif isinstance(action, ReportCommit):
            target = action.transaction
            sources = matching_positions(
                lambda a, t=target: isinstance(a, Commit) and a.transaction == t
            )
        elif isinstance(action, ReportAbort):
            target = action.transaction
            sources = matching_positions(
                lambda a, t=target: isinstance(a, Abort) and a.transaction == t
            )
        else:
            continue
        for i in sources:
            if i < j:
                pairs.append((i, j))
    return sorted(set(pairs))


class AffectsRelation:
    """``affects(beta)``: the transitive closure of ``directly-affects``.

    Materialised as per-event reachability sets over event indices.
    Quadratic in the number of events — intended for checking and tests,
    not for the hot path (the serialization graph itself never needs it).
    """

    def __init__(self, behavior: Sequence[Action]) -> None:
        self._n = len(behavior)
        direct = directly_affects_pairs(behavior)
        successors: Dict[int, Set[int]] = {}
        for i, j in direct:
            successors.setdefault(i, set()).add(j)
        # Process events from last to first; reach[i] = union of reach[j] for
        # each direct successor j (all successors are strictly later).
        self._reach: Dict[int, FrozenSet[int]] = {}
        for i in range(self._n - 1, -1, -1):
            acc: Set[int] = set()
            for j in successors.get(i, ()):
                acc.add(j)
                acc |= self._reach.get(j, frozenset())
            if acc:
                self._reach[i] = frozenset(acc)

    def affects(self, i: int, j: int) -> bool:
        """True iff event ``i`` affects event ``j`` (indices into the behavior)."""
        return j in self._reach.get(i, frozenset())

    def pairs(self) -> List[Tuple[int, int]]:
        return sorted((i, j) for i, reach in self._reach.items() for j in reach)
