"""Definitional checks for equieffectiveness and backward commutativity.

The exact ``commutes_backward`` tables in :mod:`repro.spec.builtin` are
hand-derived; this module provides the machinery to *verify* them
against the paper's definitions (Section 6.1) on bounded instances:

* :func:`equieffective_states` — for deterministic, fully observable
  types, two behaviors are equieffective iff they lead to equivalent
  states;
* :func:`commutes_backward_on_prefix` — the definitional implication for
  a single prefix ``xi``;
* :func:`find_commutativity_counterexample` — search random legal
  prefixes for a violation of a claimed commutes/conflicts verdict.

These are used by the test suite and by users defining new data types.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .datatype import DataType, IllegalOperation

__all__ = [
    "CommutativityCounterexample",
    "equieffective_states",
    "commutes_backward_on_prefix",
    "random_legal_prefixes",
    "exhaustive_prefixes",
    "find_commutativity_counterexample",
    "verify_commutativity_table",
]

Pair = Tuple[Any, Any]


@dataclass(frozen=True)
class CommutativityCounterexample:
    """A prefix witnessing that a claimed commutativity verdict is wrong."""

    prefix: Tuple[Pair, ...]
    first: Pair
    second: Pair
    claimed_commutes: bool
    reason: str

    def __str__(self) -> str:
        verdict = "commute" if self.claimed_commutes else "conflict"
        return (
            f"claimed {verdict} for {self.first} / {self.second} but after "
            f"prefix of length {len(self.prefix)}: {self.reason}"
        )


def equieffective_states(datatype: DataType, state1: Any, state2: Any) -> bool:
    """Equieffectiveness for deterministic types: equivalent states."""
    return datatype.states_equivalent(state1, state2)


def _replay_from(datatype: DataType, state: Any, pairs: Sequence[Pair]) -> Any:
    for op, value in pairs:
        state, expected = datatype.apply(state, op)
        if expected != value:
            raise IllegalOperation(f"{op} returned {value!r}, expected {expected!r}")
    return state


def commutes_backward_on_prefix(
    datatype: DataType, prefix: Sequence[Pair], first: Pair, second: Pair
) -> Optional[str]:
    """Check the definitional implication for one prefix, one direction.

    If ``perform(prefix + (first, second))`` is a behavior, then
    ``perform(prefix + (second, first))`` must be a behavior leading to
    an equieffective state.  Returns a violation description, or None
    when the implication holds (including vacuously).
    """
    try:
        base = _replay_from(datatype, datatype.initial, prefix)
    except IllegalOperation:
        return None  # not a legal prefix: vacuous
    try:
        forward = _replay_from(datatype, base, (first, second))
    except IllegalOperation:
        return None  # original order illegal: vacuous
    try:
        backward = _replay_from(datatype, base, (second, first))
    except IllegalOperation:
        return "swapped order is not a behavior"
    if not equieffective_states(datatype, forward, backward):
        return f"states differ: {forward!r} vs {backward!r}"
    return None


def random_legal_prefixes(
    datatype: DataType,
    operations: Sequence[Any],
    count: int,
    max_length: int,
    rng: random.Random,
) -> List[Tuple[Pair, ...]]:
    """Sample legal operation prefixes (deterministic values are forced)."""
    prefixes: List[Tuple[Pair, ...]] = [()]
    for _ in range(count):
        length = rng.randrange(max_length + 1)
        ops = [rng.choice(list(operations)) for _ in range(length)]
        prefixes.append(tuple(datatype.results_along(ops)))
    return prefixes


def exhaustive_prefixes(
    datatype: DataType, operations: Sequence[Any], max_length: int
) -> List[Tuple[Pair, ...]]:
    """Every legal prefix over ``operations`` up to ``max_length``."""
    prefixes: List[Tuple[Pair, ...]] = []
    for length in range(max_length + 1):
        for ops in itertools.product(operations, repeat=length):
            prefixes.append(tuple(datatype.results_along(ops)))
    return prefixes


def find_commutativity_counterexample(
    datatype: DataType,
    first: Pair,
    second: Pair,
    prefixes: Iterable[Tuple[Pair, ...]],
) -> Optional[CommutativityCounterexample]:
    """Compare the claimed predicate against the definition over prefixes.

    If the type claims the pair commutes, search for a prefix violating
    the definition (in either direction, since the relation is
    symmetric).  If the type claims a conflict, we cannot *prove* the
    conflict from finitely many prefixes, but we report when every
    sampled prefix satisfies the definitional implication both ways —
    the caller decides whether that warrants suspicion (tests use
    exhaustive small-domain prefixes, where it does).
    """
    claimed = datatype.commutes_backward(first[0], first[1], second[0], second[1])
    prefix_list = list(prefixes)
    violations: List[CommutativityCounterexample] = []
    for prefix in prefix_list:
        for a, b in ((first, second), (second, first)):
            reason = commutes_backward_on_prefix(datatype, prefix, a, b)
            if reason is not None:
                violations.append(
                    CommutativityCounterexample(prefix, a, b, claimed, reason)
                )
    if claimed and violations:
        return violations[0]
    if not claimed and not violations:
        return CommutativityCounterexample(
            (),
            first,
            second,
            claimed,
            "no prefix violated the definition (claimed conflict may be spurious)",
        )
    return None


def verify_commutativity_table(
    datatype: DataType,
    pairs: Sequence[Pair],
    prefixes: Iterable[Tuple[Pair, ...]],
) -> List[CommutativityCounterexample]:
    """Verify the claimed predicate over all unordered pairs of ``pairs``.

    ``pairs`` are (op, value) combinations to consider; only pairs whose
    values actually arise (legal in at least one sampled continuation)
    matter — illegal combinations are vacuously fine and reported clean.
    Also checks symmetry of the claimed predicate.
    """
    problems: List[CommutativityCounterexample] = []
    prefix_list = list(prefixes)
    for i, first in enumerate(pairs):
        for second in pairs[i:]:
            forward = datatype.commutes_backward(
                first[0], first[1], second[0], second[1]
            )
            backward = datatype.commutes_backward(
                second[0], second[1], first[0], first[1]
            )
            if forward != backward:
                problems.append(
                    CommutativityCounterexample(
                        (), first, second, forward, "predicate is not symmetric"
                    )
                )
                continue
            counterexample = find_commutativity_counterexample(
                datatype, first, second, prefix_list
            )
            if counterexample is not None:
                problems.append(counterexample)
    return problems
