"""Built-in data types with exact backward-commutativity predicates.

Each type supplies operation descriptors, a deterministic ``apply`` and
an exact ``commutes_backward`` table derived by hand from the paper's
definition (Section 6.1).  The test suite validates every table against
the definitional bounded check in :mod:`repro.spec.commutativity`, so
these are verified conflict relations, not assumptions.

Types provided:

* :class:`RegisterType` — a read/write register whose *exact* conflict
  relation is slightly finer than the classical rule (writes of equal
  values commute backward; everything else involving a write conflicts).
  Contrasting it with :class:`repro.core.rw_semantics.RWSpec` is part of
  the E7 ablation.
* :class:`CounterType` — increments/decrements commute; reads conflict
  with non-zero updates.
* :class:`SetType` — inserts always commute; operations on distinct
  elements commute.
* :class:`BankAccountType` — Weihl's classic example: *successful*
  withdrawals commute with each other, failed withdrawals are invisible
  to reads.
* :class:`QueueType` — a FIFO queue; mostly non-commutative, included to
  exercise the conservative end of the spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from .datatype import DataType

__all__ = [
    "MapType",
    "MapGet",
    "MapPut",
    "MapRemove",
    "MISSING",
    "RegisterType",
    "RegRead",
    "RegWrite",
    "CounterType",
    "CounterInc",
    "CounterRead",
    "SetType",
    "SetInsert",
    "SetRemove",
    "SetMember",
    "BankAccountType",
    "Deposit",
    "Withdraw",
    "BalanceRead",
    "QueueType",
    "Enqueue",
    "Dequeue",
    "EMPTY",
    "OK",
]

#: Fixed return value of update operations that cannot fail.
OK = "OK"

#: Return value of dequeue on an empty queue.
EMPTY = "EMPTY"


# ---------------------------------------------------------------------------
# Register
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegRead:
    def __str__(self) -> str:
        return "reg-read"


@dataclass(frozen=True)
class RegWrite:
    data: Any

    def __str__(self) -> str:
        return f"reg-write({self.data!r})"


class RegisterType(DataType):
    """A read/write register with the *exact* commutativity relation."""

    type_name = "register"

    def __init__(self, initial: Any = None) -> None:
        self._initial = initial

    @property
    def initial(self) -> Any:
        return self._initial

    def apply(self, state: Any, op: Any) -> Tuple[Any, Any]:
        if isinstance(op, RegWrite):
            return op.data, OK
        if isinstance(op, RegRead):
            return state, state
        raise TypeError(f"not a register operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        return isinstance(op, RegRead)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        if isinstance(op1, RegRead) and isinstance(op2, RegRead):
            return True
        if isinstance(op1, RegWrite) and isinstance(op2, RegWrite):
            # Writing the same value in either order is indistinguishable.
            return op1.data == op2.data
        # Read/write pairs always conflict: write-then-read(d) is legal from
        # *any* prior state, but the swapped read is legal only when the
        # state already was d — so the definition's swap implication fails.
        return False


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CounterInc:
    """Add ``amount`` (negative amounts decrement)."""

    amount: int

    def __str__(self) -> str:
        return f"inc({self.amount})"


@dataclass(frozen=True)
class CounterRead:
    def __str__(self) -> str:
        return "counter-read"


class CounterType(DataType):
    """An integer counter: updates commute, reads see the exact total."""

    type_name = "counter"

    def __init__(self, initial: int = 0) -> None:
        self._initial = int(initial)

    @property
    def initial(self) -> int:
        return self._initial

    def apply(self, state: int, op: Any) -> Tuple[int, Any]:
        if isinstance(op, CounterInc):
            return state + op.amount, OK
        if isinstance(op, CounterRead):
            return state, state
        raise TypeError(f"not a counter operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        return isinstance(op, CounterRead)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        if isinstance(op1, CounterInc) and isinstance(op2, CounterInc):
            return True
        if isinstance(op1, CounterRead) and isinstance(op2, CounterRead):
            return True
        update = op1 if isinstance(op1, CounterInc) else op2
        return update.amount == 0


# ---------------------------------------------------------------------------
# Set
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SetInsert:
    element: Any

    def __str__(self) -> str:
        return f"insert({self.element!r})"


@dataclass(frozen=True)
class SetRemove:
    element: Any

    def __str__(self) -> str:
        return f"remove({self.element!r})"


@dataclass(frozen=True)
class SetMember:
    element: Any

    def __str__(self) -> str:
        return f"member({self.element!r})"


class SetType(DataType):
    """A mathematical set; states are frozensets."""

    type_name = "set"

    def __init__(self, initial: frozenset = frozenset()) -> None:
        self._initial = frozenset(initial)

    @property
    def initial(self) -> frozenset:
        return self._initial

    def apply(self, state: frozenset, op: Any) -> Tuple[frozenset, Any]:
        if isinstance(op, SetInsert):
            return state | {op.element}, OK
        if isinstance(op, SetRemove):
            return state - {op.element}, OK
        if isinstance(op, SetMember):
            return state, op.element in state
        raise TypeError(f"not a set operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        return isinstance(op, SetMember)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        if isinstance(op1, SetMember) and isinstance(op2, SetMember):
            return True
        if isinstance(op1, SetInsert) and isinstance(op2, SetInsert):
            return True
        if isinstance(op1, SetRemove) and isinstance(op2, SetRemove):
            return True
        return op1.element != op2.element


# ---------------------------------------------------------------------------
# Bank account
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Deposit:
    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("deposits are non-negative")

    def __str__(self) -> str:
        return f"deposit({self.amount})"


@dataclass(frozen=True)
class Withdraw:
    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError("withdrawals are non-negative")

    def __str__(self) -> str:
        return f"withdraw({self.amount})"


@dataclass(frozen=True)
class BalanceRead:
    def __str__(self) -> str:
        return "balance"


class BankAccountType(DataType):
    """A bank account whose withdrawals fail (return ``FAIL``) on overdraft.

    The generalisation of Weihl's motivating example: two *successful*
    withdrawals commute backward, so an undo-logging object admits them
    concurrently even though a read/write implementation would not.
    """

    type_name = "bank-account"
    FAIL = "FAIL"

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise ValueError("initial balance is non-negative")
        self._initial = int(initial)

    @property
    def initial(self) -> int:
        return self._initial

    def apply(self, state: int, op: Any) -> Tuple[int, Any]:
        if isinstance(op, Deposit):
            return state + op.amount, OK
        if isinstance(op, Withdraw):
            if state >= op.amount:
                return state - op.amount, OK
            return state, self.FAIL
        if isinstance(op, BalanceRead):
            return state, state
        raise TypeError(f"not a bank-account operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        return isinstance(op, BalanceRead)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        # Normalise: classify each side.
        def kind(op: Any, value: Any) -> str:
            if isinstance(op, Deposit):
                return "noop" if op.amount == 0 else "dep"
            if isinstance(op, Withdraw):
                if op.amount == 0:
                    return "noop"
                return "wok" if value == OK else "wfail"
            if isinstance(op, BalanceRead):
                return "read"
            raise TypeError(f"not a bank-account operation: {op!r}")

        k1, k2 = kind(op1, value1), kind(op2, value2)
        if "noop" in (k1, k2):
            return True
        if k1 == "read" and k2 == "read":
            return True
        if {k1, k2} == {"read", "wfail"} or k1 == k2 == "wfail":
            return True  # failed withdrawals change nothing observable
        if k1 == k2 == "dep":
            return True
        if k1 == k2 == "wok":
            return True  # both succeeded: order is immaterial
        # dep/wok, dep/wfail, wok/wfail, read/dep, read/wok all conflict.
        return False


# ---------------------------------------------------------------------------
# FIFO queue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Enqueue:
    element: Any

    def __str__(self) -> str:
        return f"enq({self.element!r})"


@dataclass(frozen=True)
class Dequeue:
    def __str__(self) -> str:
        return "deq"


class QueueType(DataType):
    """A FIFO queue; states are tuples, dequeue of empty returns ``EMPTY``."""

    type_name = "queue"

    def __init__(self, initial: Tuple[Any, ...] = ()) -> None:
        self._initial = tuple(initial)

    @property
    def initial(self) -> Tuple[Any, ...]:
        return self._initial

    def apply(self, state: Tuple[Any, ...], op: Any) -> Tuple[Tuple[Any, ...], Any]:
        if isinstance(op, Enqueue):
            return state + (op.element,), OK
        if isinstance(op, Dequeue):
            if not state:
                return state, EMPTY
            return state[1:], state[0]
        raise TypeError(f"not a queue operation: {op!r}")

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        if isinstance(op1, Enqueue) and isinstance(op2, Enqueue):
            return op1.element == op2.element
        if isinstance(op1, Dequeue) and isinstance(op2, Dequeue):
            return value1 == value2
        enq, deq_value = (
            (op1, value2) if isinstance(op1, Enqueue) else (op2, value1)
        )
        # An enqueue commutes with a dequeue that returned a *different*
        # element: the dequeue drained an older element either way.
        return deq_value != EMPTY and deq_value != enq.element


# ---------------------------------------------------------------------------
# Key/value map
# ---------------------------------------------------------------------------

#: Return value of a get on an absent key.
MISSING = "MISSING"


@dataclass(frozen=True)
class MapPut:
    key: Any
    value: Any

    def __str__(self) -> str:
        return f"put({self.key!r}, {self.value!r})"


@dataclass(frozen=True)
class MapGet:
    key: Any

    def __str__(self) -> str:
        return f"get({self.key!r})"


@dataclass(frozen=True)
class MapRemove:
    key: Any

    def __str__(self) -> str:
        return f"map-remove({self.key!r})"


class MapType(DataType):
    """A key/value map; states are sorted tuples of (key, value) pairs.

    Operations on distinct keys always commute backward; per key the
    relation mirrors the register: equal-value puts commute, removes
    commute with removes, and everything else involving a mutation of
    the same key conflicts.
    """

    type_name = "map"

    def __init__(self, initial: Any = ()) -> None:
        self._initial = tuple(sorted(dict(initial).items()))

    @property
    def initial(self) -> Tuple[Tuple[Any, Any], ...]:
        return self._initial

    def apply(self, state: Tuple[Tuple[Any, Any], ...], op: Any) -> Tuple[Any, Any]:
        data = dict(state)
        if isinstance(op, MapPut):
            data[op.key] = op.value
            return tuple(sorted(data.items())), OK
        if isinstance(op, MapRemove):
            data.pop(op.key, None)
            return tuple(sorted(data.items())), OK
        if isinstance(op, MapGet):
            return state, data.get(op.key, MISSING)
        raise TypeError(f"not a map operation: {op!r}")

    def is_read_only(self, op: Any) -> bool:
        return isinstance(op, MapGet)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        if op1.key != op2.key:
            return True
        if isinstance(op1, MapGet) and isinstance(op2, MapGet):
            return True
        if isinstance(op1, MapPut) and isinstance(op2, MapPut):
            return op1.value == op2.value
        if isinstance(op1, MapRemove) and isinstance(op2, MapRemove):
            return True
        # get/put, get/remove, put/remove on the same key all conflict
        return False
