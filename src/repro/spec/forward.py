"""Forward commutativity — the *other* commutativity relation of Weihl [16].

The paper's footnote 10 notes that the commutativity required by the
undo logging algorithm (backward commutativity, Section 6.1) differs
from the relation used in [4], and points to Weihl [16] for the
comparison.  This module implements the comparison:

* two operations ``(T, v)`` and ``(T', v')`` **commute forward** when,
  for every legal prefix ``xi`` after which *each* of them is
  individually legal, performing them in either order is legal and the
  two orders are equieffective;
* backward commutativity (``DataType.commutes_backward``) instead
  quantifies over prefixes after which the *sequence* is legal.

Weihl's result is that neither implies the other, and that algorithms
using undo-based recovery (like ``U_X``) need backward commutativity,
while intentions-list (deferred-update) algorithms need forward
commutativity.  The canonical separation lives in the bank account:
two successful withdrawals commute backward (if both succeeded in
sequence, order is immaterial) but *not* forward (each may succeed
alone from a balance that cannot fund both).

:func:`forward_commutes_on_prefix` is the definitional check for one
prefix; :func:`forward_commutes` decides the relation over a supplied
prefix family (exhaustive small-domain families in the tests).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .datatype import DataType, IllegalOperation

__all__ = [
    "forward_commutes_on_prefix",
    "forward_commutes",
    "forward_backward_disagreements",
]

Pair = Tuple[Any, Any]


def _apply_checked(datatype: DataType, state: Any, pair: Pair) -> Any:
    new_state, value = datatype.apply(state, pair[0])
    if value != pair[1]:
        raise IllegalOperation(f"{pair[0]} returned {value!r}, expected {pair[1]!r}")
    return new_state


def forward_commutes_on_prefix(
    datatype: DataType, prefix: Sequence[Pair], first: Pair, second: Pair
) -> Optional[str]:
    """Check the forward-commutativity implication for one prefix.

    If both operations are individually legal after ``prefix``, then
    both orders must be legal and lead to equivalent states.  Returns a
    violation description or None (including vacuously).
    """
    try:
        base = datatype.replay(prefix)
    except IllegalOperation:
        return None
    try:
        after_first = _apply_checked(datatype, base, first)
        _apply_checked(datatype, base, second)
    except IllegalOperation:
        return None  # one of them is not individually legal: vacuous
    try:
        state_fs = _apply_checked(datatype, after_first, second)
    except IllegalOperation:
        return f"{second[0]} illegal after {first[0]}"
    try:
        after_second = _apply_checked(datatype, base, second)
        state_sf = _apply_checked(datatype, after_second, first)
    except IllegalOperation:
        return f"{first[0]} illegal after {second[0]}"
    if not datatype.states_equivalent(state_fs, state_sf):
        return f"states differ: {state_fs!r} vs {state_sf!r}"
    return None


def forward_commutes(
    datatype: DataType,
    first: Pair,
    second: Pair,
    prefixes: Iterable[Sequence[Pair]],
) -> bool:
    """Decide forward commutativity over the supplied prefix family."""
    for prefix in prefixes:
        if forward_commutes_on_prefix(datatype, prefix, first, second) is not None:
            return False
    return True


def forward_backward_disagreements(
    datatype: DataType,
    pairs: Sequence[Pair],
    prefixes: Sequence[Sequence[Pair]],
) -> List[Tuple[Pair, Pair, str]]:
    """Enumerate pairs on which the two relations disagree.

    Returns ``(first, second, which)`` triples, where ``which`` is
    ``"backward-only"`` (commute backward, not forward) or
    ``"forward-only"``.  Backward verdicts come from the type's exact
    table; forward verdicts from the definitional check over
    ``prefixes``.
    """
    disagreements: List[Tuple[Pair, Pair, str]] = []
    for i, first in enumerate(pairs):
        for second in pairs[i:]:
            backward = datatype.commutes_backward(
                first[0], first[1], second[0], second[1]
            )
            forward = forward_commutes(datatype, first, second, prefixes)
            if backward and not forward:
                disagreements.append((first, second, "backward-only"))
            elif forward and not backward:
                disagreements.append((first, second, "forward-only"))
    return disagreements
