"""Arbitrary data types: specifications and commutativity (Section 6.1)."""

from .builtin import (
    EMPTY,
    MISSING,
    MapGet,
    MapPut,
    MapRemove,
    MapType,
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    Dequeue,
    Enqueue,
    QueueType,
    RegRead,
    RegWrite,
    RegisterType,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Withdraw,
)
from .commutativity import (
    CommutativityCounterexample,
    commutes_backward_on_prefix,
    equieffective_states,
    exhaustive_prefixes,
    find_commutativity_counterexample,
    random_legal_prefixes,
    verify_commutativity_table,
)
from .datatype import DataType, IllegalOperation

__all__ = [name for name in dir() if not name.startswith("_")]
