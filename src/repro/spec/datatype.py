"""Serial specifications for objects of arbitrary data type (Section 6).

A :class:`DataType` plays the role the read/write automaton ``S_X``
plays in Sections 3–5: it defines which sequences of operations
``(op, value)`` are legal, and — crucially for the serialization graph
and the undo logging algorithm — which pairs of operations *conflict*,
i.e. fail to commute backward.

All built-in types are deterministic: the return value of an operation
is a function of the state, so legality of a sequence is checked by
replay, and two behaviors are equieffective exactly when they lead to
equivalent states (:meth:`DataType.states_equivalent`).  Exact
``commutes_backward`` predicates are supplied per type and are verified
in the test suite against the paper's definition using the bounded
checker in :mod:`repro.spec.commutativity`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterable, List, Sequence, Tuple

__all__ = ["DataType", "IllegalOperation"]


class IllegalOperation(ValueError):
    """An operation/value pair is illegal in the current replayed state."""


class DataType(ABC):
    """The serial specification of an object of some data type."""

    #: A short human-readable type name (used in diagnostics).
    type_name: str = "datatype"

    @property
    @abstractmethod
    def initial(self) -> Any:
        """The initial state of the object."""

    @abstractmethod
    def apply(self, state: Any, op: Any) -> Tuple[Any, Any]:
        """Apply ``op`` to ``state``; return ``(new_state, return_value)``.

        Deterministic: the returned value is *the* legal return value of
        ``op`` in ``state``.
        """

    @abstractmethod
    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        """The exact backward-commutativity predicate for two operations.

        Per Section 6.1 this must be symmetric; the test suite verifies
        both symmetry and agreement with the definitional check.
        """

    def is_read_only(self, op: Any) -> bool:
        """True iff ``op`` never changes the state.

        Used by the read/update locking algorithm (the general form of
        Moss' automaton) to grant shared locks; the default is the safe
        answer.  Overriding types must guarantee ``apply(s, op)[0] == s``
        for every state — the test suite checks this on bounded domains.
        """
        return False

    # -- protocol shared with RWSpec (used by checkers) ---------------------

    def conflicts(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        """Two operations conflict iff they fail to commute backward."""
        return not self.commutes_backward(op1, value1, op2, value2)

    def states_equivalent(self, state1: Any, state2: Any) -> bool:
        """Observational equivalence of states (plain equality by default)."""
        return state1 == state2

    def replay(self, pairs: Sequence[Tuple[Any, Any]]) -> Any:
        """Replay ``(op, value)`` pairs from the initial state.

        Returns the final state; raises :class:`IllegalOperation` when a
        pair's value differs from the value the type dictates.
        """
        state = self.initial
        for op, value in pairs:
            state, expected = self.apply(state, op)
            if expected != value:
                raise IllegalOperation(
                    f"{self.type_name}: {op} returned {value!r}, expected {expected!r}"
                )
        return state

    def is_legal(self, pairs: Sequence[Tuple[Any, Any]]) -> bool:
        """True iff ``perform`` of the pairs is a behavior of this spec."""
        try:
            self.replay(pairs)
        except IllegalOperation:
            return False
        return True

    def result_of(self, pairs: Sequence[Tuple[Any, Any]], op: Any) -> Any:
        """The value ``op`` must return when performed after ``pairs``."""
        state = self.replay(pairs)
        return self.apply(state, op)[1]

    def results_along(self, ops: Iterable[Any]) -> List[Tuple[Any, Any]]:
        """Assign the forced return value to each operation in sequence."""
        state = self.initial
        pairs: List[Tuple[Any, Any]] = []
        for op in ops:
            state, value = self.apply(state, op)
            pairs.append((op, value))
        return pairs
