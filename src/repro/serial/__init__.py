"""Serial systems: scheduler, serial objects, simple database (Sections 2-3)."""

from .rw_object import RWObjectState, SerialRWObject
from .scheduler import SerialScheduler, SerialSchedulerState
from .simple_db import SimpleDatabase, SimpleDatabaseState, check_simple_behavior
from .system import enumerate_serial_behaviors, make_serial_system, serial_object_for
from .typed_object import SerialTypedObject, TypedObjectState

__all__ = [
    "RWObjectState",
    "SerialRWObject",
    "SerialScheduler",
    "SerialSchedulerState",
    "SimpleDatabase",
    "SimpleDatabaseState",
    "check_simple_behavior",
    "enumerate_serial_behaviors",
    "make_serial_system",
    "serial_object_for",
    "SerialTypedObject",
    "TypedObjectState",
]
