"""The serial system: scheduler + serial objects + transaction automata.

Composes the fully specified serial scheduler with one serial object
automaton per object name and one transaction automaton per non-access
transaction (Section 2.2.4).  Besides the composition itself, this
module provides:

* :func:`make_serial_system` — build the composition for a set of
  transaction programs;
* :func:`enumerate_serial_behaviors` — exhaustively enumerate (bounded)
  serial behaviors of tiny systems, used to cross-validate the
  sequence-level validator in :mod:`repro.core.correctness` and the
  brute-force oracle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..automata.base import IOAutomaton
from ..automata.composition import Composition
from ..core.actions import Action, Behavior
from ..core.names import ObjectName, SystemType, TransactionName
from ..core.rw_semantics import RWSpec
from ..spec.datatype import DataType
from ..sim.programs import ProgramTransaction, TransactionProgram, collect_programs
from .rw_object import SerialRWObject
from .scheduler import SerialScheduler
from .typed_object import SerialTypedObject

__all__ = [
    "serial_object_for",
    "make_serial_system",
    "enumerate_serial_behaviors",
]


def serial_object_for(obj: ObjectName, system_type: SystemType) -> IOAutomaton:
    """Instantiate the right serial object automaton for ``obj``'s spec."""
    spec = system_type.spec(obj)
    if isinstance(spec, RWSpec):
        return SerialRWObject(obj, system_type)
    if isinstance(spec, DataType):
        return SerialTypedObject(obj, system_type)
    raise TypeError(f"object {obj} has an unsupported spec: {spec!r}")


def make_serial_system(
    system_type: SystemType,
    programs: Mapping[TransactionName, TransactionProgram],
) -> Composition:
    """The serial system for the given programs (one per top-level name).

    Program entries include the root ``T0`` program implicitly: pass the
    top-level transactions keyed by their names; their parent is assumed
    to be ``T0`` and a root program requesting all of them is synthesised
    by the caller if desired.  Here we simply build automata for every
    non-access transaction in the (flattened) program map.
    """
    components: List[IOAutomaton] = [SerialScheduler()]
    for obj in system_type.object_names():
        components.append(serial_object_for(obj, system_type))
    for name, program in sorted(collect_programs(programs).items()):
        components.append(ProgramTransaction(name, program))
    return Composition(components, name="serial-system")


def enumerate_serial_behaviors(
    system: Composition,
    max_steps: int,
    max_behaviors: Optional[int] = None,
) -> Iterator[Behavior]:
    """Depth-first enumeration of behaviors of ``system`` up to ``max_steps``.

    Every prefix reached is yielded (behaviors are prefix-closed), so the
    caller can filter for e.g. quiescent behaviors.  All actions of the
    composed serial system are locally controlled (the environment is the
    root program transaction, itself a component), so enumeration walks
    ``enabled_outputs`` of the composite.  Exponential — tiny systems only.
    """
    count = 0

    def walk(state, prefix: Tuple[Action, ...]) -> Iterator[Behavior]:
        nonlocal count
        if max_behaviors is not None and count >= max_behaviors:
            return
        count += 1
        yield prefix
        if len(prefix) >= max_steps:
            return
        seen = set()
        for action in system.enabled_outputs(state):
            if action in seen:
                continue
            seen.add(action)
            yield from walk(system.effect(state, action), prefix + (action,))

    yield from walk(system.initial_state(), ())
