"""The read/write serial object automaton ``S_X`` (Section 3.1).

State: ``active`` (the access currently being served, or None) and
``data`` (the most recently written value).  A read's REQUEST_COMMIT
returns exactly ``data``; a write's REQUEST_COMMIT returns ``OK`` and
overwrites ``data``.  This automaton *is* the serial specification of a
read/write object: Lemmas 3 and 4 of the paper characterise its
behaviors via ``final-value``, and the tests check that characterisation
against this executable definition.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional

from ..automata.base import IOAutomaton
from ..core.actions import Action, Create, RequestCommit
from ..core.names import ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, WriteOp

__all__ = ["RWObjectState", "SerialRWObject"]


@dataclass(frozen=True)
class RWObjectState:
    """The state of ``S_X``: the active access (if any) and the datum."""

    active: Optional[TransactionName]
    data: Any


class SerialRWObject(IOAutomaton):
    """``S_X`` for a read/write object named ``obj`` with the given initial value."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        self.obj = obj
        self.system_type = system_type
        self.initial = system_type.spec(obj).initial
        self.name = f"S_{obj}"

    # -- signature ---------------------------------------------------------

    def _is_my_access(self, transaction: TransactionName) -> bool:
        return (
            self.system_type.is_access(transaction)
            and self.system_type.object_of(transaction) == self.obj
        )

    def is_input(self, action: Action) -> bool:
        return isinstance(action, Create) and self._is_my_access(action.transaction)

    def is_output(self, action: Action) -> bool:
        return isinstance(action, RequestCommit) and self._is_my_access(
            action.transaction
        )

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> RWObjectState:
        return RWObjectState(active=None, data=self.initial)

    def enabled(self, state: RWObjectState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            if state.active != action.transaction:
                return False
            op = self.system_type.access(action.transaction).op
            if isinstance(op, WriteOp):
                return action.value == OK
            if isinstance(op, ReadOp):
                return action.value == state.data
        return False

    def effect(self, state: RWObjectState, action: Action) -> RWObjectState:
        if isinstance(action, Create):
            return replace(state, active=action.transaction)
        if isinstance(action, RequestCommit):
            op = self.system_type.access(action.transaction).op
            if isinstance(op, WriteOp):
                return RWObjectState(active=None, data=op.data)
            return replace(state, active=None)
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: RWObjectState) -> Iterator[Action]:
        if state.active is None:
            return
        op = self.system_type.access(state.active).op
        if isinstance(op, WriteOp):
            yield RequestCommit(state.active, OK)
        elif isinstance(op, ReadOp):
            yield RequestCommit(state.active, state.data)
