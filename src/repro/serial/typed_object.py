"""The serial object automaton for an arbitrary data type (Section 6).

The typed analogue of :class:`repro.serial.rw_object.SerialRWObject`:
state is the pair (active access, abstract data-type state); a
REQUEST_COMMIT is enabled exactly when its value is the one the data
type dictates in the current state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Optional

from ..automata.base import IOAutomaton
from ..core.actions import Action, Create, RequestCommit
from ..core.names import ObjectName, SystemType, TransactionName
from ..spec.datatype import DataType

__all__ = ["TypedObjectState", "SerialTypedObject"]


@dataclass(frozen=True)
class TypedObjectState:
    """Active access (if any) and the data type's abstract state."""

    active: Optional[TransactionName]
    data: Any


class SerialTypedObject(IOAutomaton):
    """``S_X`` for an object whose serial spec is a :class:`DataType`."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        self.obj = obj
        self.system_type = system_type
        spec = system_type.spec(obj)
        if not isinstance(spec, DataType):
            raise TypeError(f"object {obj} is not specified by a DataType")
        self.datatype: DataType = spec
        self.name = f"S_{obj}"

    def _is_my_access(self, transaction: TransactionName) -> bool:
        return (
            self.system_type.is_access(transaction)
            and self.system_type.object_of(transaction) == self.obj
        )

    def is_input(self, action: Action) -> bool:
        return isinstance(action, Create) and self._is_my_access(action.transaction)

    def is_output(self, action: Action) -> bool:
        return isinstance(action, RequestCommit) and self._is_my_access(
            action.transaction
        )

    def initial_state(self) -> TypedObjectState:
        return TypedObjectState(active=None, data=self.datatype.initial)

    def enabled(self, state: TypedObjectState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            if state.active != action.transaction:
                return False
            op = self.system_type.access(action.transaction).op
            _, expected = self.datatype.apply(state.data, op)
            return action.value == expected
        return False

    def effect(self, state: TypedObjectState, action: Action) -> TypedObjectState:
        if isinstance(action, Create):
            return replace(state, active=action.transaction)
        if isinstance(action, RequestCommit):
            op = self.system_type.access(action.transaction).op
            new_data, _ = self.datatype.apply(state.data, op)
            return TypedObjectState(active=None, data=new_data)
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: TypedObjectState) -> Iterator[Action]:
        if state.active is None:
            return
        op = self.system_type.access(state.active).op
        _, value = self.datatype.apply(state.data, op)
        yield RequestCommit(state.active, value)
