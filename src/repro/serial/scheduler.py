"""The serial scheduler automaton (Section 2.2.3).

The serial scheduler runs the transaction tree depth-first: siblings
never overlap, a transaction commits only after every child whose
creation it requested has completed, and a transaction can be aborted
only *before* it is created (so aborted transactions never perform any
step).  Completion results may be reported to the parent at any later
time.

``T0`` is treated as created from the start (it models the environment);
no ``CREATE(T0)`` action is ever emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Iterator, Optional, Tuple

from ..automata.base import IOAutomaton
from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import ROOT, TransactionName

__all__ = ["SerialSchedulerState", "SerialScheduler"]


@dataclass(frozen=True)
class SerialSchedulerState:
    """Immutable serial scheduler state; sets are frozensets, values a mapping."""

    create_requested: FrozenSet[TransactionName] = frozenset()
    created: FrozenSet[TransactionName] = frozenset({ROOT})
    committed: FrozenSet[TransactionName] = frozenset()
    aborted: FrozenSet[TransactionName] = frozenset()
    commit_values: Tuple[Tuple[TransactionName, Any], ...] = ()
    reported: FrozenSet[TransactionName] = frozenset()

    def completed(self, transaction: TransactionName) -> bool:
        return transaction in self.committed or transaction in self.aborted

    def value_of(self, transaction: TransactionName) -> Any:
        for name, value in self.commit_values:
            if name == transaction:
                return value
        raise KeyError(transaction)

    def commit_requested(self, transaction: TransactionName) -> bool:
        return any(name == transaction for name, _ in self.commit_values)


class SerialScheduler(IOAutomaton):
    """The fully specified serial scheduler automaton."""

    name = "serial-scheduler"

    def is_input(self, action: Action) -> bool:
        return isinstance(action, (RequestCreate, RequestCommit))

    def is_output(self, action: Action) -> bool:
        return isinstance(action, (Create, Commit, Abort, ReportCommit, ReportAbort))

    def initial_state(self) -> SerialSchedulerState:
        return SerialSchedulerState()

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _has_active_sibling(
        state: SerialSchedulerState, transaction: TransactionName
    ) -> bool:
        parent = transaction.parent
        for other in state.created:
            if other == transaction or other.is_root:
                continue
            if other.parent == parent and not state.completed(other):
                return True
        return False

    @staticmethod
    def _children_requested(
        state: SerialSchedulerState, transaction: TransactionName
    ) -> Iterator[TransactionName]:
        for child in state.create_requested:
            if not child.is_root and child.parent == transaction:
                yield child

    # -- transitions ----------------------------------------------------------

    def enabled(self, state: SerialSchedulerState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, Create):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and transaction not in state.created
                and not state.completed(transaction)
                and not self._has_active_sibling(state, transaction)
            )
        if isinstance(action, Commit):
            transaction = action.transaction
            return (
                state.commit_requested(transaction)
                and not state.completed(transaction)
                and all(
                    state.completed(child)
                    for child in self._children_requested(state, transaction)
                )
            )
        if isinstance(action, Abort):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and transaction not in state.created
                and not state.completed(transaction)
            )
        if isinstance(action, ReportCommit):
            transaction = action.transaction
            return (
                transaction in state.committed
                and transaction not in state.reported
                and state.value_of(transaction) == action.value
            )
        if isinstance(action, ReportAbort):
            transaction = action.transaction
            return transaction in state.aborted and transaction not in state.reported
        return False

    def effect(
        self, state: SerialSchedulerState, action: Action
    ) -> SerialSchedulerState:
        if isinstance(action, RequestCreate):
            return replace(
                state, create_requested=state.create_requested | {action.transaction}
            )
        if isinstance(action, RequestCommit):
            if state.commit_requested(action.transaction):
                return state
            return replace(
                state,
                commit_values=state.commit_values
                + ((action.transaction, action.value),),
            )
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, Commit):
            return replace(state, committed=state.committed | {action.transaction})
        if isinstance(action, Abort):
            return replace(state, aborted=state.aborted | {action.transaction})
        if isinstance(action, (ReportCommit, ReportAbort)):
            return replace(state, reported=state.reported | {action.transaction})
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: SerialSchedulerState) -> Iterator[Action]:
        for transaction in sorted(state.create_requested):
            create = Create(transaction)
            if self.enabled(state, create):
                yield create
            abort = Abort(transaction)
            if self.enabled(state, abort):
                yield abort
        for transaction, value in state.commit_values:
            commit = Commit(transaction)
            if self.enabled(state, commit):
                yield commit
        for transaction in sorted(state.committed):
            report = ReportCommit(transaction, state.value_of(transaction))
            if self.enabled(state, report):
                yield report
        for transaction in sorted(state.aborted):
            report_abort = ReportAbort(transaction)
            if self.enabled(state, report_abort):
                yield report_abort
