"""The simple database automaton and simple-behavior checks (Section 2.3.1).

The simple database embodies the constraints any reasonable transaction
processing system satisfies — creations and completions only after the
matching requests, no duplicate creations/completions/reports/responses —
while allowing arbitrary concurrency, completion order, and access
return values.  The Serializability Theorem and the serialization-graph
theorems quantify over its behaviors ("simple behaviors").

:func:`check_simple_behavior` is the sequence-level well-formedness
checker used to sanity-check inputs to the certifier;
:class:`SimpleDatabase` is the automaton form, whose behaviors the
generic system provably implements (tested, not assumed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from ..automata.base import IOAutomaton
from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    is_serial_action,
)
from ..core.names import ROOT, SystemType, TransactionName

__all__ = [
    "SimpleDatabaseState",
    "SimpleDatabase",
    "check_simple_behavior",
    "make_simple_system",
]


@dataclass(frozen=True)
class SimpleDatabaseState:
    """Bookkeeping of requests, creations, completions, reports and responses."""

    create_requested: FrozenSet[TransactionName] = frozenset()
    created: FrozenSet[TransactionName] = frozenset()
    commit_requested: Tuple[Tuple[TransactionName, Any], ...] = ()
    committed: FrozenSet[TransactionName] = frozenset()
    aborted: FrozenSet[TransactionName] = frozenset()
    reported: FrozenSet[TransactionName] = frozenset()
    responded: FrozenSet[TransactionName] = frozenset()

    def completed(self, transaction: TransactionName) -> bool:
        return transaction in self.committed or transaction in self.aborted

    def commit_value(self, transaction: TransactionName) -> Any:
        for name, value in self.commit_requested:
            if name == transaction:
                return value
        raise KeyError(transaction)

    def has_commit_request(self, transaction: TransactionName) -> bool:
        return any(name == transaction for name, _ in self.commit_requested)


class SimpleDatabase(IOAutomaton):
    """The simple database automaton for a given system type."""

    name = "simple-database"

    def __init__(self, system_type: SystemType) -> None:
        self.system_type = system_type

    def is_input(self, action: Action) -> bool:
        if isinstance(action, RequestCreate):
            return True
        if isinstance(action, RequestCommit):
            return not self.system_type.is_access(action.transaction)
        return False

    def is_output(self, action: Action) -> bool:
        if isinstance(action, (Create, Commit, Abort, ReportCommit, ReportAbort)):
            return True
        if isinstance(action, RequestCommit):
            return self.system_type.is_access(action.transaction)
        return False

    def initial_state(self) -> SimpleDatabaseState:
        return SimpleDatabaseState()

    def enabled(self, state: SimpleDatabaseState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, Create):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and transaction not in state.created
            )
        if isinstance(action, RequestCommit):
            # Output form: responses to accesses, with an arbitrary value.
            transaction = action.transaction
            return (
                transaction in state.created
                and transaction not in state.responded
            )
        if isinstance(action, Commit):
            transaction = action.transaction
            return state.has_commit_request(transaction) and not state.completed(
                transaction
            )
        if isinstance(action, Abort):
            transaction = action.transaction
            return (
                transaction in state.create_requested
                and not state.completed(transaction)
            )
        if isinstance(action, ReportCommit):
            transaction = action.transaction
            return (
                transaction in state.committed
                and transaction not in state.reported
                and state.commit_value(transaction) == action.value
            )
        if isinstance(action, ReportAbort):
            transaction = action.transaction
            return transaction in state.aborted and transaction not in state.reported
        return False

    def effect(self, state: SimpleDatabaseState, action: Action) -> SimpleDatabaseState:
        if isinstance(action, RequestCreate):
            return replace(
                state, create_requested=state.create_requested | {action.transaction}
            )
        if isinstance(action, RequestCommit):
            new = state
            if self.system_type.is_access(action.transaction):
                new = replace(new, responded=new.responded | {action.transaction})
            if not new.has_commit_request(action.transaction):
                new = replace(
                    new,
                    commit_requested=new.commit_requested
                    + ((action.transaction, action.value),),
                )
            return new
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, Commit):
            return replace(state, committed=state.committed | {action.transaction})
        if isinstance(action, Abort):
            return replace(state, aborted=state.aborted | {action.transaction})
        if isinstance(action, (ReportCommit, ReportAbort)):
            return replace(state, reported=state.reported | {action.transaction})
        raise ValueError(f"{self.name}: {action} not in signature")


def check_simple_behavior(
    behavior: Sequence[Action], system_type: SystemType
) -> List[str]:
    """Check the simple-database constraints over a serial action sequence.

    Returns problem descriptions (empty means ``behavior`` satisfies the
    constraints every simple behavior satisfies).  This is the sequence
    analogue of :class:`SimpleDatabase`, convenient for validating inputs
    to the certifier without automaton replay.
    """
    problems: List[str] = []
    create_requested: Set[TransactionName] = set()
    created: Set[TransactionName] = set()
    commit_requested: Dict[TransactionName, Any] = {}
    committed: Set[TransactionName] = set()
    aborted: Set[TransactionName] = set()
    reported: Set[TransactionName] = set()

    def note(position: int, action: Action, message: str) -> None:
        problems.append(f"event {position} ({action}): {message}")

    for position, action in enumerate(behavior):
        if not is_serial_action(action):
            note(position, action, "not a serial action")
            continue
        if isinstance(action, RequestCreate):
            create_requested.add(action.transaction)
        elif isinstance(action, Create):
            if action.transaction.is_root:
                note(position, action, "CREATE(T0) never occurs")
            if action.transaction not in create_requested:
                note(position, action, "CREATE without REQUEST_CREATE")
            if action.transaction in created:
                note(position, action, "duplicate CREATE")
            created.add(action.transaction)
        elif isinstance(action, RequestCommit):
            transaction = action.transaction
            if system_type.is_access(transaction):
                if transaction not in created:
                    note(position, action, "response to an access never invoked")
                if transaction in commit_requested:
                    note(position, action, "second response to an access")
            commit_requested.setdefault(transaction, action.value)
        elif isinstance(action, Commit):
            transaction = action.transaction
            if transaction not in commit_requested:
                note(position, action, "COMMIT without REQUEST_COMMIT")
            if transaction in committed or transaction in aborted:
                note(position, action, "second completion event")
            committed.add(transaction)
        elif isinstance(action, Abort):
            transaction = action.transaction
            if transaction not in create_requested:
                note(position, action, "ABORT without REQUEST_CREATE")
            if transaction in committed or transaction in aborted:
                note(position, action, "second completion event")
            aborted.add(transaction)
        elif isinstance(action, ReportCommit):
            transaction = action.transaction
            if transaction not in committed:
                note(position, action, "REPORT_COMMIT of a transaction not committed")
            elif commit_requested.get(transaction) != action.value:
                note(position, action, "reported value differs from requested value")
            if transaction in reported:
                note(position, action, "duplicate report")
            reported.add(transaction)
        elif isinstance(action, ReportAbort):
            transaction = action.transaction
            if transaction not in aborted:
                note(position, action, "REPORT_ABORT of a transaction not aborted")
            if transaction in reported:
                note(position, action, "duplicate report")
            reported.add(transaction)
    return problems


def make_simple_system(system_type, programs):
    """The simple system (Section 2.3.1): transactions + the simple database.

    The composition the Serializability Theorem quantifies over.  Its
    behaviors allow arbitrary interleavings and arbitrary access return
    values; concrete systems (serial, generic) implement it — a relation
    the test suite checks by replaying their behaviors here.
    """
    from ..automata.composition import Composition
    from ..sim.programs import ProgramTransaction, collect_programs

    components = [SimpleDatabase(system_type)]
    for transaction, program in sorted(collect_programs(programs).items()):
        components.append(ProgramTransaction(transaction, program))
    return Composition(components, name="simple-system")
