"""A long-lived asyncio certification service over online certifiers.

:class:`StreamService` turns the per-instance
:class:`repro.core.online.OnlineCertifier` into a *feed API*: clients
open named sessions, push serial actions through bounded queues, and
read back verdicts whenever they like.  Many concurrent sessions are
multiplexed over a small set of certifier **workers** — each session is
pinned to one worker (round-robin, the same sharding idiom as
:func:`repro.parallel.certify_corpus`), so one session's actions are
always consumed in feed order while independent sessions interleave
freely.

The workers are cooperative asyncio tasks in one process: the service
provides *fairness and backpressure* across sessions, not CPU
parallelism (use :mod:`repro.parallel` to fan complete corpora out over
processes).  Each worker owns one bounded :class:`asyncio.Queue`; when
a producer outruns certification the queue fills and ``feed`` suspends
— counted in ``stream.backpressure_waits`` — until the worker drains.
That bound, together with ``compaction=True`` certifiers (the default
here), keeps the whole service's memory proportional to the live
windows of its sessions rather than their history.

Observability: the service-level registry (``metrics``) carries the
``stream.*`` counters/gauges; each session may additionally bring its
own :class:`repro.obs.MetricsRegistry`, which is handed to its
certifier and fills with the per-session ``online.*`` series (including
``online.compaction.*``).  With either registry attached, every fed
action is stamped at enqueue and its feed→verdict latency — queue wait
plus certification — lands in a ``stream.latency.feed_to_verdict``
log-bucket histogram (p50/p95/p99 in the snapshot) at service and
session level, and the time a full queue blocked the producer feeds the
``stream.backpressure.seconds`` histogram next to the existing wait
counter.  A session opened with a
:class:`repro.obs.flight.FlightRecorder` gets post-mortem dumps (recent
action window, metrics snapshot, cycle witness) when its verdict
degrades.  With no registry anywhere, none of the clocks are read.

All coroutine methods must run on the event loop that ``start`` ran on.
A minimal session::

    service = StreamService(StreamConfig(workers=2))
    await service.start()
    session = await service.open_session("audit-1", system_type)
    for action in behavior:
        await session.feed(action)
    result = await session.close()   # final verdict + compaction stats
    await service.close()
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import AsyncIterator, Dict, Iterable, List, Optional, Union

from ..core.actions import Action
from ..core.history import ConflictCache
from ..core.names import SystemType
from ..core.online import OnlineCertifier, OnlineVerdict
from ..obs.flight import FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..obs.quantiles import latency_histogram

__all__ = [
    "StreamConfig",
    "SessionResult",
    "SessionHandle",
    "StreamService",
    "certify_stream",
]


@dataclass(frozen=True)
class StreamConfig:
    """Tuning knobs for a :class:`StreamService`.

    ``queue_size`` bounds each worker's inbox (the backpressure point);
    ``workers`` sets the number of certifier workers sessions are
    sharded over.  The remaining fields configure every session's
    :class:`repro.core.online.OnlineCertifier` — compaction is on by
    default because a long-lived service is exactly the bounded-memory
    deployment it exists for.
    """

    workers: int = 1
    queue_size: int = 256
    compaction: bool = True
    compaction_interval: int = 64
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.queue_size < 1:
            raise ValueError("queue_size must be at least 1")


@dataclass(frozen=True)
class SessionResult:
    """The final judgement of one closed session."""

    name: str
    verdict: OnlineVerdict
    actions: int
    compaction_stats: Dict[str, int]


@dataclass
class _Session:
    """Internal per-session state owned by exactly one worker."""

    name: str
    certifier: OnlineCertifier
    worker: int
    metrics: Optional[MetricsRegistry] = None
    actions: int = 0
    closed: bool = False
    error: Optional[BaseException] = None


@dataclass
class _Item:
    """One worker-queue entry: a feed (``action`` set) or a round-trip
    request (``reply`` set; ``close`` distinguishes verdict vs close).

    ``enqueued`` is the ``perf_counter`` stamp taken as the feed entered
    the queue — 0.0 when latency measurement is off (no registry), so
    the uninstrumented path never reads a clock."""

    session: _Session
    action: Optional[Action] = None
    reply: Optional["asyncio.Future[object]"] = None
    close: bool = False
    enqueued: float = 0.0


class SessionHandle:
    """A client's handle to one open session (created by ``open_session``).

    ``feed`` enqueues fire-and-forget — per-session FIFO order is
    guaranteed by the single worker queue — while ``verdict`` and
    ``close`` round-trip through the worker so the answer reflects every
    previously fed action.  A certifier error (e.g. an unregistered
    access) is captured by the worker and re-raised from the next
    ``verdict``/``close`` call; later ``feed`` calls become no-ops.
    """

    def __init__(self, service: "StreamService", session: _Session) -> None:
        self._service = service
        self._session = session

    @property
    def name(self) -> str:
        """The session name given to ``open_session``."""
        return self._session.name

    async def feed(self, action: Action) -> None:
        """Enqueue one action for certification (suspends when full)."""
        await self._service._enqueue(_Item(self._session, action=action))

    async def feed_all(self, actions: Iterable[Action]) -> None:
        """Enqueue a whole action iterable, in order."""
        for action in actions:
            await self._service._enqueue(_Item(self._session, action=action))

    async def verdict(self) -> OnlineVerdict:
        """The verdict after everything fed so far (round-trips the worker)."""
        result = await self._service._request(self._session, close=False)
        assert isinstance(result, OnlineVerdict)
        return result

    async def close(self) -> SessionResult:
        """Drain, close the session and return its final result."""
        result = await self._service._request(self._session, close=True)
        assert isinstance(result, SessionResult)
        return result


class StreamService:
    """The long-lived feed service; see the module docstring for usage."""

    def __init__(
        self,
        config: Optional[StreamConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else StreamConfig()
        self.metrics = metrics
        self._queues: List["asyncio.Queue[_Item]"] = []
        self._workers: List["asyncio.Task[None]"] = []
        self._sessions: Dict[str, _Session] = {}
        self._next_worker = 0
        self._started = False

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._started:
            return
        self._started = True
        self._queues = [
            asyncio.Queue(maxsize=self.config.queue_size)
            for _ in range(self.config.workers)
        ]
        self._workers = [
            asyncio.create_task(self._run_worker(index))
            for index in range(self.config.workers)
        ]
        if self.metrics is not None:
            self.metrics.set_gauge("stream.workers", self.config.workers)

    async def close(self) -> None:
        """Stop every worker after the queues drain (open sessions stay
        un-finalised; close them first for their results)."""
        if not self._started:
            return
        for queue in self._queues:
            await queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._started = False
        self._workers = []
        self._queues = []

    async def open_session(
        self,
        name: str,
        system_type: SystemType,
        metrics: Optional[MetricsRegistry] = None,
        conflict_cache: Optional[ConflictCache] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> SessionHandle:
        """Open a named session and pin it to a worker (round-robin).

        ``metrics`` (optional) is the per-session registry handed to the
        session's certifier; ``conflict_cache`` may be shared across
        sessions auditing the same object specifications; ``flight``
        (optional) attaches a violation flight recorder to the session's
        certifier (see :mod:`repro.obs.flight`).
        """
        if not self._started:
            raise RuntimeError("service not started")
        if name in self._sessions:
            raise ValueError(f"session {name!r} already open")
        certifier = OnlineCertifier(
            system_type,
            metrics=metrics,
            incremental=self.config.incremental,
            conflict_cache=conflict_cache,
            compaction=self.config.compaction,
            compaction_interval=self.config.compaction_interval,
            flight=flight,
            session=name,
        )
        session = _Session(name, certifier, self._next_worker, metrics=metrics)
        self._next_worker = (self._next_worker + 1) % self.config.workers
        self._sessions[name] = session
        if self.metrics is not None:
            self.metrics.inc("stream.sessions.opened")
            self.metrics.set_gauge("stream.sessions.open", len(self._sessions))
        return SessionHandle(self, session)

    def live_tracked_ops(self) -> int:
        """Total tracked operations retained across all open sessions."""
        return sum(
            session.certifier.live_tracked_ops()
            for session in self._sessions.values()
        )

    # -- internal ----------------------------------------------------------

    async def _enqueue(self, item: _Item) -> None:
        if item.session.closed:
            raise RuntimeError(f"session {item.session.name!r} is closed")
        queue = self._queues[item.session.worker]
        if self.metrics is None and item.session.metrics is None:
            # fully uninstrumented: no clock reads on this path
            await queue.put(item)
            return
        if item.action is not None:
            item.enqueued = time.perf_counter()
        if self.metrics is not None and queue.full():
            self.metrics.inc("stream.backpressure_waits")
            blocked = time.perf_counter()
            await queue.put(item)
            latency_histogram(self.metrics, "stream.backpressure.seconds").observe(
                time.perf_counter() - blocked
            )
            return
        await queue.put(item)

    async def _request(self, session: _Session, close: bool) -> object:
        loop = asyncio.get_running_loop()
        reply: "asyncio.Future[object]" = loop.create_future()
        await self._enqueue(_Item(session, reply=reply, close=close))
        return await reply

    async def _run_worker(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            item = await queue.get()
            try:
                self._handle(item)
            finally:
                queue.task_done()

    def _handle(self, item: _Item) -> None:
        session = item.session
        if item.reply is None:
            # plain feed
            if session.error is not None:
                return
            try:
                session.certifier.feed(item.action)  # type: ignore[arg-type]
                session.actions += 1
                if self.metrics is not None:
                    self.metrics.inc("stream.actions")
                if item.enqueued:
                    # queue wait + certification, the client-visible lag
                    elapsed = time.perf_counter() - item.enqueued
                    if self.metrics is not None:
                        latency_histogram(
                            self.metrics, "stream.latency.feed_to_verdict"
                        ).observe(elapsed)
                    if session.metrics is not None and session.metrics is not self.metrics:
                        latency_histogram(
                            session.metrics, "stream.latency.feed_to_verdict"
                        ).observe(elapsed)
            except BaseException as exc:  # surfaced on next verdict/close
                session.error = exc
                if self.metrics is not None:
                    self.metrics.inc("stream.errors")
            return
        if session.error is not None:
            item.reply.set_exception(session.error)
            if item.close:
                self._finalize(session)
            return
        if not item.close:
            item.reply.set_result(session.certifier.verdict())
            return
        result = SessionResult(
            session.name,
            session.certifier.verdict(),
            session.actions,
            session.certifier.compaction_stats(),
        )
        self._finalize(session)
        item.reply.set_result(result)

    def _finalize(self, session: _Session) -> None:
        session.closed = True
        self._sessions.pop(session.name, None)
        if self.metrics is not None:
            self.metrics.inc("stream.sessions.closed")
            self.metrics.set_gauge("stream.sessions.open", len(self._sessions))


async def certify_stream(
    name: str,
    system_type: SystemType,
    actions: Union[AsyncIterator[Action], Iterable[Action]],
    config: Optional[StreamConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    flight: Optional[FlightRecorder] = None,
) -> SessionResult:
    """One-shot convenience: run a whole stream through a private service.

    Accepts either a plain iterable or an async iterator of actions;
    returns the closed session's :class:`SessionResult`.  ``metrics``
    doubles as the session registry here (one session, one registry);
    ``flight`` attaches a violation flight recorder to the session.
    """
    service = StreamService(config, metrics=metrics)
    await service.start()
    try:
        session = await service.open_session(
            name, system_type, metrics=metrics, flight=flight
        )
        if hasattr(actions, "__aiter__"):
            async for action in actions:  # type: ignore[union-attr]
                await session.feed(action)
        else:
            await session.feed_all(actions)  # type: ignore[arg-type]
        return await session.close()
    finally:
        await service.close()
