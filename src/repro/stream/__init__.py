"""Bounded-memory streaming certification: feed service + workloads.

This package wraps the online certifier's prefix-compaction mode
(:class:`repro.core.online.OnlineCertifier` with ``compaction=True``)
in a long-lived deployment shape:

* :mod:`repro.stream.service` — an asyncio feed API with bounded
  queues/backpressure, many concurrent sessions sharded over certifier
  workers, and ``stream.*`` metrics;
* :mod:`repro.stream.workload` — commit-as-you-go stream generation
  whose live window stays O(1) in the stream length, the workload the
  ``repro stream`` CLI subcommand and benchmark E15 drive.
"""

from .service import (
    SessionHandle,
    SessionResult,
    StreamConfig,
    StreamService,
    certify_stream,
)
from .workload import StreamWorkload, commit_as_you_go

__all__ = [
    "StreamConfig",
    "SessionResult",
    "SessionHandle",
    "StreamService",
    "certify_stream",
    "StreamWorkload",
    "commit_as_you_go",
]
