"""Streaming workload generation: unbounded commit-as-you-go streams.

The batch workload generator (:mod:`repro.sim.workload`) materialises a
whole system and replays it; a *streaming* audit needs the opposite
shape — an action iterator that can run for hundreds of thousands of
events while the certifier's live window stays small.  The generator
here produces exactly that profile:

* ``window`` top-level transactions are in flight at any moment; each
  runs the full ceremony (request/create, access children with their
  reports, commit) and finishes before a replacement starts, so the
  open window — and with ``compaction=True`` the certifier's retained
  state — is O(``window``) regardless of stream length.
* objects *rotate*: top-level transaction ``i`` draws its objects from
  a sliding pool indexed by ``i // rotation``, so any single object is
  only ever touched by a bounded stretch of the stream.  Overlapping
  pools still produce cross-transaction conflict edges, but per-object
  visible sequences (and hence per-event certifier work) stay bounded
  in *both* engines — the stream scales in length, not in per-event
  cost.
* read results are resolved when the access's ``REQUEST_COMMIT`` is
  *yielded*: ARV legality orders visible operations by request
  position, so a read is legal iff it carries the value of the latest
  write scheduled before it — independent of how the window
  interleaves.  The generated stream therefore never produces ARV
  violations.  Interleaved writes on a shared object can still close a
  serialization-graph cycle (commit-as-you-go is not serializable by
  construction); the latch is identical in both engines and does not
  affect the memory profile the stream exists to measure.

Access names are registered on the system type lazily, just before the
access's first action is yielded; the certifier only consults the
registry when it consumes the access's ``REQUEST_COMMIT``, so feeding
the iterator straight into :class:`repro.core.online.OnlineCertifier`
(or the :mod:`repro.stream.service` feed API) is sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from ..core.actions import (
    Action,
    Commit,
    Create,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import Access, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, RWSpec, WriteOp

__all__ = ["StreamWorkload", "commit_as_you_go"]


@dataclass(frozen=True)
class StreamWorkload:
    """Shape of a commit-as-you-go stream (see :func:`commit_as_you_go`).

    ``top_level`` transactions run ``accesses`` accesses each, ``window``
    of them interleaved at a time, over objects drawn from a pool of
    ``pool`` names that advances every ``rotation`` transactions.
    """

    top_level: int = 100
    accesses: int = 4
    window: int = 8
    pool: int = 4
    rotation: int = 16
    read_fraction: float = 0.5
    seed: int = 0

    def object_count(self) -> int:
        """Total distinct objects the stream will touch."""
        last_pool = max(0, self.top_level - 1) // max(1, self.rotation)
        return last_pool + self.pool

    def event_estimate(self) -> int:
        """Events the stream will yield (exact for this generator)."""
        # per access: request/create/request-commit/commit/report = 5
        # per top-level txn: request/create/request-commit/commit = 4
        return self.top_level * (4 + 5 * self.accesses)


#: a pending access request-commit or report whose (read) value is
#: resolved at yield time: ("rc" | "report", access, obj, op)
_Deferred = Tuple[str, TransactionName, ObjectName, Union[ReadOp, WriteOp]]
_Step = Union[Action, _Deferred]


def _ceremony(
    workload: StreamWorkload,
    index: int,
    rng: random.Random,
    system_type: SystemType,
) -> List[_Step]:
    """One top-level transaction's action sequence, with deferred values."""
    top = TransactionName((f"s{index}",))
    steps: List[_Step] = [RequestCreate(top), Create(top)]
    base = index // max(1, workload.rotation)
    for position in range(workload.accesses):
        obj = ObjectName(f"o{base + rng.randrange(workload.pool)}")
        op: Union[ReadOp, WriteOp]
        if rng.random() < workload.read_fraction:
            op = ReadOp()
        else:
            op = WriteOp(rng.randrange(1000))
        access = top.child(f"a{position}")
        system_type.register_access(access, Access(obj, op))
        steps += [
            RequestCreate(access),
            Create(access),
            ("rc", access, obj, op),
            Commit(access),
            ("report", access, obj, op),
        ]
    steps += [RequestCommit(top, "done"), Commit(top)]
    return steps


def commit_as_you_go(
    workload: StreamWorkload,
) -> Tuple[SystemType, Iterator[Action]]:
    """A lazily generated stream and the system type it runs against.

    Returns ``(system_type, actions)``: the system type carries every
    object up front (the certifier snapshots the object set at
    construction) while access leaves are registered as the iterator
    advances.  The iterator interleaves ``window`` concurrent top-level
    ceremonies, starting a new transaction whenever one finishes, so
    feeding it end to end exercises a genuinely overlapping schedule
    whose memory demand on the certifier is O(``window``) — the profile
    the ``compaction=True`` engine is built for.
    """
    system_type = SystemType(
        {
            ObjectName(f"o{index}"): RWSpec(initial=0)
            for index in range(workload.object_count())
        }
    )

    def generate() -> Iterator[Action]:
        rng = random.Random(workload.seed)
        values: Dict[ObjectName, int] = {}
        answers: Dict[TransactionName, object] = {}
        active: List[List[_Step]] = []
        cursors: List[int] = []
        started = 0
        while started < workload.top_level or active:
            while started < workload.top_level and len(active) < workload.window:
                active.append(_ceremony(workload, started, rng, system_type))
                cursors.append(0)
                started += 1
            slot = rng.randrange(len(active))
            step = active[slot][cursors[slot]]
            cursors[slot] += 1
            if cursors[slot] == len(active[slot]):
                active.pop(slot)
                cursors.pop(slot)
            if not isinstance(step, tuple):
                yield step
            elif step[0] == "rc":
                _, access, obj, op = step
                if isinstance(op, WriteOp):
                    values[obj] = op.data
                    answers[access] = OK
                else:
                    answers[access] = values.get(obj, 0)
                yield RequestCommit(access, answers[access])
            else:
                _, access, _, _ = step
                yield ReportCommit(access, answers.pop(access))

    return system_type, generate()
