"""Scheduling policies: how the driver resolves the system's nondeterminism.

A policy picks the next action from the set of enabled locally-controlled
actions.  All policies are deterministic given their seed, so every run
is reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)

__all__ = [
    "SchedulingPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "EagerInformPolicy",
    "OrphanFreePolicy",
]


class SchedulingPolicy(ABC):
    """Chooses one of the currently enabled actions (or None to stop)."""

    @abstractmethod
    def choose(self, enabled: Sequence[Action]) -> Optional[Action]: ...

    def observe(self, action: Action) -> None:
        """Called by the driver after each applied action (including ones
        the driver injected itself, e.g. deadlock-victim aborts)."""


class RandomPolicy(SchedulingPolicy):
    """Uniformly random choice — maximal interleaving stress."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        if not enabled:
            return None
        return self.rng.choice(list(enabled))


class RoundRobinPolicy(SchedulingPolicy):
    """Cycles through action kinds, favouring fairness over randomness."""

    _ORDER = (
        Create,
        RequestCommit,
        Commit,
        InformCommit,
        InformAbort,
        ReportCommit,
        ReportAbort,
        RequestCreate,
    )

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        if not enabled:
            return None
        kinds = len(self._ORDER)
        for offset in range(kinds):
            kind = self._ORDER[(self._cursor + offset) % kinds]
            matches = [action for action in enabled if isinstance(action, kind)]
            if matches:
                self._cursor = (self._cursor + offset + 1) % kinds
                return matches[0]
        return list(enabled)[0]


class EagerInformPolicy(SchedulingPolicy):
    """Random, but always delivers pending INFORMs and reports first.

    Keeping objects promptly informed lets Moss locking inherit locks
    leaf-to-root without artificial blocking — the configuration real
    systems approximate.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        if not enabled:
            return None
        urgent = [
            action
            for action in enabled
            if isinstance(action, (InformCommit, InformAbort, ReportCommit, ReportAbort))
        ]
        pool = urgent if urgent else list(enabled)
        return self.rng.choice(pool)


class OrphanFreePolicy(SchedulingPolicy):
    """Filter orphan activity out of another policy's choices.

    The model deliberately allows orphans — descendants of aborted
    transactions — to keep taking steps (the theorems hold regardless,
    and the orphan-management algorithms of the literature are about
    *limiting* that wasted work).  This wrapper implements the simplest
    such limiter: it tracks the aborts it has scheduled and never again
    chooses a CREATE, REQUEST_CREATE or access response on behalf of an
    orphan.  Reports and informs still flow, so the rest of the system
    learns about the aborts.
    """

    def __init__(self, base: SchedulingPolicy) -> None:
        self.base = base
        self.aborted: set = set()
        self.filtered_out = 0

    def _is_orphan_work(self, action: Action) -> bool:
        if not isinstance(action, (Create, RequestCreate, RequestCommit)):
            return False
        return any(
            ancestor in self.aborted
            for ancestor in action.transaction.ancestors()
        )

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        useful = [a for a in enabled if not self._is_orphan_work(a)]
        self.filtered_out += len(enabled) - len(useful)
        choice = self.base.choose(useful)
        if choice is None and enabled and not useful:
            # only orphan work remains; refuse it and end the run
            return None
        return choice

    def observe(self, action: Action) -> None:
        if isinstance(action, Abort):
            self.aborted.add(action.transaction)
        base_observe = getattr(self.base, "observe", None)
        if base_observe is not None:
            base_observe(action)

    def offer_aborts(self, aborts) -> None:
        """Pass through to a wrapped AbortInjector, if any."""
        inner = getattr(self.base, "offer_aborts", None)
        if inner is not None:
            inner(aborts)
