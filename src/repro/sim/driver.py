"""The simulation driver: runs a composed system to a finite behavior.

The paper's theorems quantify over *all* finite behaviors of a generic
system; the driver produces such behaviors by repeatedly asking the
composition for its enabled locally-controlled actions and letting a
:class:`repro.sim.policies.SchedulingPolicy` choose among them.  Seeded
policies make every run reproducible; the
:class:`repro.sim.faults.AbortInjector` wrapper adds failures.

Every run ends either quiescent (nothing enabled — including genuine
Moss-locking deadlocks, whose behaviors are still finite behaviors the
theorems cover) or at the step limit.  The returned :class:`RunResult`
carries the behavior, ready for the Theorem 8/19 certifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..automata.composition import Composition
from ..core.actions import (
    Abort,
    Action,
    Behavior,
    Commit,
    RequestCommit,
)
from ..core.names import SystemType, TransactionName
from ..generic.controller import GenericController
from ..generic.objects import GenericObject
from ..obs.hooks import ObsHooks
from .policies import SchedulingPolicy
from .stats import RunStats

__all__ = ["RunResult", "run_system"]


@dataclass
class RunResult:
    """The outcome of one simulated run."""

    behavior: Behavior
    stats: RunStats
    final_state: dict


def run_system(
    system: Composition,
    policy: SchedulingPolicy,
    system_type: SystemType,
    max_steps: int = 10_000,
    collect_blocking: bool = False,
    resolve_deadlocks: bool = False,
    hooks: Optional[ObsHooks] = None,
) -> RunResult:
    """Run ``system`` under ``policy`` until quiescence or ``max_steps``.

    With ``collect_blocking``, each step also counts accesses that are
    invoked but not currently serviceable (concurrency denied by the
    object algorithms) — the E7 metric.

    With ``resolve_deadlocks``, a stuck state (nothing enabled but some
    access invoked and blocked — a genuine locking deadlock) is broken
    the way deployed systems do: the top-level ancestor of the least
    blocked access is aborted, releasing its subtree's locks.  Victim
    aborts are counted in ``stats.deadlock_aborts``.

    ``hooks`` (an :class:`repro.obs.hooks.ObsHooks`) observes the run:
    one ``on_policy_choice``/``on_step`` per step, plus quiescence and
    deadlock-resolution events.  ``None`` (the default) skips all
    observer work.
    """
    state = system.initial_state()
    trace: List[Action] = []
    stats = RunStats()
    controller = next(
        component
        for component in system.components
        if isinstance(component, GenericController)
    )
    objects = [
        component
        for component in system.components
        if isinstance(component, GenericObject)
    ]

    def pick_deadlock_victim() -> Optional[Abort]:
        blocked = sorted(
            access
            for generic_object in objects
            for access in generic_object.blocked_accesses(
                state[generic_object.name]
            )
        )
        for access in blocked:
            top = TransactionName(access.path[:1])
            abort = Abort(top)
            if controller.enabled(state[controller.name], abort):
                return abort
        return None

    # Per-component caches of enabled outputs: a component's enabledness
    # depends only on its own state, which changes only when an action in
    # its signature is applied — so after each step only the components
    # sharing that action need re-querying.  Enumeration order (component
    # order, then each component's own order) is preserved exactly, so
    # seeded runs are identical to the uncached driver.
    output_cache = {
        component.name: list(component.enabled_outputs(state[component.name]))
        for component in system.components
    }

    while stats.steps < max_steps:
        enabled: List[Action] = []
        seen = set()
        for component in system.components:
            for action in output_cache[component.name]:
                if action not in seen:
                    seen.add(action)
                    enabled.append(action)
        offer = getattr(policy, "offer_aborts", None)
        if offer is not None:
            aborts = [
                abort
                for abort in controller.enabled_aborts(state[controller.name])
                if abort not in seen
            ]
            offer(aborts)
        choice = policy.choose(enabled)
        if hooks is not None:
            hooks.on_policy_choice(enabled, choice)
        if choice is None:
            if resolve_deadlocks and not enabled:
                victim = pick_deadlock_victim()
                if victim is not None:
                    choice = victim
                    stats.deadlock_aborts += 1
                    if hooks is not None:
                        hooks.on_deadlock_abort(victim.transaction)
            if choice is None:
                stats.quiescent = not enabled
                if hooks is not None and stats.quiescent:
                    hooks.on_quiescence(stats.steps)
                break
        state = system.effect(state, choice)
        for component in system.components:
            if component.is_action(choice):
                output_cache[component.name] = list(
                    component.enabled_outputs(state[component.name])
                )
        trace.append(choice)
        policy.observe(choice)
        if hooks is not None:
            hooks.on_step(stats.steps, choice)
        stats.steps += 1
        stats.count(type(choice).__name__)
        if isinstance(choice, Commit):
            stats.committed += 1
            if choice.transaction.depth == 1:
                stats.top_level_committed += 1
        elif isinstance(choice, Abort):
            stats.aborted += 1
        elif isinstance(choice, RequestCommit) and system_type.is_access(
            choice.transaction
        ):
            stats.accesses_answered += 1
        if collect_blocking:
            for generic_object in objects:
                stats.blocked_access_steps += sum(
                    1 for _ in generic_object.blocked_accesses(state[generic_object.name])
                )
    return RunResult(tuple(trace), stats, state)
