"""Post-run trace analysis: per-transaction summaries and latency metrics.

Turns a recorded behavior into the operational questions an engineer
asks of a run: which transactions committed, how long each was live
(in events — the simulation's clock), how long accesses waited to be
answered, and the shape of the transaction tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    RequestCommit,
    RequestCreate,
)
from ..core.names import SystemType, TransactionName

__all__ = ["TransactionSummary", "TraceAnalysis", "analyze_trace"]


@dataclass
class TransactionSummary:
    """Lifecycle positions (event indices) of one transaction."""

    transaction: TransactionName
    requested_at: Optional[int] = None
    created_at: Optional[int] = None
    responded_at: Optional[int] = None  # accesses only
    completed_at: Optional[int] = None
    outcome: str = "incomplete"  # committed | aborted | incomplete
    is_access: bool = False

    @property
    def lifetime(self) -> Optional[int]:
        """Events between creation request and completion, if both exist."""
        if self.requested_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.requested_at

    @property
    def response_latency(self) -> Optional[int]:
        """Events between an access's CREATE and its response."""
        if self.created_at is None or self.responded_at is None:
            return None
        return self.responded_at - self.created_at


@dataclass
class TraceAnalysis:
    """Aggregated view of one run's behavior."""

    transactions: Dict[TransactionName, TransactionSummary]

    def committed(self) -> List[TransactionSummary]:
        return [s for s in self.transactions.values() if s.outcome == "committed"]

    def aborted(self) -> List[TransactionSummary]:
        return [s for s in self.transactions.values() if s.outcome == "aborted"]

    def accesses(self) -> List[TransactionSummary]:
        return [s for s in self.transactions.values() if s.is_access]

    def children_of(self, parent: TransactionName) -> List[TransactionSummary]:
        return sorted(
            (
                s
                for s in self.transactions.values()
                if not s.transaction.is_root and s.transaction.parent == parent
            ),
            key=lambda s: s.transaction,
        )

    def mean_access_latency(self) -> Optional[float]:
        latencies = [
            s.response_latency
            for s in self.accesses()
            if s.response_latency is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    def mean_commit_lifetime(self) -> Optional[float]:
        lifetimes = [
            s.lifetime for s in self.committed() if s.lifetime is not None
        ]
        if not lifetimes:
            return None
        return sum(lifetimes) / len(lifetimes)

    def tree_lines(self, root: TransactionName, indent: str = "") -> List[str]:
        """Render the subtree under ``root`` as indented text lines."""
        lines: List[str] = []
        for summary in self.children_of(root):
            label = summary.transaction.path[-1]
            extra = ""
            if summary.is_access and summary.response_latency is not None:
                extra = f" (answered after {summary.response_latency} events)"
            lines.append(f"{indent}{label}: {summary.outcome}{extra}")
            lines.extend(self.tree_lines(summary.transaction, indent + "  "))
        return lines


def analyze_trace(
    behavior: Sequence[Action], system_type: SystemType
) -> TraceAnalysis:
    """Build a :class:`TraceAnalysis` from a behavior."""
    summaries: Dict[TransactionName, TransactionSummary] = {}

    def summary(transaction: TransactionName) -> TransactionSummary:
        if transaction not in summaries:
            summaries[transaction] = TransactionSummary(
                transaction, is_access=system_type.is_access(transaction)
            )
        return summaries[transaction]

    for position, action in enumerate(behavior):
        if isinstance(action, RequestCreate):
            entry = summary(action.transaction)
            if entry.requested_at is None:
                entry.requested_at = position
        elif isinstance(action, Create):
            entry = summary(action.transaction)
            if entry.created_at is None:
                entry.created_at = position
        elif isinstance(action, RequestCommit) and system_type.is_access(
            action.transaction
        ):
            entry = summary(action.transaction)
            if entry.responded_at is None:
                entry.responded_at = position
        elif isinstance(action, Commit):
            entry = summary(action.transaction)
            if entry.completed_at is None:
                entry.completed_at = position
                entry.outcome = "committed"
        elif isinstance(action, Abort):
            entry = summary(action.transaction)
            if entry.completed_at is None:
                entry.completed_at = position
                entry.outcome = "aborted"
    return TraceAnalysis(summaries)
