"""Random nested-transaction workload generation.

Produces reproducible random transaction forests over a configurable set
of objects.  Object behaviour is abstracted by :class:`ObjectKind`: the
kind supplies the serial specification and samples operations, so the
same generator drives the read/write experiments (E1/E2) and the
arbitrary-data-type experiments (E3/E7).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from ..core.names import ObjectName, SystemType, TransactionName
from ..core.rw_semantics import ReadOp, RWSpec, WriteOp
from ..spec.builtin import (
    BalanceRead,
    MapGet,
    MapPut,
    MapRemove,
    MapType,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Dequeue,
    Enqueue,
    QueueType,
    RegisterType,
    RegRead,
    RegWrite,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Deposit,
    Withdraw,
)
from .programs import (
    AccessCall,
    SubtransactionCall,
    TransactionProgram,
    system_type_for,
)

__all__ = [
    "ObjectKind",
    "RWKind",
    "RegisterKind",
    "CounterKind",
    "SetKind",
    "BankAccountKind",
    "QueueKind",
    "MapKind",
    "WorkloadConfig",
    "generate_program_set",
    "generate_workload",
]


class ObjectKind(ABC):
    """A family of objects: how to build their spec and sample operations."""

    @abstractmethod
    def make_spec(self, rng: random.Random) -> Any: ...

    @abstractmethod
    def sample_op(self, rng: random.Random) -> Any: ...


@dataclass
class RWKind(ObjectKind):
    """Classical read/write objects (``RWSpec``, Moss-compatible)."""

    write_probability: float = 0.5
    value_range: int = 10
    initial: int = 0

    def make_spec(self, rng: random.Random) -> RWSpec:
        return RWSpec(initial=self.initial)

    def sample_op(self, rng: random.Random) -> Any:
        if rng.random() < self.write_probability:
            return WriteOp(rng.randrange(self.value_range))
        return ReadOp()


@dataclass
class RegisterKind(ObjectKind):
    """Registers with the exact commutativity relation (for undo logging)."""

    write_probability: float = 0.5
    value_range: int = 10
    initial: int = 0

    def make_spec(self, rng: random.Random) -> RegisterType:
        return RegisterType(initial=self.initial)

    def sample_op(self, rng: random.Random) -> Any:
        if rng.random() < self.write_probability:
            return RegWrite(rng.randrange(self.value_range))
        return RegRead()


@dataclass
class CounterKind(ObjectKind):
    """Counters: mostly commuting increments, occasional reads."""

    read_probability: float = 0.2
    max_amount: int = 5
    initial: int = 0

    def make_spec(self, rng: random.Random) -> CounterType:
        return CounterType(initial=self.initial)

    def sample_op(self, rng: random.Random) -> Any:
        if rng.random() < self.read_probability:
            return CounterRead()
        return CounterInc(rng.randint(1, self.max_amount))


@dataclass
class SetKind(ObjectKind):
    """Sets over a small element domain."""

    domain: int = 6
    member_probability: float = 0.25
    remove_probability: float = 0.25

    def make_spec(self, rng: random.Random) -> SetType:
        return SetType()

    def sample_op(self, rng: random.Random) -> Any:
        element = rng.randrange(self.domain)
        roll = rng.random()
        if roll < self.member_probability:
            return SetMember(element)
        if roll < self.member_probability + self.remove_probability:
            return SetRemove(element)
        return SetInsert(element)


@dataclass
class BankAccountKind(ObjectKind):
    """Bank accounts: deposits, withdrawals and balance reads."""

    initial: int = 100
    max_amount: int = 20
    read_probability: float = 0.2
    withdraw_probability: float = 0.4

    def make_spec(self, rng: random.Random) -> BankAccountType:
        return BankAccountType(initial=self.initial)

    def sample_op(self, rng: random.Random) -> Any:
        roll = rng.random()
        if roll < self.read_probability:
            return BalanceRead()
        if roll < self.read_probability + self.withdraw_probability:
            return Withdraw(rng.randint(1, self.max_amount))
        return Deposit(rng.randint(1, self.max_amount))


@dataclass
class QueueKind(ObjectKind):
    """FIFO queues: enqueues and dequeues."""

    domain: int = 8
    dequeue_probability: float = 0.4

    def make_spec(self, rng: random.Random) -> QueueType:
        return QueueType()

    def sample_op(self, rng: random.Random) -> Any:
        if rng.random() < self.dequeue_probability:
            return Dequeue()
        return Enqueue(rng.randrange(self.domain))


@dataclass
class MapKind(ObjectKind):
    """Key/value maps: distinct keys commute; per key like a register."""

    keys: int = 4
    value_range: int = 5
    get_probability: float = 0.3
    remove_probability: float = 0.15

    def make_spec(self, rng: random.Random) -> MapType:
        return MapType()

    def sample_op(self, rng: random.Random) -> Any:
        key = f"k{rng.randrange(self.keys)}"
        roll = rng.random()
        if roll < self.get_probability:
            return MapGet(key)
        if roll < self.get_probability + self.remove_probability:
            return MapRemove(key)
        return MapPut(key, rng.randrange(self.value_range))


@dataclass
class WorkloadConfig:
    """Parameters of a random nested workload."""

    objects: int = 4
    top_level: int = 6
    max_depth: int = 2
    max_calls: int = 3
    subtransaction_probability: float = 0.3
    sequential_probability: float = 0.5
    kind: ObjectKind = None  # type: ignore[assignment]
    seed: int = 0
    hot_object_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is None:
            self.kind = RWKind()
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if not 0.0 <= self.hot_object_bias <= 1.0:
            raise ValueError("hot_object_bias must be a probability")


def _sample_object(config: WorkloadConfig, rng: random.Random) -> ObjectName:
    if config.hot_object_bias and rng.random() < config.hot_object_bias:
        return ObjectName("X0")
    return ObjectName(f"X{rng.randrange(config.objects)}")


def _generate_program(
    config: WorkloadConfig, rng: random.Random, depth: int
) -> TransactionProgram:
    call_count = rng.randint(1, config.max_calls)
    calls = []
    for position in range(call_count):
        nest = (
            depth < config.max_depth
            and rng.random() < config.subtransaction_probability
        )
        if nest:
            calls.append(
                SubtransactionCall(
                    f"s{position}", _generate_program(config, rng, depth + 1)
                )
            )
        else:
            obj = _sample_object(config, rng)
            calls.append(AccessCall(f"a{position}", obj, config.kind.sample_op(rng)))
    sequential = rng.random() < config.sequential_probability
    return TransactionProgram(tuple(calls), sequential=sequential)


def generate_program_set(
    config: WorkloadConfig,
) -> Tuple[Dict[ObjectName, Any], Dict[TransactionName, TransactionProgram]]:
    """Generate ``(objects, programs)`` from ``config``.

    Deterministic in ``config.seed``.  The returned program map has a
    single entry for the root ``T0``: a parallel program spawning the
    top-level transactions ``t0 .. t{n-1}`` (the paper's classical
    transactions), each a randomly generated nested program.  This is
    the raw template form the static robustness analyzer consumes
    (:func:`repro.analysis.robustness.analyze_robustness`); use
    :func:`generate_workload` when a registered :class:`SystemType` is
    needed instead.
    """
    rng = random.Random(config.seed)
    objects: Dict[ObjectName, Any] = {
        ObjectName(f"X{i}"): config.kind.make_spec(rng) for i in range(config.objects)
    }
    top_level = tuple(
        SubtransactionCall(f"t{i}", _generate_program(config, rng, depth=1))
        for i in range(config.top_level)
    )
    root_program = TransactionProgram(top_level, sequential=False)
    programs = {TransactionName(()): root_program}
    return objects, programs


def generate_workload(
    config: WorkloadConfig,
) -> Tuple[SystemType, Dict[TransactionName, TransactionProgram]]:
    """Generate ``(system_type, programs)`` from ``config``.

    The registered form of :func:`generate_program_set`: pass both
    results straight to :func:`repro.generic.system.make_generic_system`.
    """
    objects, programs = generate_program_set(config)
    return system_type_for(objects, programs), programs
