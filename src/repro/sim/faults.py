"""Fault injection: abort storms for the recovery experiments (E8).

The generic controller may abort any requested, uncompleted transaction
at any time.  :class:`AbortInjector` wraps a base scheduling policy and,
with a configured probability per step, injects one of the currently
enabled ABORT actions instead of the base policy's choice.  Victims can
be filtered (e.g. only subtransactions, never top-level ones).
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from ..core.actions import Abort, Action
from ..core.names import TransactionName
from .policies import SchedulingPolicy

__all__ = ["AbortInjector"]


class AbortInjector(SchedulingPolicy):
    """Inject ABORTs with probability ``abort_rate`` per scheduling step."""

    def __init__(
        self,
        base: SchedulingPolicy,
        abort_rate: float,
        seed: int = 0,
        victim_filter: Optional[Callable[[TransactionName], bool]] = None,
        max_aborts: Optional[int] = None,
    ) -> None:
        if not 0.0 <= abort_rate <= 1.0:
            raise ValueError("abort_rate must be a probability")
        self.base = base
        self.abort_rate = abort_rate
        self.rng = random.Random(seed)
        self.victim_filter = victim_filter
        self.max_aborts = max_aborts
        self.aborts_injected = 0
        self._pending_aborts: Sequence[Abort] = ()

    def offer_aborts(self, aborts: Sequence[Abort]) -> None:
        """Called by the driver with the currently enabled abort actions."""
        self._pending_aborts = aborts

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        candidates = [
            abort
            for abort in self._pending_aborts
            if self.victim_filter is None or self.victim_filter(abort.transaction)
        ]
        budget_left = self.max_aborts is None or self.aborts_injected < self.max_aborts
        if candidates and budget_left and self.rng.random() < self.abort_rate:
            self.aborts_injected += 1
            return self.rng.choice(candidates)
        return self.base.choose(enabled)
