"""Fault injection: abort storms, scripted fates, and site failures.

The generic controller may abort any requested, uncompleted transaction
at any time.  :class:`AbortInjector` wraps a base scheduling policy and,
with a configured probability per step, injects one of the currently
enabled ABORT actions instead of the base policy's choice.  Victims can
be filtered (e.g. only subtransactions, never top-level ones).

Two additions serve the distributed layer (:mod:`repro.distributed`):

* :class:`SiteCrash` / :class:`SiteRecovery` are the timed whole-site
  fault events of a multi-site cluster schedule.  A crash dooms every
  transaction that accessed the site before completing; a recovery
  brings the site back subject to the recovery-time write barrier on
  replicated variables.
* :class:`ScriptedAbortInjector` realises such pre-decided fates inside
  a (site-local) simulated run: unlike :class:`AbortInjector`'s random
  storms, its victim set is fixed up front, and the abort always wins a
  race against the victim's own COMMIT — a transaction doomed by a site
  crash can never slip through to a commit at that site, which is what
  keeps cross-site outcomes atomic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional, Sequence

from ..core.actions import Abort, Action, Commit
from ..core.names import TransactionName
from .policies import SchedulingPolicy

__all__ = [
    "AbortInjector",
    "ScriptedAbortInjector",
    "SiteCrash",
    "SiteRecovery",
]


@dataclass(frozen=True, order=True)
class SiteCrash:
    """A whole-site failure at a scheduled routing step.

    Interpreted by :func:`repro.distributed.route_workload`: the site
    stops serving reads and writes, every transaction that touched it
    without completing is doomed, and its replicated variables arm the
    recovery-time write barrier.
    """

    site: int
    at_step: int


@dataclass(frozen=True, order=True)
class SiteRecovery:
    """A site coming back up at a scheduled routing step.

    Non-replicated variables at the site are readable immediately (the
    single copy cannot be stale); replicated variables stay unreadable
    until a fresh write lands — the recovery-time write barrier.
    """

    site: int
    at_step: int


class AbortInjector(SchedulingPolicy):
    """Inject ABORTs with probability ``abort_rate`` per scheduling step."""

    def __init__(
        self,
        base: SchedulingPolicy,
        abort_rate: float,
        seed: int = 0,
        victim_filter: Optional[Callable[[TransactionName], bool]] = None,
        max_aborts: Optional[int] = None,
    ) -> None:
        if not 0.0 <= abort_rate <= 1.0:
            raise ValueError("abort_rate must be a probability")
        self.base = base
        self.abort_rate = abort_rate
        self.rng = random.Random(seed)
        self.victim_filter = victim_filter
        self.max_aborts = max_aborts
        self.aborts_injected = 0
        self._pending_aborts: Sequence[Abort] = ()

    def offer_aborts(self, aborts: Sequence[Abort]) -> None:
        """Called by the driver with the currently enabled abort actions."""
        self._pending_aborts = aborts

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        candidates = [
            abort
            for abort in self._pending_aborts
            if self.victim_filter is None or self.victim_filter(abort.transaction)
        ]
        budget_left = self.max_aborts is None or self.aborts_injected < self.max_aborts
        if candidates and budget_left and self.rng.random() < self.abort_rate:
            self.aborts_injected += 1
            return self.rng.choice(candidates)
        return self.base.choose(enabled)


class ScriptedAbortInjector(SchedulingPolicy):
    """Abort a pre-decided victim set, always beating the victims' commits.

    ``victims`` are transaction names whose fate has been decided outside
    the run — in :mod:`repro.distributed`, the transactions doomed by a
    site crash or an unreachable replica.  Each scheduling step, if any
    victim's ABORT is currently enabled, it is injected with probability
    ``inject_rate`` (default: immediately); independent of the rate, the
    abort *always* fires before a step that could COMMIT a victim, and
    victim commits are stripped from the choices offered to the base
    policy — a scripted fate is never lost to a scheduling race, even
    when the victim's REQUEST_COMMIT is already in flight.
    """

    def __init__(
        self,
        base: SchedulingPolicy,
        victims: Iterable[TransactionName],
        seed: int = 0,
        inject_rate: float = 1.0,
    ) -> None:
        if not 0.0 < inject_rate <= 1.0:
            raise ValueError("inject_rate must be in (0, 1]")
        self.base = base
        self.victims: FrozenSet[TransactionName] = frozenset(victims)
        self.rng = random.Random(seed)
        self.inject_rate = inject_rate
        self.aborts_injected = 0
        self._pending_aborts: Sequence[Abort] = ()

    def offer_aborts(self, aborts: Sequence[Abort]) -> None:
        """Called by the driver with the currently enabled abort actions."""
        self._pending_aborts = aborts

    def observe(self, action: Action) -> None:
        self.base.observe(action)

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        candidates = [
            abort
            for abort in self._pending_aborts
            if abort.transaction in self.victims
        ]
        if candidates:
            commit_imminent = any(
                isinstance(action, Commit) and action.transaction in self.victims
                for action in enabled
            )
            if commit_imminent or self.rng.random() < self.inject_rate:
                self.aborts_injected += 1
                return self.rng.choice(candidates)
        safe = [
            action
            for action in enabled
            if not (
                isinstance(action, Commit) and action.transaction in self.victims
            )
        ]
        return self.base.choose(safe)
