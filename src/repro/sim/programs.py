"""Transaction programs: the code run by non-access transaction automata.

The paper treats transactions as black-box I/O automata constrained only
by well-formedness.  For simulation we need concrete transactions, so
this module provides a small declarative DSL: a
:class:`TransactionProgram` lists *calls* — accesses to objects or
nested subtransactions — executed either sequentially (each call is
requested only after the previous one reported, which gives rise to the
paper's ``precedes`` edges) or in parallel (all requested up front,
modelling the "several simultaneous remote procedure calls" of the
introduction).

:class:`ProgramTransaction` interprets a program as a transaction
automaton preserving transaction well-formedness; :func:`system_type_for`
derives the system-type fragment (the access registry) that a set of
top-level programs induces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple, Union

from ..automata.base import IOAutomaton
from ..core.actions import (
    Action,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import Access, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import ReadOp, WriteOp

__all__ = [
    "AccessCall",
    "SubtransactionCall",
    "TransactionProgram",
    "ProgramTransaction",
    "ProgramState",
    "system_type_for",
    "collect_programs",
    "read",
    "write",
    "op",
    "sub",
    "access_sequence",
    "seq",
    "par",
]


@dataclass(frozen=True)
class AccessCall:
    """A call that invokes an access (leaf) on ``obj`` with operation ``op``.

    With ``after_abort_of`` set, the call is an *alternative*: it is
    issued only if the named earlier call aborts — the "retry a failed
    subtransaction" pattern the paper's introduction motivates.
    """

    component: str
    obj: ObjectName
    op: Any
    after_abort_of: Optional[str] = None


@dataclass(frozen=True)
class SubtransactionCall:
    """A call that invokes a nested subtransaction running ``program``.

    ``after_abort_of`` marks the call as an alternative (see
    :class:`AccessCall`).
    """

    component: str
    program: "TransactionProgram"
    after_abort_of: Optional[str] = None


Call = Union[AccessCall, SubtransactionCall]


@dataclass(frozen=True)
class TransactionProgram:
    """A transaction body: an ordered tuple of calls plus a return value.

    ``sequential`` controls whether each call waits for the previous
    call's report.  ``result`` is either a hashable constant, or a
    callable mapping the dict ``{component: outcome}`` (outcome is
    ``("commit", value)`` or ``("abort",)``) to a hashable value.
    """

    calls: Tuple[Call, ...] = ()
    sequential: bool = True
    result: Any = "ok"

    def __post_init__(self) -> None:
        components = [call.component for call in self.calls]
        if len(set(components)) != len(components):
            raise ValueError(f"duplicate call components: {components}")
        seen = set()
        for call in self.calls:
            if call.after_abort_of is not None:
                if call.after_abort_of not in seen:
                    raise ValueError(
                        f"alternative {call.component!r} must follow its "
                        f"trigger {call.after_abort_of!r}"
                    )
            seen.add(call.component)

    def call(self, component: str) -> Call:
        for candidate in self.calls:
            if candidate.component == component:
                return candidate
        raise KeyError(component)

    def result_value(self, outcomes: Mapping[str, Tuple[Any, ...]]) -> Any:
        if callable(self.result):
            return self.result(dict(outcomes))
        return self.result


# -- DSL helpers -------------------------------------------------------------


def read(obj: ObjectName, component: Optional[str] = None) -> AccessCall:
    """An access call reading ``obj``."""
    return AccessCall(component or f"read_{obj.name}", obj, ReadOp())


def write(obj: ObjectName, data: Any, component: Optional[str] = None) -> AccessCall:
    """An access call writing ``data`` to ``obj``."""
    return AccessCall(component or f"write_{obj.name}", obj, WriteOp(data))


def op(obj: ObjectName, operation: Any, component: Optional[str] = None) -> AccessCall:
    """An access call performing an arbitrary typed operation on ``obj``."""
    return AccessCall(component or f"op_{obj.name}", obj, operation)


def sub(program: TransactionProgram, component: str) -> SubtransactionCall:
    """A nested subtransaction call."""
    return SubtransactionCall(component, program)


def access_sequence(
    accesses: Sequence[Tuple[str, ObjectName, Any]], result: Any = "ok"
) -> TransactionProgram:
    """A sequential program of bare access calls ``(component, obj, op)``.

    The site-local projection of a distributed transaction is exactly
    this shape — the accesses it routed to one site, in issue order —
    so :mod:`repro.distributed` assembles per-site programs with it.
    """
    return TransactionProgram(
        tuple(AccessCall(component, obj, op) for component, obj, op in accesses),
        sequential=True,
        result=result,
    )


def _number_components(calls: Tuple[Call, ...]) -> Tuple[Call, ...]:
    seen: Dict[str, int] = {}
    renamed = []
    for call in calls:
        count = seen.get(call.component, 0)
        seen[call.component] = count + 1
        if count:
            renamed.append(replace(call, component=f"{call.component}_{count}"))
        else:
            renamed.append(call)
    return tuple(renamed)


def seq(*calls: Call, result: Any = "ok") -> TransactionProgram:
    """A sequential program; duplicate component names are suffixed."""
    return TransactionProgram(_number_components(tuple(calls)), True, result)


def par(*calls: Call, result: Any = "ok") -> TransactionProgram:
    """A parallel program; duplicate component names are suffixed."""
    return TransactionProgram(_number_components(tuple(calls)), False, result)


# -- system type derivation -------------------------------------------------


def _register_accesses(
    system_type: SystemType, name: TransactionName, program: TransactionProgram
) -> None:
    for call in program.calls:
        child = name.child(call.component)
        if isinstance(call, AccessCall):
            system_type.register_access(child, Access(call.obj, call.op))
        else:
            _register_accesses(system_type, child, call.program)


def system_type_for(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
) -> SystemType:
    """Build the system type induced by top-level programs over ``objects``."""
    system_type = SystemType(objects)
    for name, program in programs.items():
        _register_accesses(system_type, name, program)
    return system_type


def collect_programs(
    programs: Mapping[TransactionName, TransactionProgram]
) -> Dict[TransactionName, TransactionProgram]:
    """Flatten nested programs into ``{transaction name: program}``.

    The result has an entry for every *non-access* transaction below the
    given top-level names; the driver builds one
    :class:`ProgramTransaction` per entry.
    """
    flat: Dict[TransactionName, TransactionProgram] = {}

    def walk(name: TransactionName, program: TransactionProgram) -> None:
        flat[name] = program
        for call in program.calls:
            if isinstance(call, SubtransactionCall):
                walk(name.child(call.component), call.program)

    for name, program in programs.items():
        walk(name, program)
    return flat


# -- the transaction automaton ------------------------------------------------


@dataclass(frozen=True)
class ProgramState:
    """State of a program transaction: progress through its calls."""

    created: bool = False
    requested: FrozenSet[str] = frozenset()
    outcomes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    commit_requested: bool = False

    def outcome_map(self) -> Dict[str, Tuple[Any, ...]]:
        return dict(self.outcomes)


class ProgramTransaction(IOAutomaton):
    """The transaction automaton ``A_T`` interpreting a program.

    Root transactions (``T0``) are modelled with ``created=True`` from
    the start and never request commit; every other transaction follows
    transaction well-formedness: it acts only after ``CREATE``, requests
    each child at most once (respecting sequencing), and requests commit
    only after all its calls have reported.
    """

    def __init__(self, name: TransactionName, program: TransactionProgram) -> None:
        self.transaction = name
        self.program = program
        self.name = f"A_{name}"

    # -- signature ---------------------------------------------------------

    def _is_my_child(self, other: TransactionName) -> bool:
        return (
            not other.is_root
            and other.parent == self.transaction
            and any(call.component == other.path[-1] for call in self.program.calls)
        )

    def is_input(self, action: Action) -> bool:
        if isinstance(action, Create):
            return action.transaction == self.transaction
        if isinstance(action, (ReportCommit, ReportAbort)):
            return self._is_my_child(action.transaction)
        return False

    def is_output(self, action: Action) -> bool:
        if isinstance(action, RequestCreate):
            return self._is_my_child(action.transaction)
        if isinstance(action, RequestCommit):
            return action.transaction == self.transaction
        return False

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> ProgramState:
        return ProgramState(created=self.transaction.is_root)

    @staticmethod
    def _activation(call: Call, outcomes: Dict[str, Tuple[Any, ...]]) -> str:
        """An alternative call's status: 'active', 'inactive' or 'unresolved'.

        Non-alternative calls are always active.  An alternative is
        active once its trigger aborted, inactive once the trigger
        committed, and unresolved while the trigger has no outcome.
        """
        if call.after_abort_of is None:
            return "active"
        trigger = outcomes.get(call.after_abort_of)
        if trigger is None:
            return "unresolved"
        return "active" if trigger[0] == "abort" else "inactive"

    def _may_request(self, state: ProgramState, component: str) -> bool:
        if not state.created or state.commit_requested:
            return False
        if component in state.requested:
            return False
        outcomes = state.outcome_map()
        for call in self.program.calls:
            status = self._activation(call, outcomes)
            if call.component == component:
                return status == "active"
            if not self.program.sequential:
                continue
            # sequential: every earlier call must be resolved — an
            # outcome for active calls, a committed trigger for
            # inactive alternatives; unresolved alternatives block
            if status == "unresolved":
                return False
            if status == "active" and call.component not in outcomes:
                return False
        return False

    def _ready_to_commit(self, state: ProgramState) -> bool:
        if not state.created or state.commit_requested or self.transaction.is_root:
            return False
        outcomes = state.outcome_map()
        for call in self.program.calls:
            status = self._activation(call, outcomes)
            if status == "unresolved":
                return False
            if status == "active" and call.component not in outcomes:
                return False
        return True

    def enabled(self, state: ProgramState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCreate):
            return self._may_request(state, action.transaction.path[-1])
        if isinstance(action, RequestCommit):
            return (
                self._ready_to_commit(state)
                and action.value == self.program.result_value(state.outcome_map())
            )
        return False

    def effect(self, state: ProgramState, action: Action) -> ProgramState:
        if isinstance(action, Create):
            return replace(state, created=True)
        if isinstance(action, ReportCommit):
            component = action.transaction.path[-1]
            if component in state.outcome_map():
                return state
            return replace(
                state,
                outcomes=state.outcomes + ((component, ("commit", action.value)),),
            )
        if isinstance(action, ReportAbort):
            component = action.transaction.path[-1]
            if component in state.outcome_map():
                return state
            return replace(
                state, outcomes=state.outcomes + ((component, ("abort",)),)
            )
        if isinstance(action, RequestCreate):
            component = action.transaction.path[-1]
            return replace(state, requested=state.requested | {component})
        if isinstance(action, RequestCommit):
            return replace(state, commit_requested=True)
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: ProgramState) -> Iterator[Action]:
        for call in self.program.calls:
            if self._may_request(state, call.component):
                yield RequestCreate(self.transaction.child(call.component))
        if self._ready_to_commit(state):
            yield RequestCommit(
                self.transaction, self.program.result_value(state.outcome_map())
            )
