"""Simulation substrate: programs, workloads, driver, policies, faults."""

from .analysis import TraceAnalysis, TransactionSummary, analyze_trace
from .driver import RunResult, run_system
from .faults import AbortInjector
from .policies import (
    EagerInformPolicy,
    OrphanFreePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
)
from .programs import (
    AccessCall,
    ProgramTransaction,
    SubtransactionCall,
    TransactionProgram,
    collect_programs,
    op,
    par,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from .stats import RunStats
from .workload import (
    BankAccountKind,
    MapKind,
    CounterKind,
    ObjectKind,
    QueueKind,
    RegisterKind,
    RWKind,
    SetKind,
    WorkloadConfig,
    generate_workload,
)

__all__ = [name for name in dir() if not name.startswith("_")]
