"""Run statistics collected by the simulation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Counters describing one simulated run of a generic system."""

    steps: int = 0
    action_counts: Dict[str, int] = field(default_factory=dict)
    committed: int = 0
    aborted: int = 0
    top_level_committed: int = 0
    accesses_answered: int = 0
    blocked_access_steps: int = 0
    deadlock_aborts: int = 0
    quiescent: bool = False

    def count(self, kind: str) -> None:
        self.action_counts[kind] = self.action_counts.get(kind, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        """All counters as a JSON-serializable dict (``--stats-json``)."""
        return {
            "steps": self.steps,
            "action_counts": dict(self.action_counts),
            "committed": self.committed,
            "aborted": self.aborted,
            "top_level_committed": self.top_level_committed,
            "accesses_answered": self.accesses_answered,
            "blocked_access_steps": self.blocked_access_steps,
            "deadlock_aborts": self.deadlock_aborts,
            "quiescent": self.quiescent,
        }

    def summary(self) -> str:
        return (
            f"steps={self.steps} committed={self.committed} aborted={self.aborted} "
            f"top_level_committed={self.top_level_committed} "
            f"accesses={self.accesses_answered} "
            f"blocked_access_steps={self.blocked_access_steps} "
            f"deadlock_aborts={self.deadlock_aborts} "
            f"quiescent={self.quiescent}"
        )
