"""Canonical behaviors: the textbook anomalies and boundary cases.

Hand-built simple behaviors for the situations the theory talks about,
usable as test fixtures, documentation, and CLI demonstrations:

* ``serial``            — a trivially serial two-transaction behavior;
* ``lost-update``       — racing read-modify-writes (SG cycle, genuinely
  incorrect);
* ``dirty-read``        — a committed reader of an aborted writer's value
  (ARV violation, genuinely incorrect);
* ``write-skew``        — crossed read/write pairs on two objects
  (SG cycle, genuinely incorrect);
* ``blind-writes``      — opposite-order blind writes (SG cycle but
  serially correct: the sufficiency gap of Theorem 8);
* ``mvto-stale-read``   — a low-timestamp reader of an old version
  (ARV failure against event order but serially correct: the
  multiversion boundary).

Each scenario returns ``(behavior, system_type, expectation)`` where
``expectation`` records the ground truth and the predicted certifier
verdict — asserted in the test suite and printed by
``python -m repro scenarios``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .core.actions import (
    Abort,
    Behavior,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from .core.names import Access, ObjectName, SystemType, TransactionName
from .core.rw_semantics import OK, ReadOp, RWSpec, WriteOp

__all__ = ["Expectation", "SCENARIOS", "build_scenario", "scenario_names"]


@dataclass(frozen=True)
class Expectation:
    """Ground truth and predicted verdicts for a scenario."""

    serially_correct: bool
    certified: bool
    reason: str


class _Builder:
    def __init__(self, objects: Dict[str, int]) -> None:
        self.system_type = SystemType(
            {ObjectName(name): RWSpec(initial=value) for name, value in objects.items()}
        )
        self.events: List = []

    def begin(self, name: str) -> TransactionName:
        txn = TransactionName((name,))
        self.events += [RequestCreate(txn), Create(txn)]
        return txn

    def access(self, parent, comp, obj, operation, value, commit=True):
        leaf = parent.child(comp)
        self.system_type.register_access(leaf, Access(ObjectName(obj), operation))
        self.events += [
            RequestCreate(leaf),
            Create(leaf),
            RequestCommit(leaf, value),
        ]
        if commit:
            self.events += [Commit(leaf), ReportCommit(leaf, value)]
        return leaf

    def commit(self, txn, value="done"):
        self.events += [
            RequestCommit(txn, value),
            Commit(txn),
            ReportCommit(txn, value),
        ]

    def abort(self, txn):
        self.events += [Abort(txn), ReportAbort(txn)]

    def done(self) -> Tuple[Behavior, SystemType]:
        return tuple(self.events), self.system_type


def _serial() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1 = b.begin("t1")
    b.access(t1, "w", "x", WriteOp(7), OK)
    b.commit(t1)
    t2 = b.begin("t2")
    b.access(t2, "r", "x", ReadOp(), 7)
    b.commit(t2)
    return b.done()


def _lost_update() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "r", "x", ReadOp(), 0)
    b.access(t2, "r", "x", ReadOp(), 0)
    b.access(t1, "w", "x", WriteOp(1), OK)
    b.access(t2, "w", "x", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _dirty_read() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "w", "x", WriteOp(5), OK)
    b.access(t2, "r", "x", ReadOp(), 5)
    b.commit(t2)
    b.abort(t1)
    return b.done()


def _write_skew() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0, "y": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "rx", "x", ReadOp(), 0)
    b.access(t2, "ry", "y", ReadOp(), 0)
    b.access(t1, "wy", "y", WriteOp(1), OK)
    b.access(t2, "wx", "x", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _blind_writes() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0, "y": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "wx", "x", WriteOp(1), OK)
    b.access(t2, "wx", "x", WriteOp(2), OK)
    b.access(t2, "wy", "y", WriteOp(2), OK)
    b.access(t1, "wy", "y", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _mvto_stale_read() -> Tuple[Behavior, SystemType]:
    # timestamp order is t0 < t1, but t1's write happens (and commits)
    # before t0's read — multiversion behavior, correct in ts order
    b = _Builder({"x": 0})
    t0, t1 = b.begin("t0"), b.begin("t1")
    b.access(t1, "w", "x", WriteOp(9), OK)
    b.commit(t1)
    b.access(t0, "r", "x", ReadOp(), 0)
    b.commit(t0)
    return b.done()


SCENARIOS: Dict[str, Tuple[Callable[[], Tuple[Behavior, SystemType]], Expectation]] = {
    "serial": (
        _serial,
        Expectation(True, True, "a serial execution certifies trivially"),
    ),
    "lost-update": (
        _lost_update,
        Expectation(False, False, "racing read-modify-writes form an SG cycle"),
    ),
    "dirty-read": (
        _dirty_read,
        Expectation(
            False, False, "a committed reader saw an aborted writer's value (ARV)"
        ),
    ),
    "write-skew": (
        _write_skew,
        Expectation(False, False, "crossed read/write pairs form an SG cycle"),
    ),
    "blind-writes": (
        _blind_writes,
        Expectation(
            True,
            False,
            "serially correct, yet the SG is cyclic — Theorem 8 is only sufficient",
        ),
    ),
    "mvto-stale-read": (
        _mvto_stale_read,
        Expectation(
            True,
            False,
            "correct in timestamp order, rejected by the single-version test",
        ),
    ),
}


def scenario_names() -> List[str]:
    """The names of all canonical scenarios, in presentation order."""
    return list(SCENARIOS)


def build_scenario(name: str) -> Tuple[Behavior, SystemType, Expectation]:
    """Build a named scenario; raises ``KeyError`` for unknown names."""
    try:
        factory, expectation = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    behavior, system_type = factory()
    return behavior, system_type, expectation
