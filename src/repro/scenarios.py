"""Canonical behaviors: the textbook anomalies and boundary cases.

Hand-built simple behaviors for the situations the theory talks about,
usable as test fixtures, documentation, and CLI demonstrations:

* ``serial``            — a trivially serial two-transaction behavior;
* ``lost-update``       — racing read-modify-writes (SG cycle, genuinely
  incorrect);
* ``dirty-read``        — a committed reader of an aborted writer's value
  (ARV violation, genuinely incorrect);
* ``write-skew``        — crossed read/write pairs on two objects
  (SG cycle, genuinely incorrect);
* ``blind-writes``      — opposite-order blind writes (SG cycle but
  serially correct: the sufficiency gap of Theorem 8);
* ``mvto-stale-read``   — a low-timestamp reader of an old version
  (ARV failure against event order but serially correct: the
  multiversion boundary).

Each scenario returns ``(behavior, system_type, expectation)`` where
``expectation`` records the ground truth and the predicted certifier
verdict — asserted in the test suite and printed by
``python -m repro scenarios``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .core.actions import (
    Abort,
    Behavior,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from .core.names import ROOT, Access, ObjectName, SystemType, TransactionName
from .core.rw_semantics import OK, ReadOp, RWSpec, WriteOp
from .sim.programs import (
    SubtransactionCall,
    TransactionProgram,
    par,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from .spec.builtin import CounterInc, CounterType
from .sim.programs import op as op_call

__all__ = [
    "Expectation",
    "SCENARIOS",
    "build_scenario",
    "scenario_names",
    "RobustnessExpectation",
    "PROGRAM_SCENARIOS",
    "build_program_scenario",
    "program_scenario_names",
    "program_system_type",
]


@dataclass(frozen=True)
class Expectation:
    """Ground truth and predicted verdicts for a scenario."""

    serially_correct: bool
    certified: bool
    reason: str


class _Builder:
    def __init__(self, objects: Dict[str, int]) -> None:
        self.system_type = SystemType(
            {ObjectName(name): RWSpec(initial=value) for name, value in objects.items()}
        )
        self.events: List = []

    def begin(self, name: str) -> TransactionName:
        txn = TransactionName((name,))
        self.events += [RequestCreate(txn), Create(txn)]
        return txn

    def access(self, parent, comp, obj, operation, value, commit=True):
        leaf = parent.child(comp)
        self.system_type.register_access(leaf, Access(ObjectName(obj), operation))
        self.events += [
            RequestCreate(leaf),
            Create(leaf),
            RequestCommit(leaf, value),
        ]
        if commit:
            self.events += [Commit(leaf), ReportCommit(leaf, value)]
        return leaf

    def commit(self, txn, value="done"):
        self.events += [
            RequestCommit(txn, value),
            Commit(txn),
            ReportCommit(txn, value),
        ]

    def abort(self, txn):
        self.events += [Abort(txn), ReportAbort(txn)]

    def done(self) -> Tuple[Behavior, SystemType]:
        return tuple(self.events), self.system_type


def _serial() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1 = b.begin("t1")
    b.access(t1, "w", "x", WriteOp(7), OK)
    b.commit(t1)
    t2 = b.begin("t2")
    b.access(t2, "r", "x", ReadOp(), 7)
    b.commit(t2)
    return b.done()


def _lost_update() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "r", "x", ReadOp(), 0)
    b.access(t2, "r", "x", ReadOp(), 0)
    b.access(t1, "w", "x", WriteOp(1), OK)
    b.access(t2, "w", "x", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _dirty_read() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "w", "x", WriteOp(5), OK)
    b.access(t2, "r", "x", ReadOp(), 5)
    b.commit(t2)
    b.abort(t1)
    return b.done()


def _write_skew() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0, "y": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "rx", "x", ReadOp(), 0)
    b.access(t2, "ry", "y", ReadOp(), 0)
    b.access(t1, "wy", "y", WriteOp(1), OK)
    b.access(t2, "wx", "x", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _blind_writes() -> Tuple[Behavior, SystemType]:
    b = _Builder({"x": 0, "y": 0})
    t1, t2 = b.begin("t1"), b.begin("t2")
    b.access(t1, "wx", "x", WriteOp(1), OK)
    b.access(t2, "wx", "x", WriteOp(2), OK)
    b.access(t2, "wy", "y", WriteOp(2), OK)
    b.access(t1, "wy", "y", WriteOp(1), OK)
    b.commit(t1)
    b.commit(t2)
    return b.done()


def _mvto_stale_read() -> Tuple[Behavior, SystemType]:
    # timestamp order is t0 < t1, but t1's write happens (and commits)
    # before t0's read — multiversion behavior, correct in ts order
    b = _Builder({"x": 0})
    t0, t1 = b.begin("t0"), b.begin("t1")
    b.access(t1, "w", "x", WriteOp(9), OK)
    b.commit(t1)
    b.access(t0, "r", "x", ReadOp(), 0)
    b.commit(t0)
    return b.done()


SCENARIOS: Dict[str, Tuple[Callable[[], Tuple[Behavior, SystemType]], Expectation]] = {
    "serial": (
        _serial,
        Expectation(True, True, "a serial execution certifies trivially"),
    ),
    "lost-update": (
        _lost_update,
        Expectation(False, False, "racing read-modify-writes form an SG cycle"),
    ),
    "dirty-read": (
        _dirty_read,
        Expectation(
            False, False, "a committed reader saw an aborted writer's value (ARV)"
        ),
    ),
    "write-skew": (
        _write_skew,
        Expectation(False, False, "crossed read/write pairs form an SG cycle"),
    ),
    "blind-writes": (
        _blind_writes,
        Expectation(
            True,
            False,
            "serially correct, yet the SG is cyclic — Theorem 8 is only sufficient",
        ),
    ),
    "mvto-stale-read": (
        _mvto_stale_read,
        Expectation(
            True,
            False,
            "correct in timestamp order, rejected by the single-version test",
        ),
    ),
}


def scenario_names() -> List[str]:
    """The names of all canonical scenarios, in presentation order."""
    return list(SCENARIOS)


def build_scenario(name: str) -> Tuple[Behavior, SystemType, Expectation]:
    """Build a named scenario; raises ``KeyError`` for unknown names."""
    try:
        factory, expectation = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    behavior, system_type = factory()
    return behavior, system_type, expectation


# ---------------------------------------------------------------------------
# Program-template scenarios (static robustness catalogue)
# ---------------------------------------------------------------------------
#
# Where the behaviors above are *executions*, these are *programs*: the
# design-time counterpart analysed by repro.analysis.robustness.  Every
# shipped program scenario carries its expected ROBUST/NOT-ROBUST
# verdict (and the dangerous-structure class for the NOT-ROBUST ones);
# the CI robustness gate re-derives the verdicts and fails on any drift.


@dataclass(frozen=True)
class RobustnessExpectation:
    """The expected static verdict for a program scenario."""

    robust: bool
    classification: str = ""
    reason: str = ""


_ProgramSet = Tuple[Dict[ObjectName, object], Dict[TransactionName, TransactionProgram]]

_X = ObjectName("x")
_Y = ObjectName("y")


def _rw_objects() -> Dict[ObjectName, object]:
    return {_X: RWSpec(initial=0), _Y: RWSpec(initial=0)}


def _p_serial_chain() -> _ProgramSet:
    root = seq(
        sub(seq(read(_X), write(_X, 1)), "t1"),
        sub(seq(read(_X), write(_X, 2)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_read_only() -> _ProgramSet:
    root = par(
        sub(seq(read(_X), read(_Y)), "t1"),
        sub(seq(read(_Y), read(_X)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_commuting_counters() -> _ProgramSet:
    counter = ObjectName("c")
    root = par(
        sub(seq(op_call(counter, CounterInc(1), "i1"), op_call(counter, CounterInc(2), "i2")), "t1"),
        sub(seq(op_call(counter, CounterInc(3), "i1"), op_call(counter, CounterInc(4), "i2")), "t2"),
    )
    return {counter: CounterType()}, {ROOT: root}


def _p_disjoint_writers() -> _ProgramSet:
    root = par(
        sub(seq(read(_X), write(_X, 1)), "t1"),
        sub(seq(read(_Y), write(_Y, 1)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_lost_update() -> _ProgramSet:
    root = par(
        sub(seq(read(_X), write(_X, 1)), "t1"),
        sub(seq(read(_X), write(_X, 2)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_write_skew() -> _ProgramSet:
    root = par(
        sub(seq(read(_X), write(_Y, 1)), "t1"),
        sub(seq(read(_Y), write(_X, 1)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_fractured_read() -> _ProgramSet:
    root = par(
        sub(seq(write(_X, 1), write(_Y, 1)), "t1"),
        sub(seq(read(_X), read(_Y)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_fallback_retry() -> _ProgramSet:
    # the race only exists on the disjunctive path: t1's fallback (taken
    # after its direct branch aborts) collides with t2 on y
    root = par(
        sub(
            par(
                SubtransactionCall("direct", seq(read(_X), write(_X, 5))),
                SubtransactionCall(
                    "fallback",
                    seq(read(_Y), write(_Y, 5)),
                    after_abort_of="direct",
                ),
            ),
            "t1",
        ),
        sub(seq(read(_Y), write(_Y, 7)), "t2"),
    )
    return _rw_objects(), {ROOT: root}


def _p_nested_write_skew() -> _ProgramSet:
    # the dangerous group lives one level down, inside a single template
    root = seq(
        sub(
            par(
                sub(seq(read(_X), write(_Y, 1)), "a"),
                sub(seq(read(_Y), write(_X, 1)), "b"),
            ),
            "t1",
        ),
    )
    return _rw_objects(), {ROOT: root}


PROGRAM_SCENARIOS: Dict[
    str, Tuple[Callable[[], _ProgramSet], RobustnessExpectation]
] = {
    "serial-chain": (
        _p_serial_chain,
        RobustnessExpectation(
            True, reason="sequential root: precedes order excludes every cycle"
        ),
    ),
    "read-only-par": (
        _p_read_only,
        RobustnessExpectation(True, reason="reads never conflict (S002)"),
    ),
    "commuting-counters": (
        _p_commuting_counters,
        RobustnessExpectation(
            True,
            reason="increments commute under the counter spec — the probe "
            "proves no conflict edge exists",
        ),
    ),
    "disjoint-writers": (
        _p_disjoint_writers,
        RobustnessExpectation(
            True, reason="templates touch disjoint objects"
        ),
    ),
    "program-lost-update": (
        _p_lost_update,
        RobustnessExpectation(
            False,
            classification="lost-update",
            reason="racing read-modify-writes on one object",
        ),
    ),
    "program-write-skew": (
        _p_write_skew,
        RobustnessExpectation(
            False,
            classification="write-skew",
            reason="crossed read/write pairs on two objects",
        ),
    ),
    "program-fractured-read": (
        _p_fractured_read,
        RobustnessExpectation(
            False,
            classification="fractured-read",
            reason="a reader can observe half of the writer's pair",
        ),
    ),
    "fallback-retry": (
        _p_fallback_retry,
        RobustnessExpectation(
            False,
            classification="lost-update",
            reason="the after_abort_of fallback path races on y",
        ),
    ),
    "nested-write-skew": (
        _p_nested_write_skew,
        RobustnessExpectation(
            False,
            classification="write-skew",
            reason="parallel siblings inside one template cross-conflict",
        ),
    ),
}


def program_scenario_names() -> List[str]:
    """The names of all program scenarios, in presentation order."""
    return list(PROGRAM_SCENARIOS)


def build_program_scenario(
    name: str,
) -> Tuple[Dict[ObjectName, object], Dict[TransactionName, TransactionProgram], RobustnessExpectation]:
    """Build a named program scenario; raises ``KeyError`` if unknown."""
    try:
        factory, expectation = PROGRAM_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown program scenario {name!r}; available: "
            f"{', '.join(PROGRAM_SCENARIOS)}"
        ) from None
    objects, programs = factory()
    return objects, programs, expectation


def program_system_type(name: str) -> SystemType:
    """The registered :class:`SystemType` of a program scenario."""
    objects, programs, _ = build_program_scenario(name)
    return system_type_for(objects, programs)
