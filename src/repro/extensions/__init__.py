"""Extensions beyond the paper's verified algorithms (its future work)."""

from .mvto import MVTORWObject, MVTOState, Version

__all__ = ["MVTORWObject", "MVTOState", "Version"]
