"""Multiversion timestamp ordering — the paper's future-work boundary.

The conclusion of the paper notes that the classical theory "has been
extended … to model concurrency control and recovery algorithms that
use multiple versions" and that parallel techniques should be
developable for the nested model; its related work stresses that the
*user-view* correctness definition already covers multiversion
algorithms even though the serialization-graph technique (built on
single-version conflict order) does not.

This module makes that boundary measurable.  :class:`MVTORWObject` is a
generic object implementing multiversion timestamp ordering for a
read/write object over *timestamped* top-level transactions (each
access inherits the timestamp of its top-level ancestor; we use the
static name order, the simulation analogue of assigning start
timestamps):

* a write installs a new version tagged with the writer's timestamp —
  unless some transaction with a *later* timestamp already read an
  *earlier* version, in which case the write is refused (the driver's
  deadlock resolution then aborts the writer, playing the role of the
  MVTO abort rule);
* a read returns the latest version with timestamp ≤ its own whose
  writer's chain is known-committed (avoiding dirty reads and cascading
  aborts); it waits otherwise;
* INFORM_ABORT removes the aborted subtree's versions and reads.

Behaviors of this object are serializable in *timestamp* order, which
need not agree with the event order the ARV condition and the conflict
edges are built from — so the Theorem 8 test rightly rejects some of
its (serially correct) behaviors.  Experiment E10 quantifies exactly
how often, with the brute-force oracle as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Iterator, Optional, Tuple

from ..core.actions import Action, Create, InformAbort, InformCommit, RequestCommit
from ..core.names import ROOT, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, RWSpec, WriteOp
from ..generic.objects import GenericObject
from ..locking.visibility import inform_chain

__all__ = ["Version", "MVTOState", "MVTORWObject"]


@dataclass(frozen=True, order=True)
class Version:
    """One version: (timestamp, sequence within the timestamp, data, writer)."""

    timestamp: TransactionName
    sequence: int
    data: Any = None
    writer: Optional[TransactionName] = None


@dataclass(frozen=True)
class MVTOState:
    """Versions, recorded reads, and the usual bookkeeping sets."""

    created: FrozenSet[TransactionName] = frozenset()
    commit_requested: FrozenSet[TransactionName] = frozenset()
    versions: Tuple[Version, ...] = ()
    # recorded reads: (reader timestamp, reader access, version read)
    reads: Tuple[Tuple[TransactionName, TransactionName, Version], ...] = ()
    committed: FrozenSet[TransactionName] = frozenset()


def _timestamp(transaction: TransactionName) -> TransactionName:
    """The access's timestamp: its top-level ancestor (static name order)."""
    if transaction.is_root:
        return ROOT
    return TransactionName(transaction.path[:1])


class MVTORWObject(GenericObject):
    """Multiversion timestamp ordering for a read/write object."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        super().__init__(obj, system_type)
        spec = system_type.spec(obj)
        if not isinstance(spec, RWSpec):
            raise TypeError(f"MVTO needs an RWSpec for {obj}, got {spec!r}")
        self.initial_value = spec.initial
        self.name = f"MVTO_{obj}"

    # -- helpers -----------------------------------------------------------

    def initial_state(self) -> MVTOState:
        return MVTOState(versions=(Version(ROOT, 0, self.initial_value, None),))

    def _candidate(
        self, state: MVTOState, reader: TransactionName
    ) -> Optional[Version]:
        """Latest version with timestamp ≤ the reader's timestamp."""
        limit = _timestamp(reader)
        eligible = [v for v in state.versions if v.timestamp <= limit]
        return max(eligible) if eligible else None

    def _writer_stable(
        self, state: MVTOState, version: Version, reader: TransactionName
    ) -> bool:
        """Is the version's writer chain known-committed up to the reader?"""
        if version.writer is None:
            return True
        chain = inform_chain(version.writer, reader)
        return all(link in state.committed for link in chain)

    def _read_enabled(
        self, state: MVTOState, transaction: TransactionName
    ) -> Optional[Version]:
        if transaction not in state.created or transaction in state.commit_requested:
            return None
        version = self._candidate(state, transaction)
        if version is None:
            return None
        if not self._writer_stable(state, version, transaction):
            return None
        return version

    def _write_enabled(self, state: MVTOState, transaction: TransactionName) -> bool:
        if transaction not in state.created or transaction in state.commit_requested:
            return False
        timestamp = _timestamp(transaction)
        for reader_ts, _reader, version in state.reads:
            # a later reader already read past this writer's slot
            if version.timestamp < timestamp < reader_ts:
                return False
        return True

    # -- transitions ----------------------------------------------------------

    def enabled(self, state: MVTOState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp):
                version = self._read_enabled(state, transaction)
                return version is not None and action.value == version.data
            if isinstance(op, WriteOp):
                return self._write_enabled(state, transaction) and action.value == OK
        return False

    def effect(self, state: MVTOState, action: Action) -> MVTOState:
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, InformCommit):
            return replace(state, committed=state.committed | {action.transaction})
        if isinstance(action, InformAbort):
            doomed = action.transaction
            versions = tuple(
                v
                for v in state.versions
                if v.writer is None or not doomed.is_ancestor_of(v.writer)
            )
            reads = tuple(
                entry
                for entry in state.reads
                if not doomed.is_ancestor_of(entry[1])
            )
            return replace(state, versions=versions, reads=reads)
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            new = replace(
                state, commit_requested=state.commit_requested | {transaction}
            )
            if isinstance(op, ReadOp):
                version = self._read_enabled(state, transaction)
                assert version is not None
                return replace(
                    new,
                    reads=new.reads
                    + ((_timestamp(transaction), transaction, version),),
                )
            timestamp = _timestamp(transaction)
            sequence = 1 + max(
                (v.sequence for v in state.versions if v.timestamp == timestamp),
                default=0,
            )
            version = Version(timestamp, sequence, op.data, transaction)
            return replace(new, versions=new.versions + (version,))
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: MVTOState) -> Iterator[Action]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp):
                version = self._read_enabled(state, transaction)
                if version is not None:
                    yield RequestCommit(transaction, version.data)
            elif isinstance(op, WriteOp) and self._write_enabled(state, transaction):
                yield RequestCommit(transaction, OK)

    def blocked_accesses(self, state: MVTOState) -> Iterator[TransactionName]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp):
                if self._read_enabled(state, transaction) is None:
                    yield transaction
            elif isinstance(op, WriteOp) and not self._write_enabled(
                state, transaction
            ):
                yield transaction
