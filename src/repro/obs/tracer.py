"""Span-style tracing with pluggable sinks and a zero-overhead no-op.

A :class:`Tracer` hands out context-manager *spans*::

    tracer = Tracer(RingBufferSink())
    with tracer.span("certify"):
        with tracer.span("certify.build_graph", events=128):
            ...

Each span records wall-clock start/end (``time.perf_counter``), its
nesting depth and parent, and free-form tags; completed spans are
pushed to every configured sink.  Three sinks ship with the package:

* :class:`RingBufferSink` — keeps the last N spans in memory (the
  default the ``repro trace`` CLI analyses);
* :class:`JSONLFileSink` — one JSON object per line, the trace-file
  format documented in ``docs/OBSERVABILITY.md``;
* :class:`LoggingSink` — forwards spans to :mod:`logging` for
  deployments that already aggregate logs.

Uninstrumented code paths use :data:`NULL_TRACER`, whose ``span`` call
returns a shared do-nothing context manager — no allocation, no clock
reads — so the instrumented functions cost ~nothing when tracing is
off.  ``if tracer:`` is the idiomatic enabled-check (:class:`NullTracer`
is falsy).
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "SpanSink",
    "RingBufferSink",
    "JSONLFileSink",
    "LoggingSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_coverage",
    "load_jsonl_trace",
]


@dataclass
class Span:
    """One completed (or in-flight) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    start: float
    end: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)
    #: epoch seconds (``time.time()``) at span open — ``start``/``end``
    #: are ``perf_counter`` offsets, meaningless across processes, so
    #: this is what lets JSONL traces from different processes or
    #: sessions be aligned on one wall-clock axis.
    wall_start: float = 0.0

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "wall_start": self.wall_start,
            "tags": self.tags,
        }


class SpanSink:
    """Receiver of completed spans; subclass and override :meth:`emit`."""

    def emit(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; no-op by default."""


class RingBufferSink(SpanSink):
    """Keep the most recent ``capacity`` completed spans in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        self._buffer: "deque[Span]" = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        self._buffer.append(span)

    def spans(self) -> Tuple[Span, ...]:
        return tuple(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class JSONLFileSink(SpanSink):
    """Write each completed span as one JSON line (the trace-file format).

    Lines are buffered and written in batches of ``flush_every`` (and on
    :meth:`close`), keeping file I/O out of the traced region — a span's
    completion costs one ``json.dumps`` plus a list append.
    """

    def __init__(
        self,
        destination: Union[str, Path, IO[str]],
        flush_every: int = 1000,
    ) -> None:
        if hasattr(destination, "write"):
            self._file: IO[str] = destination  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        self._flush_every = max(flush_every, 1)
        self._pending: List[str] = []

    def emit(self, span: Span) -> None:
        self._pending.append(json.dumps(span.to_dict()))
        if len(self._pending) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._file.write("\n".join(self._pending) + "\n")
            self._pending.clear()

    def close(self) -> None:
        self._flush()
        self._file.flush()
        if self._owns_file:
            self._file.close()


class LoggingSink(SpanSink):
    """Forward completed spans to the standard :mod:`logging` machinery."""

    def __init__(
        self,
        logger: Union[str, logging.Logger] = "repro.obs",
        level: int = logging.DEBUG,
    ) -> None:
        self._logger = (
            logging.getLogger(logger) if isinstance(logger, str) else logger
        )
        self._level = level

    def emit(self, span: Span) -> None:
        self._logger.log(
            self._level,
            "span %s dur=%.6fs depth=%d tags=%s",
            span.name,
            span.duration,
            span.depth,
            span.tags,
        )


class _ActiveSpan:
    """Context manager binding a :class:`Span` to its tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set_tag(self, key: str, value: Any) -> None:
        self.span.set_tag(key, value)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[Any],
    ) -> bool:
        self._tracer._finish(self.span, failed=exc_type is not None)
        return False


class _NullSpan:
    """The shared do-nothing span used when tracing is disabled."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[Any],
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out nested, timed spans and fans completions out to sinks.

    When a ``metrics`` registry is supplied, every completed span also
    feeds a duration histogram named ``span.<name>`` — so traces and
    metrics stay consistent without double instrumentation.
    """

    def __init__(
        self,
        *sinks: SpanSink,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.sinks: List[SpanSink] = list(sinks)
        self.metrics = metrics
        self._stack: List[Span] = []
        self._next_id = 1

    def __bool__(self) -> bool:
        return True

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("phase", key=value):``."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            start=time.perf_counter(),
            tags=tags,
            wall_start=time.time(),
        )
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span, failed: bool = False) -> None:
        span.end = time.perf_counter()
        if failed:
            span.tags["error"] = True
        # pop through any abandoned children (shouldn't happen with
        # well-nested context managers, but stay robust)
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if self.metrics is not None:
            self.metrics.observe(f"span.{span.name}", span.duration)
        for sink in self.sinks:
            sink.emit(span)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class NullTracer:
    """A tracer whose spans do nothing; falsy so hot paths can skip work."""

    sinks: Tuple[SpanSink, ...] = ()
    metrics = None

    def __bool__(self) -> bool:
        return False

    @property
    def current_span(self) -> None:
        return None

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Trace analysis helpers (used by the ``repro trace`` CLI and the tests)
# ---------------------------------------------------------------------------


def load_jsonl_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of span dicts."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def span_coverage(
    spans: Iterable[Union[Span, Dict[str, Any]]], root_name: str
) -> Optional[float]:
    """Fraction of ``root_name``'s wall time covered by its direct children.

    This is the self-time audit the acceptance check uses: a well
    instrumented phase decomposition leaves little untraced residue
    inside the root span.  Returns ``None`` when no completed span named
    ``root_name`` exists; with several roots (e.g. one per benchmark
    iteration) the total child time over total root time is returned.
    """
    as_dicts = [
        span.to_dict() if isinstance(span, Span) else span for span in spans
    ]
    roots = [
        span
        for span in as_dicts
        if span["name"] == root_name and span.get("end") is not None
    ]
    if not roots:
        return None
    root_ids = {span["span_id"] for span in roots}
    root_time = sum(span["dur"] for span in roots)
    child_time = sum(
        span["dur"]
        for span in as_dicts
        if span.get("parent_id") in root_ids and span.get("end") is not None
    )
    if root_time <= 0.0:
        return 1.0
    return min(child_time / root_time, 1.0)
