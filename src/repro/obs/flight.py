"""Violation flight recorder: a bounded action window dumped on failure.

When the online certifier latches a cycle (or a return-value legality
check flips to illegal) the interesting evidence is the *recent past* —
the actions that closed the cycle — and by the time anyone looks at the
run, that window is gone.  A :class:`FlightRecorder` keeps it: a fixed
capacity ring of the last N ``(position, action)`` pairs per session,
appended to on the hot path at deque cost (no serialization, no I/O).

Only when a violation fires does :meth:`dump` do real work: the window
is serialized (action type name plus its paper-style ``str()`` form),
bundled with the trigger reason, the cycle witness if one latched, an
optional metrics snapshot, and free-form context, then appended as one
JSON line to the post-mortem file.  Dumps are bounded by ``max_dumps``
so a pathological workload cannot fill a disk, and counted in the
``online.flight.dumps`` counter when a registry is attached.

This module deliberately knows nothing about :mod:`repro.core` — the
recorder accepts any action object (it relies only on ``str()`` and the
type name), which keeps ``obs`` import-cycle-free and reusable.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = ["FlightRecorder", "load_postmortems"]


def _serialize_action(action: object) -> Dict[str, str]:
    return {"kind": type(action).__name__, "action": str(action)}


def _serialize_cycle(cycle: object) -> Optional[Dict[str, Any]]:
    """A cycle witness ``(parent, [nodes...])`` as JSON-friendly strings."""
    if cycle is None:
        return None
    try:
        parent, nodes = cycle  # type: ignore[misc]
    except (TypeError, ValueError):
        return {"raw": str(cycle)}
    return {"parent": str(parent), "nodes": [str(node) for node in nodes]}


class FlightRecorder:
    """Bounded ring of recent actions, dumped to JSONL on violation.

    ``record`` is the hot-path call: one ``deque.append`` of an already
    existing tuple, nothing else.  ``dump`` is the cold-path call and
    the only place that serializes or touches the filesystem (the file
    is opened in append mode per dump — dumps are rare by construction).
    """

    def __init__(
        self,
        path: Union[str, Path],
        capacity: int = 256,
        max_dumps: int = 16,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_dumps <= 0:
            raise ValueError("max_dumps must be positive")
        self.path = Path(path)
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.metrics = metrics
        self.dumps = 0
        self._window: "deque[Tuple[int, object]]" = deque(maxlen=capacity)

    def record(self, position: int, action: object) -> None:
        """Append one action to the ring (O(1), no serialization)."""
        self._window.append((position, action))

    def __len__(self) -> int:
        return len(self._window)

    def window(self) -> Tuple[Tuple[int, object], ...]:
        """The current (position, action) window, oldest first."""
        return tuple(self._window)

    def dump(
        self,
        reason: str,
        session: str = "",
        cycle: object = None,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Write one post-mortem record; returns False once over budget.

        ``reason`` identifies the trigger (``"cycle"`` for an SG cycle
        latch, ``"arv"`` for a return-value legality violation); the
        record carries the serialized action window, the cycle witness
        (if any), the metrics snapshot (if given) and the context dict
        verbatim.
        """
        if self.dumps >= self.max_dumps:
            return False
        self.dumps += 1
        if self.metrics is not None:
            self.metrics.inc("online.flight.dumps")
        record = {
            "time": time.time(),
            "reason": reason,
            "session": session,
            "window": [
                {"position": position, **_serialize_action(action)}
                for position, action in self._window
            ],
            "cycle": _serialize_cycle(cycle),
            "metrics": metrics_snapshot,
            "context": context or {},
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        return True


def load_postmortems(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a post-mortem JSONL file back into a list of records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
