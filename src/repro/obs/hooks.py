"""The event-hook protocol threaded through the simulator and controller.

The simulation driver (:func:`repro.sim.driver.run_system`) and the
generic controller (:class:`repro.generic.controller.GenericController`)
accept an optional :class:`ObsHooks`; every method has a no-op default,
so observers subclass only what they care about.  Hot paths guard hook
calls with ``if hooks is not None`` — an unhooked run pays a single
``None`` check per event.

:class:`MetricsHooks` is the batteries-included observer: it turns the
event stream into :class:`~repro.obs.metrics.MetricsRegistry` counters
and histograms (and, when given a tracer, tags the current span), which
is what ``repro trace`` and the ``--metrics-json`` CLI flags use.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["ObsHooks", "MetricsHooks"]


class ObsHooks:
    """Observer protocol for simulator and controller events.

    Subclass and override any subset; the base class is a usable no-op.
    ``action`` / ``choice`` arguments are :class:`repro.core.actions.Action`
    instances, ``transaction`` a :class:`repro.core.names.TransactionName`
    — typed loosely here so the obs layer stays import-light.
    """

    # -- driver events ------------------------------------------------------

    def on_step(self, step: int, action: Any) -> None:
        """One driver step executed ``action`` (after effect application)."""

    def on_policy_choice(self, enabled: Sequence[Any], choice: Optional[Any]) -> None:
        """The scheduling policy picked ``choice`` among ``enabled``."""

    def on_quiescence(self, steps: int) -> None:
        """The run ended with no enabled actions after ``steps`` steps."""

    def on_deadlock_abort(self, victim: Any) -> None:
        """Deadlock resolution aborted top-level transaction ``victim``."""

    # -- controller events --------------------------------------------------

    def on_commit(self, transaction: Any) -> None:
        """The generic controller committed ``transaction``."""

    def on_abort(self, transaction: Any) -> None:
        """The generic controller aborted ``transaction``."""

    def on_report(self, transaction: Any, committed: bool) -> None:
        """The controller reported a completion to the parent."""

    def on_inform(self, obj: Any, transaction: Any, committed: bool) -> None:
        """The controller informed object ``obj`` of a transaction's fate."""


class MetricsHooks(ObsHooks):
    """Record driver/controller events into a metrics registry.

    Instruments written (all created lazily):

    * ``driver.steps`` — counter of executed steps;
    * ``driver.action.<Kind>`` — counter per action class;
    * ``driver.enabled_actions`` — histogram of the choice-set size the
      policy saw at each step (scheduler pressure);
    * ``driver.quiescent`` — gauge (1 when the run drained);
    * ``driver.deadlock_aborts`` — counter of victim aborts;
    * ``controller.commits`` / ``controller.aborts`` /
      ``controller.reports`` / ``controller.informs`` — dispatch counters,
      with ``controller.top_level_commits`` split out.
    """

    _ENABLED_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(
        self, metrics: MetricsRegistry, tracer: Optional[Tracer] = None
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer

    # -- driver events ------------------------------------------------------

    def on_step(self, step: int, action: Any) -> None:
        self.metrics.inc("driver.steps")
        self.metrics.inc(f"driver.action.{type(action).__name__}")

    def on_policy_choice(self, enabled: Sequence[Any], choice: Optional[Any]) -> None:
        self.metrics.histogram(
            "driver.enabled_actions", self._ENABLED_BUCKETS
        ).observe(len(enabled))

    def on_quiescence(self, steps: int) -> None:
        self.metrics.set_gauge("driver.quiescent", 1)
        self.metrics.set_gauge("driver.steps_at_quiescence", steps)

    def on_deadlock_abort(self, victim: Any) -> None:
        self.metrics.inc("driver.deadlock_aborts")

    # -- controller events --------------------------------------------------

    def on_commit(self, transaction: Any) -> None:
        self.metrics.inc("controller.commits")
        if getattr(transaction, "depth", None) == 1:
            self.metrics.inc("controller.top_level_commits")

    def on_abort(self, transaction: Any) -> None:
        self.metrics.inc("controller.aborts")

    def on_report(self, transaction: Any, committed: bool) -> None:
        self.metrics.inc("controller.reports")
        self.metrics.inc(
            "controller.reports.commit" if committed else "controller.reports.abort"
        )

    def on_inform(self, obj: Any, transaction: Any, committed: bool) -> None:
        self.metrics.inc("controller.informs")
