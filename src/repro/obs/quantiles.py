"""Streaming quantile estimation: log-spaced buckets and the P² algorithm.

Latency telemetry needs percentiles, not means: a p99 feed→verdict
latency is the number an operator alerts on, and it has to come out of
a *streaming* estimator — the service never holds the sample set.  Two
complementary estimators live here:

* **Log-spaced bucket histograms** — :func:`log_buckets` builds bucket
  bounds in a geometric progression with ratio ``growth``; any quantile
  read off such a histogram by :func:`bucket_quantile` (the engine
  behind :meth:`repro.obs.metrics.Histogram.quantile`) carries a
  *guaranteed* relative error of at most ``sqrt(growth) - 1`` (the
  estimate is the geometric midpoint of the bucket holding the target
  rank).  The default :data:`LATENCY_BUCKETS` use ``growth = 1.08``,
  i.e. ≤ 4% error over 1 µs .. 10 s — comfortably inside the 5% budget
  the reference tests enforce — at a cost of ~200 integer buckets.
  Histograms merge and snapshot trivially, which is why the registry
  instruments use them.
* **P² (Jain & Chlamtac 1985)** — :class:`P2Quantile` tracks a single
  quantile with five markers and O(1) memory, no buckets at all.  It
  has no hard error bound but converges tightly on smooth
  distributions; benchmarks use it where one number is wanted without
  a bucket layout decision.

:func:`latency_histogram` is the one-line wiring helper the stream
service uses: get-or-create a registry histogram with the latency
bucket layout.  The drift detector D001 treats it as a registry method,
so metric names routed through it are machine-checked against
``docs/OBSERVABILITY.md`` like any direct ``registry.inc`` call.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (metrics imports us)
    from .metrics import Histogram, MetricsRegistry

__all__ = [
    "log_buckets",
    "LATENCY_BUCKETS",
    "bucket_quantile",
    "P2Quantile",
    "latency_histogram",
]


def log_buckets(start: float, stop: float, growth: float = 1.08) -> Tuple[float, ...]:
    """Geometric bucket bounds from ``start`` to at least ``stop``.

    Quantiles interpolated on a histogram with these bounds have
    relative error at most ``sqrt(growth) - 1`` (see
    :func:`bucket_quantile`); the bound count is
    ``log(stop/start) / log(growth)``, so tighter accuracy costs more
    buckets linearly in ``1/log(growth)``.
    """
    if start <= 0:
        raise ValueError("start must be positive")
    if stop <= start:
        raise ValueError("stop must exceed start")
    if growth <= 1.0:
        raise ValueError("growth must exceed 1.0")
    bounds: List[float] = [start]
    while bounds[-1] < stop:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


#: The latency bucket layout: 1 µs .. 10 s at ≤ 4% quantile error.
LATENCY_BUCKETS: Tuple[float, ...] = log_buckets(1e-6, 10.0, growth=1.08)


def bucket_quantile(
    buckets: Sequence[float],
    counts: Sequence[int],
    count: int,
    q: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed sample.

    ``buckets`` are the ascending inclusive upper bounds and ``counts``
    the per-bucket (non-cumulative) tallies, with ``counts[-1]`` the
    +inf overflow bucket — exactly the shape
    :class:`repro.obs.metrics.Histogram` maintains.  The estimate is
    the geometric midpoint of the bucket containing the target rank,
    clamped to the observed ``minimum``/``maximum``; for log-spaced
    buckets with ratio ``g`` that pins the relative error at
    ``sqrt(g) - 1`` whatever the underlying distribution does inside
    the bucket.  Returns ``None`` for an empty sample.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return None
    # nearest-rank target: the ceil(q * count)-th smallest sample
    rank = max(1, math.ceil(q * count))
    cumulative = 0
    index = len(counts) - 1
    for i, bucket_count in enumerate(counts):
        cumulative += bucket_count
        if cumulative >= rank:
            index = i
            break
    if index >= len(buckets):
        # overflow bucket: no upper bound — the observed max is the
        # only honest estimate
        estimate = maximum if maximum is not None else buckets[-1]
    else:
        upper = buckets[index]
        lower = buckets[index - 1] if index > 0 else None
        if lower is not None and lower > 0 and upper > 0:
            estimate = math.sqrt(lower * upper)
        elif upper > 0:
            # first bucket: samples lie in (-inf, upper]; fall back to
            # the arithmetic midpoint of [min-or-zero, upper]
            floor = minimum if minimum is not None and minimum > 0 else 0.0
            estimate = (floor + upper) / 2.0
        else:
            estimate = upper
    if minimum is not None:
        estimate = max(estimate, minimum)
    if maximum is not None:
        estimate = min(estimate, maximum)
    return estimate


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Five markers track the running minimum, maximum, the target
    quantile and the two flanking mid-quantiles; marker heights move by
    piecewise-parabolic interpolation as observations arrive.  O(1)
    memory, no buckets, no sorting — but also no hard error bound, so
    use the log-bucket histograms when the 5% guarantee matters.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions: List[float] = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired: List[float] = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._rates: List[float] = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    def observe(self, value: float) -> None:
        """Consume one observation."""
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            if len(heights) == 5:
                heights.sort()
            return
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._rates[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            drift = desired[i] - positions[i]
            step_up = positions[i + 1] - positions[i]
            step_down = positions[i - 1] - positions[i]
            if (drift >= 1.0 and step_up > 1.0) or (drift <= -1.0 and step_down < -1.0):
                direction = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        heights, positions = self._heights, self._positions
        span = positions[i + 1] - positions[i - 1]
        return heights[i] + direction / span * (
            (positions[i] - positions[i - 1] + direction)
            * (heights[i + 1] - heights[i])
            / (positions[i + 1] - positions[i])
            + (positions[i + 1] - positions[i] - direction)
            * (heights[i] - heights[i - 1])
            / (positions[i] - positions[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        heights, positions = self._heights, self._positions
        step = int(direction)
        return heights[i] + direction * (heights[i + step] - heights[i]) / (
            positions[i + step] - positions[i]
        )

    def value(self) -> Optional[float]:
        """The current estimate (exact until five observations exist)."""
        if self.count == 0:
            return None
        heights = self._heights
        if len(heights) < 5 or self.count <= 5:
            ordered = sorted(heights)
            rank = max(1, math.ceil(self.q * len(ordered)))
            return ordered[rank - 1]
        return heights[2]


def latency_histogram(registry: "MetricsRegistry", name: str) -> "Histogram":
    """Get-or-create ``name`` on ``registry`` with the latency layout.

    The single wiring point for ``*.latency.*`` / duration-quantile
    instruments: every call site routes its (constant) metric name
    through here, and the drift detector D001 parses these calls like
    direct registry writes — so the name must appear in the
    ``docs/OBSERVABILITY.md`` inventory.
    """
    return registry.histogram(name, buckets=LATENCY_BUCKETS)
