"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments that the
instrumented layers (driver, controller, certifiers) write into and the
CLI / benchmarks snapshot out of.  Everything is plain Python — no
background threads, no external dependencies — so a registry can be
created per run, snapshotted to a dict, and serialized as JSON next to
a trace file.

Instruments follow the usual taxonomy:

* :class:`Counter` — a monotonically increasing count (events seen,
  edges added, ...);
* :class:`Gauge` — a last-write-wins value (graph size, quiescence
  flag, ...);
* :class:`Histogram` — fixed upper-bound buckets plus sum/count/min/max,
  the shape Prometheus-style scrapers expect.  The default buckets are
  tuned for span durations in seconds (10 µs .. 10 s).

All ``name`` arguments are free-form dotted strings (``"sg.edges"``,
``"online.feed.actions"``); the registry creates instruments on first
use, so instrumented code never has to pre-declare them.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .quantiles import bucket_quantile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
]

# Upper bounds (seconds) for duration histograms; +inf is implicit.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are inclusive upper bounds in ascending order; an
    implicit +inf bucket catches the rest.  ``counts[i]`` is the number
    of observations ``<= buckets[i]`` but greater than the previous
    bound (i.e. per-bucket, not cumulative).
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS) -> None:
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile of everything observed so far.

        The estimate is read off the bucket layout (geometric-midpoint
        interpolation, clamped to the observed min/max), so its accuracy
        is the layout's: with :data:`repro.obs.quantiles.LATENCY_BUCKETS`
        the relative error is bounded at ~4%; the coarse default
        duration buckets give order-of-magnitude answers only.  Returns
        ``None`` while the histogram is empty.
        """
        return bucket_quantile(
            self.buckets, self.counts, self.count, q, self.min, self.max
        )

    def snapshot(self) -> Dict[str, object]:
        labels = [str(bound) for bound in self.buckets] + ["+inf"]
        return {
            "buckets": dict(zip(labels, self.counts)),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create accessors -------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(buckets)
        return histogram

    # -- write shortcuts ----------------------------------------------------

    def inc(self, name: str, amount: Union[int, float] = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Union[int, float]) -> None:
        self.histogram(name).observe(value)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as one JSON-serializable dict."""
        return {
            "counters": {
                name: counter.snapshot()
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.snapshot()
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def write_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
