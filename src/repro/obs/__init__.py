"""repro.obs — tracing, metrics and event hooks for the repro stack.

The observability layer the rest of the library is instrumented with:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  snapshot-to-dict/JSON (:mod:`repro.obs.metrics`);
* :class:`Tracer` — nested context-manager spans with wall-clock timing,
  tags and pluggable sinks (ring buffer, JSONL file, ``logging``),
  behind the zero-overhead :data:`NULL_TRACER` default
  (:mod:`repro.obs.tracer`);
* :class:`ObsHooks` — the event protocol the simulation driver and
  generic controller call out through, with :class:`MetricsHooks` as the
  stock metrics-recording observer (:mod:`repro.obs.hooks`).

See ``docs/OBSERVABILITY.md`` for the full API tour, the JSONL trace
schema and measured overheads; ``repro trace --help`` for the CLI.
"""

from .hooks import MetricsHooks, ObsHooks
from .metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_TRACER,
    JSONLFileSink,
    LoggingSink,
    NullTracer,
    RingBufferSink,
    Span,
    SpanSink,
    Tracer,
    load_jsonl_trace,
    span_coverage,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "Span",
    "SpanSink",
    "RingBufferSink",
    "JSONLFileSink",
    "LoggingSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_coverage",
    "load_jsonl_trace",
    "ObsHooks",
    "MetricsHooks",
]
