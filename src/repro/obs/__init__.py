"""repro.obs — tracing, metrics and event hooks for the repro stack.

The observability layer the rest of the library is instrumented with:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  snapshot-to-dict/JSON (:mod:`repro.obs.metrics`);
* :class:`Tracer` — nested context-manager spans with wall-clock timing,
  tags and pluggable sinks (ring buffer, JSONL file, ``logging``),
  behind the zero-overhead :data:`NULL_TRACER` default
  (:mod:`repro.obs.tracer`);
* :class:`ObsHooks` — the event protocol the simulation driver and
  generic controller call out through, with :class:`MetricsHooks` as the
  stock metrics-recording observer (:mod:`repro.obs.hooks`);
* streaming quantiles — log-bucket layouts with bounded relative error
  and the P² estimator (:mod:`repro.obs.quantiles`);
* exposition — Prometheus text rendering of any registry snapshot and
  the periodic :class:`SnapshotExporter` task (:mod:`repro.obs.export`);
* :class:`FlightRecorder` — bounded ring of recent actions dumped as a
  post-mortem when a violation latches (:mod:`repro.obs.flight`).

See ``docs/OBSERVABILITY.md`` for the full API tour, the JSONL trace
schema and measured overheads; ``repro trace --help`` for the CLI.
"""

from .export import (
    SnapshotExporter,
    load_snapshots,
    parse_prometheus,
    prometheus_name,
    render_registry,
    to_prometheus,
)
from .flight import FlightRecorder, load_postmortems
from .hooks import MetricsHooks, ObsHooks
from .metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .quantiles import (
    LATENCY_BUCKETS,
    P2Quantile,
    bucket_quantile,
    latency_histogram,
    log_buckets,
)
from .tracer import (
    NULL_TRACER,
    JSONLFileSink,
    LoggingSink,
    NullTracer,
    RingBufferSink,
    Span,
    SpanSink,
    Tracer,
    load_jsonl_trace,
    span_coverage,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
    "Span",
    "SpanSink",
    "RingBufferSink",
    "JSONLFileSink",
    "LoggingSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "span_coverage",
    "load_jsonl_trace",
    "ObsHooks",
    "MetricsHooks",
    "log_buckets",
    "LATENCY_BUCKETS",
    "bucket_quantile",
    "P2Quantile",
    "latency_histogram",
    "prometheus_name",
    "to_prometheus",
    "render_registry",
    "parse_prometheus",
    "SnapshotExporter",
    "load_snapshots",
    "FlightRecorder",
    "load_postmortems",
]
