"""Metric exposition: Prometheus text format and periodic JSONL snapshots.

A :class:`repro.obs.metrics.MetricsRegistry` snapshot is a nested dict
— fine for tests and one-off files, useless to a scrape-based metrics
stack.  This module renders any snapshot in the `Prometheus text
exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`__:

* counters → ``# TYPE <name> counter`` plus one sample line;
* gauges → ``# TYPE <name> gauge``;
* histograms → ``# TYPE <name> histogram`` with *cumulative*
  ``_bucket{le="..."}`` samples (the ``+Inf`` bucket included), plus
  ``_sum`` and ``_count`` — exactly what ``histogram_quantile()`` wants
  on the server side.

Dotted registry names become underscore-joined Prometheus names under a
``repro_`` namespace (``stream.latency.feed_to_verdict`` →
``repro_stream_latency_feed_to_verdict``).  :func:`parse_prometheus`
reads the format back into a comparable structure; the test suite
round-trips every instrument kind through it.

For deployments that would rather ship files than expose an endpoint,
:class:`SnapshotExporter` is a small asyncio task that appends one
timestamped registry snapshot per interval to a JSONL file (and a final
one on ``close()``), counting its work in ``obs.export.snapshots``.
The ``repro metrics`` CLI subcommand wraps both: one-shot rendering of
a snapshot file, or ``--serve`` over :mod:`http.server`.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
import time
from pathlib import Path
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "prometheus_name",
    "to_prometheus",
    "render_registry",
    "parse_prometheus",
    "SnapshotExporter",
    "load_snapshots",
]

#: Characters legal in a Prometheus metric name body.
_NAME_OK_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: One sample line: name, optional {labels}, value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """A dotted registry name as a Prometheus metric name.

    Dots (and any other illegal characters) collapse to underscores;
    the namespace is prefixed unless already present.
    """
    flat = _NAME_OK_RE.sub("_", name)
    if namespace and not flat.startswith(namespace + "_"):
        flat = f"{namespace}_{flat}"
    return flat


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _format_bound(bound: str) -> str:
    """A histogram bucket label as Prometheus spells it (``+Inf`` kept)."""
    if bound in ("+inf", "+Inf", "inf"):
        return "+Inf"
    return bound


def to_prometheus(
    snapshot: Mapping[str, Any], namespace: str = "repro"
) -> str:
    """Render a registry snapshot dict in the text exposition format.

    ``snapshot`` is the shape :meth:`MetricsRegistry.snapshot` produces
    (also accepted: the same structure parsed back from a JSON file).
    Output is deterministic: families sorted by name, buckets in bound
    order, one trailing newline.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = prometheus_name(name, namespace)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        flat = prometheus_name(name, namespace)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        flat = prometheus_name(name, namespace)
        lines.append(f"# TYPE {flat} histogram")
        cumulative = 0
        for bound, bucket_count in hist.get("buckets", {}).items():
            cumulative += bucket_count
            lines.append(
                f'{flat}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(f"{flat}_sum {_format_value(hist.get('sum', 0.0))}")
        lines.append(f"{flat}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


def render_registry(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """Shortcut: snapshot ``registry`` and render it."""
    return to_prometheus(registry.snapshot(), namespace)


def _parse_number(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    return float(token)


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{metric: {...}}``.

    Counters and gauges map to ``{"type": ..., "value": ...}``;
    histograms to ``{"type": "histogram", "buckets": {le: cumulative},
    "sum": ..., "count": ...}``.  Metric families are keyed by their
    flat Prometheus name (namespacing is not undone — renders and
    parses compose, they do not invert the name mangling).
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            parts = rest.split()
            if len(parts) == 2:
                types[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {raw!r}")
        name, label_text, value_token = match.groups()
        value = _parse_number(value_token)
        base, suffix = name, ""
        for candidate in ("_bucket", "_sum", "_count"):
            stem = name[: -len(candidate)]
            if name.endswith(candidate) and types.get(stem) == "histogram":
                base, suffix = stem, candidate
                break
        kind = types.get(base, "untyped")
        family = families.setdefault(base, {"type": kind})
        if kind == "histogram":
            family.setdefault("buckets", {})
            if suffix == "_bucket":
                labels = dict(_LABEL_RE.findall(label_text or ""))
                family["buckets"][labels.get("le", "+Inf")] = value
            elif suffix == "_sum":
                family["sum"] = value
            elif suffix == "_count":
                family["count"] = value
            else:
                raise ValueError(f"stray histogram sample: {raw!r}")
        else:
            family["value"] = value
    return families


def load_snapshots(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a :class:`SnapshotExporter` JSONL file back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class SnapshotExporter:
    """Periodically append registry snapshots to a JSONL file (asyncio).

    Each record is one JSON line ``{"time": <epoch seconds>,
    "sequence": <n>, "snapshot": {...}}``.  ``start()`` spawns the
    writer task on the running loop; ``close()`` cancels it, writes one
    final snapshot, flushes, and re-raises any error the writer task
    captured (a failed write stops the exporter rather than spinning).
    Every written snapshot increments ``obs.export.snapshots`` *before*
    the snapshot is taken, so the series observes itself.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        destination: Union[str, Path, IO[str]],
        interval: float = 5.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.interval = interval
        if hasattr(destination, "write"):
            self._file: IO[str] = destination  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        self._task: Optional["asyncio.Task[None]"] = None
        self._sequence = 0
        self.error: Optional[BaseException] = None

    def write_snapshot(self) -> None:
        """Append one timestamped snapshot line (synchronous)."""
        self.registry.inc("obs.export.snapshots")
        record = {
            "time": time.time(),
            "sequence": self._sequence,
            "snapshot": self.registry.snapshot(),
        }
        self._sequence += 1
        self._file.write(json.dumps(record) + "\n")

    async def start(self) -> None:
        """Spawn the periodic writer on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.interval)
                self.write_snapshot()
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surfaced on close()
            self.error = exc

    async def close(self) -> None:
        """Stop the task, write the final snapshot, flush and release."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        try:
            if self.error is None:
                self.write_snapshot()
        finally:
            self._file.flush()
            if self._owns_file:
                self._file.close()
        if self.error is not None:
            raise self.error
