"""The classical (flat) serializability theory, as a baseline."""

from .histories import (
    FlatAbort,
    FlatCommit,
    FlatRead,
    FlatStep,
    FlatWrite,
    History,
    committed_projection,
    history_to_nested_behavior,
    random_history,
)
from .sgt import (
    classical_edges,
    classical_serialization_graph,
    is_conflict_serializable,
)
from .two_phase_locking import FlatScript, run_strict_2pl

__all__ = [name for name in dir() if not name.startswith("_")]
