"""The classical serialization graph test for flat histories.

Nodes are committed transactions; there is an edge ``T -> T'`` when some
step of ``T`` conflicts with (same object, at least one write) and
precedes some step of ``T'`` in the committed projection.  A history is
conflict-serializable iff the graph is acyclic — the classical
necessary-and-sufficient test our nested construction generalises.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..core.graph import Digraph
from .histories import FlatRead, FlatStep, FlatWrite, committed_projection

__all__ = [
    "classical_serialization_graph",
    "is_conflict_serializable",
    "classical_edges",
]


def _conflicting(first: FlatStep, second: FlatStep) -> bool:
    if first.obj != second.obj:
        return False
    return isinstance(first, FlatWrite) or isinstance(second, FlatWrite)


def classical_serialization_graph(history: Sequence[FlatStep]) -> Digraph[str]:
    """Build the classical conflict graph over the committed projection."""
    steps = committed_projection(history)
    graph: Digraph[str] = Digraph()
    for step in steps:
        graph.add_node(step.txn)
    for i, first in enumerate(steps):
        for second in steps[i + 1 :]:
            if first.txn != second.txn and _conflicting(first, second):
                graph.add_edge(first.txn, second.txn, "conflict")
    return graph


def classical_edges(history: Sequence[FlatStep]) -> Set[Tuple[str, str]]:
    """The edge set of the classical graph, for comparisons."""
    graph = classical_serialization_graph(history)
    return {(src, dst) for src, dst, _ in graph.edges()}


def is_conflict_serializable(history: Sequence[FlatStep]) -> bool:
    """The classical test: acyclicity of the conflict graph."""
    return classical_serialization_graph(history).is_acyclic()
