"""Flat (unnested) transaction histories — the classical theory's raw material.

The classical serializability theory (Bernstein–Hadzilacos–Goodman,
Papadimitriou) works over *histories*: interleaved sequences of read and
write steps of flat transactions, with commit/abort markers.  This
module defines that representation, random history generation, and the
translation into nested-model behaviors (each classical transaction
becomes a child of ``T0`` whose accesses are its steps) used to check
that the paper's construction generalises the classical one (E5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.actions import (
    Action,
    Behavior,
    Commit,
    Create,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import Access, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, RWSpec, WriteOp

__all__ = [
    "FlatRead",
    "FlatWrite",
    "FlatCommit",
    "FlatAbort",
    "FlatStep",
    "History",
    "committed_projection",
    "random_history",
    "history_to_nested_behavior",
]


@dataclass(frozen=True)
class FlatRead:
    txn: str
    obj: str

    def __str__(self) -> str:
        return f"r_{self.txn}[{self.obj}]"


@dataclass(frozen=True)
class FlatWrite:
    txn: str
    obj: str
    data: int = 0

    def __str__(self) -> str:
        return f"w_{self.txn}[{self.obj}]={self.data}"


@dataclass(frozen=True)
class FlatCommit:
    txn: str

    def __str__(self) -> str:
        return f"c_{self.txn}"


@dataclass(frozen=True)
class FlatAbort:
    txn: str

    def __str__(self) -> str:
        return f"a_{self.txn}"


FlatStep = Union[FlatRead, FlatWrite, FlatCommit, FlatAbort]
History = Tuple[FlatStep, ...]


def committed_projection(history: Sequence[FlatStep]) -> History:
    """The classical committed projection: steps of committed transactions."""
    committed = {step.txn for step in history if isinstance(step, FlatCommit)}
    return tuple(
        step
        for step in history
        if isinstance(step, (FlatRead, FlatWrite)) and step.txn in committed
    )


def random_history(
    transactions: int,
    objects: int,
    ops_per_transaction: int,
    seed: int = 0,
    write_probability: float = 0.5,
    commit_probability: float = 1.0,
) -> History:
    """A random interleaved flat history with commit markers at the end of
    each transaction's steps (abort markers with the complementary
    probability)."""
    rng = random.Random(seed)
    pending: Dict[str, int] = {f"T{i}": ops_per_transaction for i in range(transactions)}
    order: List[str] = [name for name, count in pending.items() for _ in range(count)]
    rng.shuffle(order)
    history: List[FlatStep] = []
    for txn in order:
        obj = f"x{rng.randrange(objects)}"
        if rng.random() < write_probability:
            history.append(FlatWrite(txn, obj, rng.randrange(100)))
        else:
            history.append(FlatRead(txn, obj))
        pending[txn] -= 1
        if pending[txn] == 0:
            if rng.random() < commit_probability:
                history.append(FlatCommit(txn))
            else:
                history.append(FlatAbort(txn))
    return tuple(history)


def history_to_nested_behavior(
    history: Sequence[FlatStep],
    initial_value: int = 0,
) -> Tuple[Behavior, SystemType]:
    """Encode a flat history as a depth-1 nested simple behavior.

    Each flat transaction ``T`` becomes a child of ``T0``; its i-th step
    becomes an access grandchild.  Read values follow the classical
    update-in-place assumption: a read returns the last value written to
    the object by any preceding step of a non-aborted transaction (the
    translation is meant for histories whose reads are consistent with
    that model, e.g. 2PL output).  Commit markers become access-to-root
    commit ceremonies so the accesses are visible to ``T0``.
    """
    objects = sorted({step.obj for step in history if hasattr(step, "obj")})
    specs = {ObjectName(name): RWSpec(initial=initial_value) for name in objects}
    system_type = SystemType(specs)
    aborted = {step.txn for step in history if isinstance(step, FlatAbort)}

    behavior: List[Action] = []
    created: Set[str] = set()
    step_counts: Dict[str, int] = {}
    access_names: Dict[str, List[TransactionName]] = {}
    current: Dict[str, int] = {name: initial_value for name in objects}

    for step in history:
        if isinstance(step, (FlatRead, FlatWrite)):
            txn_name = TransactionName((step.txn,))
            if step.txn not in created:
                created.add(step.txn)
                behavior.append(RequestCreate(txn_name))
                behavior.append(Create(txn_name))
            index = step_counts.get(step.txn, 0)
            step_counts[step.txn] = index + 1
            access = txn_name.child(f"op{index}")
            if isinstance(step, FlatWrite):
                system_type.register_access(
                    access, Access(ObjectName(step.obj), WriteOp(step.data))
                )
                value: Any = OK
                if step.txn not in aborted:
                    current[step.obj] = step.data
            else:
                system_type.register_access(
                    access, Access(ObjectName(step.obj), ReadOp())
                )
                value = current[step.obj]
            access_names.setdefault(step.txn, []).append(access)
            behavior.append(RequestCreate(access))
            behavior.append(Create(access))
            behavior.append(RequestCommit(access, value))
            behavior.append(Commit(access))
            behavior.append(ReportCommit(access, value))
        elif isinstance(step, FlatCommit):
            txn_name = TransactionName((step.txn,))
            behavior.append(RequestCommit(txn_name, "done"))
            behavior.append(Commit(txn_name))
            behavior.append(ReportCommit(txn_name, "done"))
        # FlatAbort: the transaction simply never commits; omitting the
        # nested ABORT keeps its accesses merely invisible, which matches
        # the classical committed projection.
    return tuple(behavior), system_type
