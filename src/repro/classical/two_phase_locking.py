"""Strict two-phase locking for flat transactions — the classical baseline.

A small executor that schedules flat transactions' read/write scripts
under strict 2PL: a transaction acquires a shared lock to read and an
exclusive lock to write, and releases everything at commit.  Deadlocks
are *avoided* with the classical wait-die scheme (Rosenkrantz et al.):
a requester older than every incompatible lock holder waits; a younger
requester dies (aborts, releasing its locks) and retries later with its
**inherited** timestamp, so every transaction eventually becomes oldest
and completes — no waits-for cycle can form and no livelock occurs.

Every produced history is conflict-serializable (checked in tests
against :mod:`repro.classical.sgt`), giving experiment E5 a generator of
realistic serializable flat histories — and, via
:func:`repro.classical.histories.history_to_nested_behavior`, a stream
of depth-1 nested behaviors the paper's construction must certify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .histories import FlatAbort, FlatCommit, FlatRead, FlatStep, FlatWrite, History

__all__ = ["FlatScript", "run_strict_2pl"]


@dataclass
class FlatScript:
    """A flat transaction's program: a list of (kind, object, data) steps."""

    name: str
    steps: List[Tuple[str, str, int]]  # ("r"|"w", object, data)

    @classmethod
    def random(
        cls,
        name: str,
        objects: int,
        length: int,
        rng: random.Random,
        write_probability: float = 0.5,
    ) -> "FlatScript":
        steps = []
        for _ in range(length):
            obj = f"x{rng.randrange(objects)}"
            if rng.random() < write_probability:
                steps.append(("w", obj, rng.randrange(100)))
            else:
                steps.append(("r", obj, 0))
        return cls(name, steps)


@dataclass
class _TxnState:
    script: FlatScript
    birth: int
    position: int = 0
    shared: Set[str] = field(default_factory=set)
    exclusive: Set[str] = field(default_factory=set)
    deaths: int = 0
    sleep_until: int = 0
    done: bool = False


def run_strict_2pl(
    scripts: Sequence[FlatScript],
    seed: int = 0,
    max_rounds: int = 100_000,
) -> Tuple[History, int]:
    """Execute the scripts under strict 2PL with wait-die avoidance.

    Returns ``(history, aborts)``: the interleaved flat history (with an
    abort marker per wait-die death; each victim is retried under a
    ``#retryN``-suffixed name until it commits) and the death count.
    """
    rng = random.Random(seed)
    states: Dict[str, _TxnState] = {}
    for birth, script in enumerate(scripts):
        states[script.name] = _TxnState(script=script, birth=birth)
    history: List[FlatStep] = []
    shared_locks: Dict[str, Set[str]] = {}
    exclusive_locks: Dict[str, str] = {}
    deaths = 0
    retry_counter = 0

    def release_all(txn: _TxnState) -> None:
        for obj in txn.shared:
            shared_locks.get(obj, set()).discard(txn.script.name)
        for obj in txn.exclusive:
            if exclusive_locks.get(obj) == txn.script.name:
                del exclusive_locks[obj]
        txn.shared.clear()
        txn.exclusive.clear()

    def incompatible_holders(name: str, obj: str, kind: str) -> Set[str]:
        holders: Set[str] = set()
        exclusive = exclusive_locks.get(obj)
        if exclusive is not None and exclusive != name:
            holders.add(exclusive)
        if kind == "w":
            holders |= shared_locks.get(obj, set()) - {name}
        return holders

    for round_number in range(max_rounds):
        runnable = [
            t
            for t in states.values()
            if not t.done and t.sleep_until <= round_number
        ]
        if not runnable:
            if all(t.done for t in states.values()):
                break
            continue  # everyone backing off; let the clock advance
        rng.shuffle(runnable)
        for txn in runnable:
            name = txn.script.name
            if txn.position >= len(txn.script.steps):
                history.append(FlatCommit(name))
                release_all(txn)
                txn.done = True
                continue
            kind, obj, data = txn.script.steps[txn.position]
            blockers = incompatible_holders(name, obj, kind)
            if not blockers:
                if kind == "r":
                    shared_locks.setdefault(obj, set()).add(name)
                    txn.shared.add(obj)
                    history.append(FlatRead(name, obj))
                else:
                    exclusive_locks[obj] = name
                    txn.exclusive.add(obj)
                    history.append(FlatWrite(name, obj, data))
                txn.position += 1
                continue
            oldest_blocker = min(states[holder].birth for holder in blockers)
            if txn.birth < oldest_blocker:
                continue  # older than every holder: wait politely
            # wait-die: the younger requester dies and retries later,
            # keeping its original timestamp so it cannot starve.
            release_all(txn)
            history.append(FlatAbort(name))
            deaths += 1
            retry_counter += 1
            del states[name]
            retry_name = f"{txn.script.name.split('#', 1)[0]}#retry{retry_counter}"
            retry = _TxnState(
                script=FlatScript(retry_name, list(txn.script.steps)),
                birth=txn.birth,
                deaths=txn.deaths + 1,
                sleep_until=round_number + 1 + min(txn.deaths, 8),
            )
            states[retry_name] = retry
    return tuple(history), deaths
