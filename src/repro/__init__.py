"""repro — A Serialization Graph Construction for Nested Transactions.

An executable reproduction of Fekete, Lynch & Weihl (PODS 1990): the
nested-transaction system model of Lynch & Merritt, the serialization
graph construction whose acyclicity (with appropriate return values)
certifies serial correctness for ``T0``, and the two algorithms the
paper verifies with it — Moss' read/write locking and undo logging for
arbitrary data types.

Quick start::

    from repro import (
        WorkloadConfig, generate_workload, make_generic_system,
        MossRWLockingObject, EagerInformPolicy, run_system, certify,
    )

    system_type, programs = generate_workload(WorkloadConfig(seed=7))
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    result = run_system(system, EagerInformPolicy(seed=7), system_type)
    certificate = certify(result.behavior, system_type)
    assert certificate.certified          # Theorem 17 in action
    print(certificate.explain())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction results.
"""

from .core import (
    CONFLICT,
    OK,
    PRECEDES,
    ROOT,
    Abort,
    Access,
    Action,
    AffectsRelation,
    Behavior,
    Certificate,
    Commit,
    ConflictCache,
    Create,
    CycleError,
    Digraph,
    HistoryIndex,
    IncrementalTopology,
    InformAbort,
    InformCommit,
    ObjectName,
    OnlineCertifier,
    OnlineVerdict,
    Operation,
    OracleResult,
    ReadOp,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    ReturnValueViolation,
    RWSpec,
    SerializationGraph,
    SiblingEdge,
    SiblingOrder,
    StatusIndex,
    SystemType,
    TransactionName,
    WitnessError,
    WriteOp,
    build_serialization_graph,
    build_witness,
    certify,
    check_appropriate_return_values,
    check_current_and_safe,
    clean_projection,
    conflict_pairs,
    enumerate_sibling_orders,
    final_value,
    has_appropriate_return_values,
    has_appropriate_return_values_rw,
    is_current,
    is_safe,
    is_serially_correct_for_root,
    is_suitable,
    lca,
    oracle_serially_correct,
    perform,
    precedes_pairs,
    project_object,
    project_transaction,
    serial_projection,
    serializability_theorem_applies,
    validate_serial_behavior,
    view,
    visible_projection,
    dump_case,
    load_case,
    ConflictWitness,
    CycleExplanation,
    EdgeExplanation,
    PrecedesWitness,
    explain_behavior,
    explain_cycle,
    explain_edge,
)
from .obs import (
    LATENCY_BUCKETS,
    NULL_TRACER,
    FlightRecorder,
    JSONLFileSink,
    LoggingSink,
    MetricsHooks,
    MetricsRegistry,
    NullTracer,
    ObsHooks,
    P2Quantile,
    RingBufferSink,
    SnapshotExporter,
    Span,
    Tracer,
    bucket_quantile,
    latency_histogram,
    load_jsonl_trace,
    load_postmortems,
    load_snapshots,
    log_buckets,
    parse_prometheus,
    prometheus_name,
    render_registry,
    span_coverage,
    to_prometheus,
)
from .parallel import (
    CaseVerdict,
    certify_corpus,
    record_corpus,
    simulate_corpus,
)
from .report import (
    behavior_summary,
    certificate_report,
    explanation_report,
    serialization_graph_to_dot,
)
from .automata import Composition, IOAutomaton, replay_schedule
from .classical import (
    FlatScript,
    classical_edges,
    history_to_nested_behavior,
    is_conflict_serializable,
    random_history,
    run_strict_2pl,
)
from .extensions import MVTORWObject
from .generic import (
    GenericController,
    GenericObject,
    ValidationReport,
    make_generic_system,
    validate_object_algorithm,
)
from .locking import (
    MossRWLockingObject,
    MossState,
    ReadUpdateLockingObject,
    is_lock_visible,
    is_local_orphan,
    is_locally_visible,
)
from .serial import (
    SerialRWObject,
    SerialScheduler,
    SerialTypedObject,
    SimpleDatabase,
    check_simple_behavior,
    enumerate_serial_behaviors,
    make_serial_system,
)
from .sim import (
    AbortInjector,
    BankAccountKind,
    MapKind,
    CounterKind,
    EagerInformPolicy,
    OrphanFreePolicy,
    QueueKind,
    RandomPolicy,
    RegisterKind,
    RoundRobinPolicy,
    RunResult,
    RunStats,
    RWKind,
    SetKind,
    TransactionProgram,
    WorkloadConfig,
    generate_workload,
    op,
    par,
    read,
    run_system,
    seq,
    sub,
    write,
)
from .spec import (
    BankAccountType,
    CounterType,
    DataType,
    QueueType,
    RegisterType,
    SetType,
    verify_commutativity_table,
)
from .undo import UndoLoggingObject, UndoLogState

__version__ = "1.0.0"

__all__ = [name for name in dir() if not name.startswith("_")]
