"""Composition of I/O automata (Section 2.1).

A composition runs a strongly compatible collection of automata in
lockstep: an action of the composite is an action of some subset of the
components; every component having the action performs it, the rest stay
put.  An output of the composite is an output of any component; inputs of
the composite are actions that are inputs of some component and outputs
of none.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..core.actions import Action
from .base import IOAutomaton

__all__ = ["Composition"]


class Composition(IOAutomaton):
    """The composition of a list of I/O automata.

    Component names must be unique; states of the composite are dicts
    keyed by component name (copied on write, so effects stay pure).
    """

    def __init__(self, components: Sequence[IOAutomaton], name: str = "system") -> None:
        self.name = name
        self.components: Tuple[IOAutomaton, ...] = tuple(components)
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"component names must be unique: {names}")
        self._check_strong_compatibility()

    def _check_strong_compatibility(self) -> None:
        # With predicate signatures we cannot enumerate intersections; we
        # enforce the checkable half: no probing here, output uniqueness is
        # verified dynamically in `effect`.
        return None

    # -- signature -------------------------------------------------------

    def is_input(self, action: Action) -> bool:
        some_input = any(c.is_input(action) for c in self.components)
        some_output = any(c.is_output(action) for c in self.components)
        return some_input and not some_output

    def is_output(self, action: Action) -> bool:
        return any(c.is_output(action) for c in self.components)

    # -- transitions ------------------------------------------------------

    def initial_state(self) -> Dict[str, Any]:
        return {c.name: c.initial_state() for c in self.components}

    def enabled(self, state: Dict[str, Any], action: Action) -> bool:
        owners = [c for c in self.components if c.is_output(action)]
        if len(owners) > 1:
            raise ValueError(
                f"{action} is an output of multiple components: "
                f"{[c.name for c in owners]}"
            )
        if owners:
            return owners[0].enabled(state[owners[0].name], action)
        return any(c.is_input(action) for c in self.components)

    def effect(self, state: Dict[str, Any], action: Action) -> Dict[str, Any]:
        new_state = dict(state)
        for component in self.components:
            if component.is_action(action):
                new_state[component.name] = component.effect(
                    state[component.name], action
                )
        return new_state

    def enabled_outputs(self, state: Dict[str, Any]) -> Iterator[Action]:
        for component in self.components:
            for action in component.enabled_outputs(state[component.name]):
                yield action
