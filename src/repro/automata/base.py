"""The I/O automaton model (Section 2.1), executable form.

An :class:`IOAutomaton` has input, output and internal actions; inputs
must be enabled in every state, while locally-controlled actions
(outputs and internals) carry preconditions.  States are treated as
opaque values that :meth:`IOAutomaton.effect` maps functionally — an
effect returns a *new* state and never mutates its argument, so the
exploration utilities (enumeration of enabled actions, schedule
replay) can branch freely.

Because the action universe of a transaction system is infinite (one
action per transaction name and value), signatures are predicates, and
automata additionally enumerate the *candidate* locally-controlled
actions enabled in a given state via :meth:`IOAutomaton.enabled_outputs`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.actions import Action

__all__ = ["IOAutomaton", "Execution", "replay_schedule", "behavior_of"]


class IOAutomaton(ABC):
    """An input/output automaton with a functional transition relation."""

    name: str = "automaton"

    @abstractmethod
    def initial_state(self) -> Any:
        """The (single) start state.  Multiple start states are not needed here."""

    @abstractmethod
    def is_input(self, action: Action) -> bool:
        """Signature predicate for input actions."""

    @abstractmethod
    def is_output(self, action: Action) -> bool:
        """Signature predicate for output actions."""

    def is_action(self, action: Action) -> bool:
        """True iff ``action`` belongs to this automaton's external signature."""
        return self.is_input(action) or self.is_output(action)

    @abstractmethod
    def enabled(self, state: Any, action: Action) -> bool:
        """Is ``action`` enabled in ``state``?

        Implementations must return True for every input action in every
        state (input-enabledness); the test suite checks this.
        """

    @abstractmethod
    def effect(self, state: Any, action: Action) -> Any:
        """The state after performing ``action`` in ``state`` (pure)."""

    def enabled_outputs(self, state: Any) -> Iterator[Action]:
        """Enumerate locally-controlled actions enabled in ``state``.

        The default is empty (purely reactive automata override this).
        Used by the simulation driver to discover what can happen next.
        """
        return iter(())

    def step(self, state: Any, action: Action) -> Any:
        """Perform one step, checking enabledness for locally-controlled actions."""
        if self.is_output(action) and not self.enabled(state, action):
            raise ValueError(f"{self.name}: output {action} not enabled")
        return self.effect(state, action)


@dataclass
class Execution:
    """A finite execution: alternating states and actions, ending in a state."""

    automaton: IOAutomaton
    states: List[Any]
    actions: List[Action]

    @property
    def final_state(self) -> Any:
        return self.states[-1]

    def schedule(self) -> Tuple[Action, ...]:
        return tuple(self.actions)


def replay_schedule(
    automaton: IOAutomaton, schedule: Sequence[Action], strict: bool = True
) -> Execution:
    """Run ``schedule`` from the initial state, returning the execution.

    With ``strict`` (the default), locally-controlled actions must be
    enabled when performed — replaying a schedule that is not a schedule
    of the automaton raises ``ValueError``.  Actions outside the
    automaton's signature are rejected; use :func:`behavior_of` style
    projection before replaying a composite schedule.
    """
    state = automaton.initial_state()
    states = [state]
    actions: List[Action] = []
    for action in schedule:
        if not automaton.is_action(action):
            raise ValueError(f"{automaton.name}: {action} not in signature")
        if strict:
            state = automaton.step(state, action)
        else:
            state = automaton.effect(state, action)
        states.append(state)
        actions.append(action)
    return Execution(automaton, states, actions)


def behavior_of(
    automaton: IOAutomaton, schedule: Sequence[Action]
) -> Tuple[Action, ...]:
    """Project a composite schedule onto this automaton's external actions."""
    return tuple(action for action in schedule if automaton.is_action(action))
