"""The I/O automaton framework (Section 2.1)."""

from .base import Execution, IOAutomaton, behavior_of, replay_schedule
from .composition import Composition

__all__ = ["Execution", "IOAutomaton", "behavior_of", "replay_schedule", "Composition"]
