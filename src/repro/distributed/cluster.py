"""The cluster timeline: routing global transactions onto sites.

A distributed workload is a set of *global transactions*, each a flat
sequence of reads and writes on *variables* (not replicas).  Routing
turns that into per-site plans under the available-copies discipline:

* a **read** is served by any one reachable, up, *readable* copy
  (seeded choice) — the recovery-time write barrier makes a replicated
  copy unreadable from recovery until a fresh write lands on it;
* a **write** lands on *every* reachable up copy; copies that are up
  but unreachable (a network partition) silently miss it and keep
  serving reads — the stale-replica-read hazard;
* a **site crash** dooms every transaction that accessed the site
  before reaching its commit point (the classical available-copies
  abort rule), and arms the write barrier for the site's replicated
  variables;
* a transaction that cannot find any copy to read or write is doomed on
  the spot.

The result is one ordered access plan per site plus the doomed set;
:mod:`repro.distributed.simulate` replays each plan through a site-local
generic controller (with :class:`repro.sim.faults.ScriptedAbortInjector`
realising the doomed fates), and the certifier merges the per-site
serialization graphs.  Everything is deterministic in ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple, Union

from ..core.names import ObjectName
from ..core.rw_semantics import ReadOp, WriteOp
from ..obs.metrics import MetricsRegistry
from ..sim.faults import SiteCrash, SiteRecovery
from .placement import Placement

__all__ = [
    "DRead",
    "DWrite",
    "DistOp",
    "GlobalTransaction",
    "PartitionWindow",
    "ClusterSchedule",
    "DistributedConfig",
    "RoutedAccess",
    "RoutingResult",
    "route_workload",
]


@dataclass(frozen=True)
class DRead:
    """Read a variable (served by one available copy)."""

    variable: str


@dataclass(frozen=True)
class DWrite:
    """Write a variable (lands on every reachable up copy)."""

    variable: str
    value: int


DistOp = Union[DRead, DWrite]


@dataclass(frozen=True)
class GlobalTransaction:
    """One top-level distributed transaction: ordered ops plus a home site.

    The home site models where the client is attached; reachability
    during a partition is judged from it.
    """

    name: str
    ops: Tuple[DistOp, ...]
    home: int = 1


@dataclass(frozen=True)
class PartitionWindow:
    """A network partition active for routing steps ``start <= k < end``.

    ``groups`` are the connectivity classes; a site in no group is
    isolated.  Sites in different groups are mutually unreachable while
    the window is active.
    """

    groups: Tuple[FrozenSet[int], ...]
    start: int
    end: int

    def active(self, step: int) -> bool:
        return self.start <= step < self.end

    def connected(self, a: int, b: int) -> bool:
        if a == b:
            return True
        return any(a in group and b in group for group in self.groups)


@dataclass(frozen=True)
class ClusterSchedule:
    """The timed fault plan: crashes, recoveries, and partitions."""

    crashes: Tuple[SiteCrash, ...] = ()
    recoveries: Tuple[SiteRecovery, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()


@dataclass
class DistributedConfig:
    """Parameters of one distributed simulation."""

    sites: int = 2
    variables: Tuple[str, ...] = ()
    transactions: Tuple[GlobalTransaction, ...] = ()
    schedule: ClusterSchedule = field(default_factory=ClusterSchedule)
    seed: int = 0
    #: Refuse reads from a recovered replicated copy until a write lands.
    recovery_barrier: bool = True
    #: Initial value per variable (default 0 for unlisted ones).
    initial_values: Mapping[str, int] = field(default_factory=dict)
    #: Step budget for each site-local simulated run.
    max_steps: int = 10_000

    def __post_init__(self) -> None:
        if not self.variables:
            # the classical layout: x1 .. x{2*sites}, odd pinned, even
            # replicated everywhere
            self.variables = tuple(
                f"x{i}" for i in range(1, 2 * self.sites + 1)
            )
        for txn in self.transactions:
            if not 1 <= txn.home <= self.sites:
                raise ValueError(
                    f"{txn.name}: home site {txn.home} outside 1..{self.sites}"
                )

    def placement(self) -> Placement:
        return Placement(self.sites, self.variables)

    def initial_value(self, variable: str) -> int:
        return dict(self.initial_values).get(variable, 0)


@dataclass(frozen=True)
class RoutedAccess:
    """One access a transaction routed to one site."""

    transaction: str
    component: str
    site: int
    obj: ObjectName
    op: Union[ReadOp, WriteOp]


@dataclass
class RoutingResult:
    """The outcome of the routing pass."""

    plans: Dict[int, List[RoutedAccess]]
    doomed: Dict[str, str]
    #: Reads that found a copy only because the barrier excluded others,
    #: counted per excluded copy.
    barrier_excluded_reads: int
    #: Up-but-unreachable copies that missed a write (stale hazard).
    stale_risk: Dict[str, Set[int]]
    steps: int

    def routed_accesses(self) -> int:
        return sum(len(plan) for plan in self.plans.values())


class _ClusterState:
    """Mutable routing-time state of the cluster."""

    def __init__(self, config: DistributedConfig, placement: Placement) -> None:
        self.up: Set[int] = set(placement.sites())
        self.readable: Dict[Tuple[int, str], bool] = {
            (site, variable): True
            for variable in placement.variables
            for site in placement.sites_for(variable)
        }
        self.config = config
        self.placement = placement

    def crash(self, site: int) -> None:
        self.up.discard(site)
        for variable in self.placement.variables_at(site):
            self.readable[(site, variable)] = False

    def recover(self, site: int) -> None:
        self.up.add(site)
        for variable in self.placement.variables_at(site):
            replicated = self.placement.is_replicated(variable)
            if not replicated or not self.config.recovery_barrier:
                # a single copy cannot be stale; without the barrier,
                # recovered replicas serve reads immediately (unsafe)
                self.readable[(site, variable)] = True


def route_workload(
    config: DistributedConfig,
    placement: Optional[Placement] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RoutingResult:
    """Route ``config.transactions`` onto sites; deterministic in ``seed``.

    The routing interleaving (which transaction issues its next op) is a
    seeded uniform choice among unfinished, undoomed transactions; fault
    events apply at their scheduled steps before the next op is issued.
    A transaction reaches its *commit point* when its last op routes —
    a crash after that no longer dooms it.
    """
    placement = placement if placement is not None else config.placement()
    state = _ClusterState(config, placement)
    rng = random.Random(config.seed)
    plans: Dict[int, List[RoutedAccess]] = {
        site: [] for site in placement.sites()
    }
    doomed: Dict[str, str] = {}
    accessed: Dict[str, Set[int]] = {txn.name: set() for txn in config.transactions}
    progress: Dict[str, int] = {txn.name: 0 for txn in config.transactions}
    by_name: Dict[str, GlobalTransaction] = {
        txn.name: txn for txn in config.transactions
    }
    if len(by_name) != len(config.transactions):
        raise ValueError("duplicate transaction names")
    events: List[Tuple[int, int, int]] = sorted(
        [(crash.at_step, 0, crash.site) for crash in config.schedule.crashes]
        + [(rec.at_step, 1, rec.site) for rec in config.schedule.recoveries]
    )
    barrier_excluded = 0
    stale_risk: Dict[str, Set[int]] = {}
    step = 0
    applied = 0

    def doom(name: str, reason: str) -> None:
        doomed[name] = reason
        if metrics is not None:
            metrics.inc("distributed.doomed")

    def reachable(a: int, b: int) -> bool:
        return all(
            window.connected(a, b)
            for window in config.schedule.partitions
            if window.active(step)
        )

    while True:
        while applied < len(events) and events[applied][0] <= step:
            _, kind, site = events[applied]
            applied += 1
            if kind == 0:
                state.crash(site)
                if metrics is not None:
                    metrics.inc("distributed.crashes")
                for name, sites in accessed.items():
                    finished = progress[name] >= len(by_name[name].ops)
                    if site in sites and not finished and name not in doomed:
                        doom(name, f"site s{site} crashed mid-transaction")
            else:
                state.recover(site)
                if metrics is not None:
                    metrics.inc("distributed.recoveries")
        candidates = sorted(
            name
            for name, txn in by_name.items()
            if progress[name] < len(txn.ops) and name not in doomed
        )
        if not candidates:
            break
        name = rng.choice(candidates)
        txn = by_name[name]
        op = txn.ops[progress[name]]
        index = progress[name]
        progress[name] = index + 1
        step += 1
        holders = placement.sites_for(op.variable)
        available = [
            site
            for site in holders
            if site in state.up and reachable(txn.home, site)
        ]
        if isinstance(op, DRead):
            readable = [
                site for site in available if state.readable[(site, op.variable)]
            ]
            excluded = len(available) - len(readable)
            barrier_excluded += excluded
            if metrics is not None and excluded:
                metrics.inc("distributed.routed.blocked_barrier", excluded)
            if not readable:
                reason = (
                    f"recovery barrier: no readable copy of {op.variable}"
                    if available
                    else f"no available copy of {op.variable} to read"
                )
                doom(name, reason)
                continue
            site = rng.choice(readable)
            plans[site].append(
                RoutedAccess(
                    name,
                    f"o{index}r_{op.variable}@s{site}",
                    site,
                    placement.replica(op.variable, site),
                    ReadOp(),
                )
            )
            accessed[name].add(site)
            if metrics is not None:
                metrics.inc("distributed.routed.reads")
        else:
            if not available:
                doom(name, f"no available copy of {op.variable} to write")
                continue
            for site in available:
                plans[site].append(
                    RoutedAccess(
                        name,
                        f"o{index}w_{op.variable}@s{site}",
                        site,
                        placement.replica(op.variable, site),
                        WriteOp(op.value),
                    )
                )
                accessed[name].add(site)
                state.readable[(site, op.variable)] = True
                stale_risk.setdefault(op.variable, set()).discard(site)
            missed = [
                site
                for site in holders
                if site not in available and site in state.up
            ]
            for site in missed:
                stale_risk.setdefault(op.variable, set()).add(site)
            if metrics is not None:
                metrics.inc("distributed.routed.writes")
                metrics.inc("distributed.routed.write_replicas", len(available))
    stale_risk = {
        variable: sites for variable, sites in stale_risk.items() if sites
    }
    if metrics is not None:
        metrics.set_gauge(
            "distributed.stale_replicas",
            sum(len(sites) for sites in stale_risk.values()),
        )
    return RoutingResult(plans, doomed, barrier_excluded, stale_risk, step)
