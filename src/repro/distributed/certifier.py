"""Global certification: merging per-site serialization graphs.

A site is just a subtree of the paper's transaction tree, so each site's
history certifies with the unchanged single-site machinery
(:func:`repro.core.correctness.certify`).  What the sites cannot see is
each other's ordering decisions: site 1 may serialize ``t1`` before
``t2`` while site 2 serializes ``t2`` before ``t1`` — every *local*
serialization graph acyclic, yet no global serial order exists.

The global certifier merges the per-site graphs: sibling groups with the
same parent union their nodes and edges (top-level transaction names are
shared across sites, so the root group is where cross-site cycles
appear; leaf access names carry an ``@s<site>`` suffix, so site-local
groups never collide).  The merged graph acyclic *and* every site's ARV
check clean is the distributed analogue of Theorem 8: a single global
serial order exists that every site's history is consistent with.

:class:`DistributedCertificate` reports both verdicts side by side and
flags *divergence* — the runs where local-only certification would have
wrongly passed — plus replica staleness (committed final values of the
same variable disagreeing across sites, the available-copies hazard of
reads served inside a partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.actions import Behavior
from ..core.correctness import Certificate, certify
from ..core.names import SystemType, TransactionName
from ..core.rw_semantics import clean_final_value
from ..core.serialization_graph import SerializationGraph, SiblingEdge
from ..obs.metrics import MetricsRegistry
from .placement import Placement
from .simulate import DistributedRun

__all__ = [
    "DistributedCertificate",
    "merge_site_graphs",
    "replica_divergence",
    "certify_sites",
    "certify_distributed",
]


def merge_site_graphs(
    graphs: Mapping[int, SerializationGraph],
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[SerializationGraph, Dict[SiblingEdge, Tuple[int, ...]]]:
    """Union per-site serialization graphs into one global graph.

    Returns the merged graph and each edge's provenance — the sorted
    sites that contributed it.  Sibling groups under the same parent
    merge; the root group (top-level transactions, shared across sites)
    is where cross-site cycles can appear.
    """
    merged = SerializationGraph()
    provenance: Dict[SiblingEdge, List[int]] = {}
    for site in sorted(graphs):
        graph = graphs[site]
        for node in graph.nodes():
            merged.add_node(node)
        for edge in graph.edges():
            merged.add_edge(edge)
            provenance.setdefault(edge, []).append(site)
    edge_sites = {
        edge: tuple(sites) for edge, sites in provenance.items()
    }
    if metrics is not None:
        metrics.set_gauge("distributed.merge.groups", len(merged.parents()))
        metrics.set_gauge("distributed.merge.edges", merged.edge_count())
    return merged, edge_sites


@dataclass
class DistributedCertificate:
    """Local and global verdicts for one distributed run, side by side."""

    site_certificates: Dict[int, Certificate]
    global_graph: SerializationGraph
    global_cycle: Optional[Tuple[TransactionName, List[TransactionName]]]
    #: Each merged edge -> the sites whose local graphs contributed it.
    edge_sites: Dict[SiblingEdge, Tuple[int, ...]] = field(default_factory=dict)
    #: Variable -> {site: committed final value} where sites disagree.
    divergent_replicas: Dict[str, Dict[int, object]] = field(default_factory=dict)

    @property
    def locally_certified(self) -> bool:
        """Every site's own certificate passed."""
        return all(cert.certified for cert in self.site_certificates.values())

    @property
    def globally_certified(self) -> bool:
        """Every site ARV-clean and the merged graph acyclic."""
        return (
            all(
                not cert.arv_violations
                for cert in self.site_certificates.values()
            )
            and self.global_cycle is None
        )

    @property
    def divergent(self) -> bool:
        """True when local-only certification would have wrongly passed."""
        return self.locally_certified and not self.globally_certified

    def cycle_edges(self) -> List[Tuple[SiblingEdge, Tuple[int, ...]]]:
        """The merged-cycle edges with their site provenance.

        Empty when the global graph is acyclic.  Each hop of the cycle
        may have several labelled edges; all are reported.
        """
        if self.global_cycle is None:
            return []
        # find_cycle repeats the first node last, so consecutive pairs
        # already close the loop
        _, nodes = self.global_cycle
        hops = {(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)}
        return [
            (edge, sites)
            for edge, sites in sorted(
                self.edge_sites.items(),
                key=lambda item: (item[0].source, item[0].target, item[0].kind),
            )
            if (edge.source, edge.target) in hops
        ]

    def summary(self) -> str:
        """A human-readable multi-line verdict."""
        lines = []
        for site in sorted(self.site_certificates):
            cert = self.site_certificates[site]
            verdict = "certified" if cert.certified else "REJECTED"
            lines.append(
                f"site s{site}: {verdict} "
                f"({len(list(cert.graph.edges()))} local edges)"
            )
        if self.globally_certified:
            lines.append("global: certified (merged graph acyclic, ARV clean)")
        else:
            lines.append("global: REJECTED")
            if self.global_cycle is not None:
                parent, nodes = self.global_cycle
                path = " -> ".join(str(n) for n in nodes)
                lines.append(f"  merged SG cycle under {parent}: {path}")
                for edge, sites in self.cycle_edges():
                    where = ", ".join(f"s{site}" for site in sites)
                    lines.append(f"    {edge}  (from {where})")
        if self.divergent:
            lines.append(
                "DIVERGENCE: every per-site graph is acyclic, but the "
                "merged global graph is not — local-only certification "
                "would have wrongly passed this run"
            )
        for variable in sorted(self.divergent_replicas):
            values = self.divergent_replicas[variable]
            detail = ", ".join(
                f"s{site}={values[site]!r}" for site in sorted(values)
            )
            lines.append(f"stale replicas of {variable}: {detail}")
        return "\n".join(lines)


def replica_divergence(
    site_histories: Mapping[int, Tuple[Behavior, SystemType]],
    placement: Placement,
) -> Dict[str, Dict[int, object]]:
    """Committed final values per replica, for variables where sites differ.

    Replays each site's *clean* (committed) write sequence; a replicated
    variable whose copies end at different values was left stale
    somewhere — typically by a partition-missed or crash-missed write.
    """
    divergent: Dict[str, Dict[int, object]] = {}
    for variable in placement.variables:
        sites = placement.sites_for(variable)
        if len(sites) < 2:
            continue
        values: Dict[int, object] = {}
        for site in sites:
            history = site_histories.get(site)
            if history is None:
                continue
            behavior, system_type = history
            replica = placement.replica(variable, site)
            if replica not in system_type.object_names():
                continue
            values[site] = clean_final_value(behavior, replica, system_type)
        if len(set(map(repr, values.values()))) > 1:
            divergent[variable] = values
    return divergent


def _divergent_replicas(run: DistributedRun) -> Dict[str, Dict[int, object]]:
    return replica_divergence(
        {
            site: (site_run.behavior, site_run.system_type)
            for site, site_run in run.site_runs.items()
        },
        run.placement,
    )


def certify_sites(
    site_histories: Mapping[int, Tuple[Behavior, SystemType]],
    metrics: Optional[MetricsRegistry] = None,
    construct_witness: bool = False,
    divergent_replicas: Optional[Dict[str, Dict[int, object]]] = None,
) -> DistributedCertificate:
    """Certify per-site histories locally, then the merged graph globally.

    The per-site pass is the unchanged Theorem 8 certifier on each
    site-local behavior; the global pass merges the per-site graphs and
    re-checks acyclicity.  Hand-built scenarios feed this directly;
    simulated runs go through :func:`certify_distributed`.
    """
    site_certificates: Dict[int, Certificate] = {}
    for site in sorted(site_histories):
        behavior, system_type = site_histories[site]
        cert = certify(
            behavior, system_type, construct_witness=construct_witness
        )
        site_certificates[site] = cert
        if metrics is not None:
            metrics.inc(
                "distributed.certify.site_certified"
                if cert.certified
                else "distributed.certify.site_rejected"
            )
    merged, edge_sites = merge_site_graphs(
        {site: cert.graph for site, cert in site_certificates.items()},
        metrics,
    )
    global_cycle = merged.find_cycle()
    certificate = DistributedCertificate(
        site_certificates,
        merged,
        global_cycle,
        edge_sites,
        divergent_replicas or {},
    )
    if metrics is not None:
        metrics.inc(
            "distributed.certify.global_certified"
            if certificate.globally_certified
            else "distributed.certify.global_rejected"
        )
        if certificate.divergent:
            metrics.inc("distributed.certify.divergence")
        metrics.set_gauge(
            "distributed.replica.divergent_vars",
            len(certificate.divergent_replicas),
        )
    return certificate


def certify_distributed(
    run: DistributedRun,
    metrics: Optional[MetricsRegistry] = None,
    construct_witness: bool = False,
) -> DistributedCertificate:
    """Certify a simulated :class:`DistributedRun` locally and globally.

    Replica divergence (stale copies — committed final values of the
    same variable disagreeing across sites) is reported alongside, but
    does not affect the serializability verdict: a run can be globally
    serializable and still expose stale reads to later transactions.
    """
    return certify_sites(
        {
            site: (site_run.behavior, site_run.system_type)
            for site, site_run in run.site_runs.items()
        },
        metrics=metrics,
        construct_witness=construct_witness,
        divergent_replicas=_divergent_replicas(run),
    )
