"""Variable placement across sites: even/odd replication and replica names.

A distributed deployment replicates some variables and pins others to a
single site.  Following the classical available-copies exercise (and
the ADB replicated-database lineage), the default rule is indexed:

* an **even**-indexed variable (``x2``, ``x4``, ...) is replicated at
  *every* site;
* an **odd**-indexed variable (``x1``, ``x3``, ...) lives at exactly one
  site, ``1 + (index mod n_sites)``.

Each copy of a variable at a site is its own *replica object* in the
site-local system type, named ``<variable>@s<site>`` — so the paper's
single-site machinery (generic objects, serialization graphs, ARV
checks) applies per site unchanged, and the global certifier only has
to merge the per-site graphs (see :mod:`repro.distributed.certifier`).

Explicit placements override the indexed rule for workloads whose
variables are not named ``<prefix><index>``.
"""

from __future__ import annotations

import re
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.names import ObjectName

__all__ = [
    "Placement",
    "replica_name",
    "replica_variable",
    "replica_site",
]

#: Replica object names are ``<variable>@s<site>``.
_REPLICA_RE = re.compile(r"^(?P<variable>.+)@s(?P<site>[0-9]+)$")

#: The trailing integer of an indexed variable name (``x12`` -> 12).
_INDEX_RE = re.compile(r"(?P<index>[0-9]+)$")


def replica_name(variable: str, site: int) -> ObjectName:
    """The object name of ``variable``'s copy at ``site``."""
    return ObjectName(f"{variable}@s{site}")


def _split_replica(obj: ObjectName) -> Tuple[str, int]:
    match = _REPLICA_RE.match(obj.name)
    if match is None:
        raise ValueError(f"{obj} is not a replica object name (<var>@s<site>)")
    return match.group("variable"), int(match.group("site"))


def replica_variable(obj: ObjectName) -> str:
    """The variable a replica object name copies (``x2@s1`` -> ``x2``)."""
    return _split_replica(obj)[0]


def replica_site(obj: ObjectName) -> int:
    """The site a replica object name lives at (``x2@s1`` -> ``1``)."""
    return _split_replica(obj)[1]


class Placement:
    """Which sites hold a copy of each variable.

    ``variables`` fixes the workload's variable set; ``explicit`` maps a
    variable to its site tuple, overriding the even/odd rule.  Sites are
    numbered ``1 .. n_sites``.
    """

    def __init__(
        self,
        n_sites: int,
        variables: Sequence[str],
        explicit: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> None:
        if n_sites < 1:
            raise ValueError("a cluster needs at least one site")
        self.n_sites = n_sites
        self.variables: Tuple[str, ...] = tuple(variables)
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(f"duplicate variables: {self.variables}")
        self._sites: Dict[str, Tuple[int, ...]] = {}
        explicit = explicit or {}
        for variable in self.variables:
            if variable in explicit:
                sites = tuple(sorted(set(explicit[variable])))
                if not sites:
                    raise ValueError(f"{variable}: empty explicit placement")
            else:
                sites = self._indexed_sites(variable)
            for site in sites:
                if not 1 <= site <= n_sites:
                    raise ValueError(
                        f"{variable}: site {site} outside 1..{n_sites}"
                    )
            self._sites[variable] = sites

    @classmethod
    def indexed(
        cls, n_sites: int, n_variables: int, prefix: str = "x"
    ) -> "Placement":
        """The classical layout: variables ``<prefix>1 .. <prefix>N``."""
        return cls(
            n_sites, tuple(f"{prefix}{i}" for i in range(1, n_variables + 1))
        )

    def _indexed_sites(self, variable: str) -> Tuple[int, ...]:
        match = _INDEX_RE.search(variable)
        if match is None:
            raise ValueError(
                f"{variable!r} has no trailing index; pass an explicit "
                f"placement for it"
            )
        index = int(match.group("index"))
        if index % 2 == 0:
            return tuple(range(1, self.n_sites + 1))
        return (1 + index % self.n_sites,)

    # -- queries ---------------------------------------------------------

    def sites(self) -> Tuple[int, ...]:
        """All site ids, ``1 .. n_sites``."""
        return tuple(range(1, self.n_sites + 1))

    def sites_for(self, variable: str) -> Tuple[int, ...]:
        """The sites holding a copy of ``variable``, sorted."""
        try:
            return self._sites[variable]
        except KeyError:
            raise KeyError(f"unknown variable {variable!r}") from None

    def is_replicated(self, variable: str) -> bool:
        """True iff ``variable`` has copies at more than one site."""
        return len(self.sites_for(variable)) > 1

    def variables_at(self, site: int) -> Tuple[str, ...]:
        """The variables with a copy at ``site``, in declaration order."""
        return tuple(
            variable
            for variable in self.variables
            if site in self._sites[variable]
        )

    def replica(self, variable: str, site: int) -> ObjectName:
        """The replica object name; raises when ``site`` holds no copy."""
        if site not in self.sites_for(variable):
            raise ValueError(f"site {site} holds no copy of {variable!r}")
        return replica_name(variable, site)

    def __repr__(self) -> str:
        return (
            f"Placement(sites={self.n_sites}, "
            f"variables={len(self.variables)}, "
            f"replicated={sum(1 for v in self.variables if self.is_replicated(v))})"
        )
