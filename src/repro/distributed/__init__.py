"""Multi-site certification: replication, site failure, global merging.

A *site* is just a subtree of the paper's transaction tree, so each
site's history certifies with the unchanged single-site machinery; what
no site can see is the other sites' ordering decisions.  This package
routes replicated workloads onto per-site generic-controller systems
(:mod:`~repro.distributed.cluster`, :mod:`~repro.distributed.simulate`),
merges the per-site serialization graphs, and certifies cross-site
serial correctness (:mod:`~repro.distributed.certifier`) — reporting the
runs where local-only certification would have wrongly passed.

See ``docs/DISTRIBUTED.md`` for the model, the placement and
available-copies rules, and runnable examples.
"""

from .certifier import (
    DistributedCertificate,
    certify_distributed,
    certify_sites,
    merge_site_graphs,
    replica_divergence,
)
from .cluster import (
    ClusterSchedule,
    DistributedConfig,
    DRead,
    DWrite,
    GlobalTransaction,
    PartitionWindow,
    RoutedAccess,
    RoutingResult,
    route_workload,
)
from .placement import Placement, replica_name, replica_site, replica_variable
from .scenarios import (
    DIST_SCENARIOS,
    DistributedExpectation,
    build_dist_scenario,
    dist_scenario_names,
    divergence_config,
)
from .simulate import DistributedRun, SiteRun, run_distributed, site_system

__all__ = [
    "Placement",
    "replica_name",
    "replica_variable",
    "replica_site",
    "DRead",
    "DWrite",
    "GlobalTransaction",
    "PartitionWindow",
    "ClusterSchedule",
    "DistributedConfig",
    "RoutedAccess",
    "RoutingResult",
    "route_workload",
    "SiteRun",
    "DistributedRun",
    "site_system",
    "run_distributed",
    "DistributedCertificate",
    "merge_site_graphs",
    "replica_divergence",
    "certify_sites",
    "certify_distributed",
    "DistributedExpectation",
    "DIST_SCENARIOS",
    "build_dist_scenario",
    "dist_scenario_names",
    "divergence_config",
]
