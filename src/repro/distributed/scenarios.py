"""Canonical distributed scenarios: where local and global verdicts differ.

Hand-built per-site histories for the distributed analogues of the
single-site anomalies in :mod:`repro.scenarios`, spanning the verdict
matrix of :class:`repro.distributed.certifier.DistributedCertificate`:

* ``replicated-serial``      — a replicated write then a read, fully
  serial at every site and globally (both verdicts pass);
* ``partitioned-write-skew`` — the headline divergence: a partition
  splits two writers' fanouts, the heal lets each read the other's
  write at a different site; every per-site graph is acyclic but the
  merged global graph is cyclic — local-only certification would have
  wrongly passed;
* ``stale-replica-read``     — a partition-missed write leaves an
  up-but-unreachable copy stale; a later read is served from it.  Both
  verdicts pass (the histories are serializable), but the replica
  divergence report flags the stale copy;
* ``local-reject``           — a lost update inside one site: the local
  certifier already rejects, and the global verdict follows.

Each scenario returns per-site ``(behavior, system_type)`` histories, a
:class:`Placement`, and a :class:`DistributedExpectation` asserted by
the test suite and printed by ``repro distsim --scenario``.

:func:`divergence_config` is the *simulated* counterpart: a seeded
partition workload for :func:`repro.distributed.simulate.run_distributed`
whose per-site controllers order the same two transactions oppositely
for some seeds — the seed sweep in ``bench_e16_distributed.py`` measures
how often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from ..core.actions import (
    Behavior,
    Commit,
    Create,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.names import Access, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, RWSpec, WriteOp
from ..sim.faults import SiteCrash, SiteRecovery
from .cluster import (
    ClusterSchedule,
    DistributedConfig,
    DRead,
    DWrite,
    GlobalTransaction,
    PartitionWindow,
)
from .placement import Placement, replica_name

__all__ = [
    "DistributedExpectation",
    "DIST_SCENARIOS",
    "build_dist_scenario",
    "dist_scenario_names",
    "divergence_config",
]


@dataclass(frozen=True)
class DistributedExpectation:
    """Ground truth and predicted verdicts for a distributed scenario."""

    locally_certified: bool
    globally_certified: bool
    divergent: bool
    stale_variables: Tuple[str, ...]
    reason: str


#: site histories, placement, expectation
DistScenario = Tuple[
    Dict[int, Tuple[Behavior, SystemType]], Placement, DistributedExpectation
]


class _SiteBuilder:
    """Builds one site's well-formed serial-visible behavior.

    The distributed twin of the builder in :mod:`repro.scenarios`, typed
    for the strict-mypy gate and naming objects as replicas
    (``<var>@s<site>``) so merged sibling groups never collide across
    sites.
    """

    def __init__(self, site: int, objects: Dict[str, int]) -> None:
        self.site = site
        self.system_type = SystemType(
            {
                replica_name(variable, site): RWSpec(initial=value)
                for variable, value in objects.items()
            }
        )
        self.events: List[Any] = []

    def begin(self, name: str) -> TransactionName:
        txn = TransactionName((name,))
        self.events += [RequestCreate(txn), Create(txn)]
        return txn

    def access(
        self,
        parent: TransactionName,
        component: str,
        variable: str,
        operation: Any,
        value: Any,
    ) -> TransactionName:
        leaf = parent.child(f"{component}@s{self.site}")
        obj = replica_name(variable, self.site)
        self.system_type.register_access(leaf, Access(obj, operation))
        self.events += [
            RequestCreate(leaf),
            Create(leaf),
            RequestCommit(leaf, value),
            Commit(leaf),
            ReportCommit(leaf, value),
        ]
        return leaf

    def commit(self, txn: TransactionName, value: Any = "done") -> None:
        self.events += [
            RequestCommit(txn, value),
            Commit(txn),
            ReportCommit(txn, value),
        ]

    def done(self) -> Tuple[Behavior, SystemType]:
        return tuple(self.events), self.system_type


def _replicated_serial() -> DistScenario:
    placement = Placement(2, ("x2",))
    s1 = _SiteBuilder(1, {"x2": 0})
    t1 = s1.begin("t1")
    s1.access(t1, "w_x2", "x2", WriteOp(7), OK)
    s1.commit(t1)
    t2 = s1.begin("t2")
    s1.access(t2, "r_x2", "x2", ReadOp(), 7)
    s1.commit(t2)
    s2 = _SiteBuilder(2, {"x2": 0})
    u1 = s2.begin("t1")
    s2.access(u1, "w_x2", "x2", WriteOp(7), OK)
    s2.commit(u1)
    return (
        {1: s1.done(), 2: s2.done()},
        placement,
        DistributedExpectation(
            locally_certified=True,
            globally_certified=True,
            divergent=False,
            stale_variables=(),
            reason="replicated write fans out to both sites, read is "
            "serial after it; one global serial order t1 < t2 exists",
        ),
    )


def _partitioned_write_skew() -> DistScenario:
    # During a partition, t1's write of x2 lands only at s1 and t2's
    # write of x4 only at s2.  After the heal, t2 reads x2 at s1 (fresh)
    # and t1 reads x4 at s2 (fresh): s1 orders t1 < t2, s2 orders
    # t2 < t1.  Each site is perfectly serial; no global order exists.
    placement = Placement(2, ("x2", "x4"))
    s1 = _SiteBuilder(1, {"x2": 0, "x4": 0})
    t1 = s1.begin("t1")
    s1.access(t1, "w_x2", "x2", WriteOp(1), OK)
    s1.commit(t1)
    t2 = s1.begin("t2")
    s1.access(t2, "r_x2", "x2", ReadOp(), 1)
    s1.commit(t2)
    s2 = _SiteBuilder(2, {"x2": 0, "x4": 0})
    u2 = s2.begin("t2")
    s2.access(u2, "w_x4", "x4", WriteOp(1), OK)
    s2.commit(u2)
    u1 = s2.begin("t1")
    s2.access(u1, "r_x4", "x4", ReadOp(), 1)
    s2.commit(u1)
    return (
        {1: s1.done(), 2: s2.done()},
        placement,
        DistributedExpectation(
            locally_certified=True,
            globally_certified=False,
            divergent=True,
            stale_variables=("x2", "x4"),
            reason="s1 serializes t1 < t2 (conflict on x2@s1), s2 "
            "serializes t2 < t1 (conflict on x4@s2); the merged root "
            "group has the cycle t1 -> t2 -> t1 that no site can see",
        ),
    )


def _stale_replica_read() -> DistScenario:
    # t1's write of replicated x2 misses the partitioned s2, which keeps
    # serving reads: t2 reads the stale initial value there.  Both
    # histories are serializable (global order t2 < t1), so both
    # verdicts pass — only the replica divergence report exposes the
    # stale copy.
    placement = Placement(2, ("x2",))
    s1 = _SiteBuilder(1, {"x2": 0})
    t1 = s1.begin("t1")
    s1.access(t1, "w_x2", "x2", WriteOp(7), OK)
    s1.commit(t1)
    s2 = _SiteBuilder(2, {"x2": 0})
    t2 = s2.begin("t2")
    s2.access(t2, "r_x2", "x2", ReadOp(), 0)
    s2.commit(t2)
    return (
        {1: s1.done(), 2: s2.done()},
        placement,
        DistributedExpectation(
            locally_certified=True,
            globally_certified=True,
            divergent=False,
            stale_variables=("x2",),
            reason="the partition-missed write leaves x2@s2 at its "
            "initial value while x2@s1 holds 7; serializable (t2 < t1) "
            "but the divergence report flags the stale copy",
        ),
    )


def _local_reject() -> DistScenario:
    # A lost update entirely inside s1: the local certifier already
    # rejects, and the merged graph inherits the cycle.
    placement = Placement(2, ("x2",))
    s1 = _SiteBuilder(1, {"x2": 0})
    t1, t2 = s1.begin("t1"), s1.begin("t2")
    s1.access(t1, "r_x2", "x2", ReadOp(), 0)
    s1.access(t2, "r_x2", "x2", ReadOp(), 0)
    s1.access(t1, "w_x2", "x2", WriteOp(1), OK)
    s1.access(t2, "w_x2", "x2", WriteOp(1), OK)
    s1.commit(t1)
    s1.commit(t2)
    s2 = _SiteBuilder(2, {"x2": 0})
    return (
        {1: s1.done(), 2: s2.done()},
        placement,
        DistributedExpectation(
            locally_certified=False,
            globally_certified=False,
            divergent=False,
            stale_variables=("x2",),
            reason="racing read-modify-writes at s1 form a local SG "
            "cycle; single-site certification suffices to reject, and "
            "the merged graph inherits the cycle",
        ),
    )


_SCENARIO_BUILDERS: Dict[str, Callable[[], DistScenario]] = {
    "replicated-serial": _replicated_serial,
    "partitioned-write-skew": _partitioned_write_skew,
    "stale-replica-read": _stale_replica_read,
    "local-reject": _local_reject,
}

DIST_SCENARIOS: Tuple[str, ...] = tuple(_SCENARIO_BUILDERS)


def dist_scenario_names() -> Tuple[str, ...]:
    """The available distributed scenario names, in presentation order."""
    return DIST_SCENARIOS


def build_dist_scenario(name: str) -> DistScenario:
    """Build a distributed scenario by name.

    Returns ``(site_histories, placement, expectation)``; feed the
    histories to :func:`repro.distributed.certifier.certify_sites`.
    """
    try:
        builder = _SCENARIO_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown distributed scenario {name!r}; "
            f"one of {', '.join(DIST_SCENARIOS)}"
        ) from None
    return builder()


def divergence_config(
    seed: int, sites: int = 2, pairs: int = 2, crash: bool = False
) -> DistributedConfig:
    """A seeded partition workload prone to local/global disagreement.

    ``pairs`` transaction pairs cross-read each other's replicated
    variables around a partition window: each pair's writes land only on
    their home side of the partition, and the post-heal reads are routed
    by seeded choice — when the two reads of a pair land on opposite
    sites, the sites serialize the pair in opposite orders and the
    merged graph is cyclic while every local graph stays acyclic.  With
    ``crash``, site 2 also crashes and recovers mid-window, exercising
    the doomed-set and write-barrier paths.
    """
    if sites < 2:
        raise ValueError("divergence needs at least two sites")
    variables = tuple(f"x{2 * i}" for i in range(1, 2 * pairs + 1))
    transactions: List[GlobalTransaction] = []
    for pair in range(pairs):
        a, b = variables[2 * pair], variables[2 * pair + 1]
        transactions.append(
            GlobalTransaction(
                f"t{2 * pair + 1}",
                (DWrite(a, 10 * pair + 1), DRead(b)),
                home=1,
            )
        )
        transactions.append(
            GlobalTransaction(
                f"t{2 * pair + 2}",
                (DWrite(b, 10 * pair + 2), DRead(a)),
                home=2,
            )
        )
    window = PartitionWindow(
        groups=(frozenset({1}), frozenset(range(2, sites + 1))),
        start=0,
        end=2 * pairs,
    )
    crashes: Tuple[SiteCrash, ...] = ()
    recoveries: Tuple[SiteRecovery, ...] = ()
    if crash:
        crashes = (SiteCrash(site=2, at_step=2 * pairs),)
        recoveries = (SiteRecovery(site=2, at_step=2 * pairs + 1),)
    return DistributedConfig(
        sites=sites,
        variables=variables,
        transactions=tuple(transactions),
        schedule=ClusterSchedule(
            crashes=crashes, recoveries=recoveries, partitions=(window,)
        ),
        seed=seed,
    )
