"""Per-site simulation of a routed distributed workload.

Each site is a complete single-site system of the paper: a generic
controller, one generic object per *replica* the site holds, and one
transaction automaton per global transaction that routed accesses there.
The site-local program of a global transaction is the sequence of
accesses it routed to that site (:func:`repro.sim.programs.access_sequence`),
so the unchanged single-site machinery — locking objects, scheduling
policies, serialization graphs — runs per site.

Cross-site atomicity is enforced by a *reconcile loop*: transactions
doomed by routing (site crashes, unavailable copies) are scripted to
abort at every site via :class:`repro.sim.faults.ScriptedAbortInjector`,
and if a site-local run aborts a transaction for its own reasons (e.g. a
deadlock victim), the transaction joins the doomed set and every site
re-runs, until the doomed set is a fixpoint.  The final outcome of a
global transaction is therefore the same — committed everywhere or
aborted everywhere — which is exactly what makes the merged-graph
certification of :mod:`repro.distributed.certifier` meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.actions import Abort, Behavior, Commit
from ..core.names import ObjectName, SystemType, TransactionName
from ..core.rw_semantics import RWSpec
from ..generic.system import ObjectFactory, make_generic_system
from ..locking.moss import MossRWLockingObject
from ..obs.metrics import MetricsRegistry
from ..sim.driver import run_system
from ..sim.faults import ScriptedAbortInjector
from ..sim.policies import EagerInformPolicy
from ..sim.programs import TransactionProgram, SubtransactionCall, access_sequence, system_type_for
from ..sim.stats import RunStats
from .cluster import DistributedConfig, RoutedAccess, RoutingResult, route_workload
from .placement import Placement

__all__ = [
    "SiteRun",
    "DistributedRun",
    "site_system",
    "run_distributed",
]

#: Safety bound on reconcile rounds; the doomed set only grows and is
#: bounded by the transaction count, so this is never hit in practice.
_MAX_RECONCILE_ROUNDS = 32


@dataclass
class SiteRun:
    """One site's completed local run."""

    site: int
    system_type: SystemType
    behavior: Behavior
    stats: RunStats
    #: Top-level transactions with accesses routed to this site.
    transactions: Tuple[str, ...]


@dataclass
class DistributedRun:
    """The full outcome of one distributed simulation."""

    config: DistributedConfig
    placement: Placement
    routing: RoutingResult
    site_runs: Dict[int, SiteRun]
    #: Global transaction -> reason it was aborted everywhere.
    doomed: Dict[str, str]
    #: Global transaction -> "committed" | "aborted" | "incomplete".
    outcomes: Dict[str, str]
    reconcile_rounds: int

    def committed(self) -> Tuple[str, ...]:
        return tuple(
            sorted(t for t, o in self.outcomes.items() if o == "committed")
        )


def site_system(
    site: int,
    plan: List[RoutedAccess],
    placement: Placement,
    config: DistributedConfig,
) -> Tuple[SystemType, Dict[TransactionName, TransactionProgram]]:
    """Build the site-local ``(system_type, programs)`` for one plan.

    Every replica the site holds becomes an object (even if the plan
    never touches it — its final value still matters for the staleness
    report); every global transaction with accesses in the plan becomes
    a top-level sequential program of exactly those accesses, under a
    parallel root.
    """
    objects: Dict[ObjectName, RWSpec] = {
        placement.replica(variable, site): RWSpec(
            initial=config.initial_value(variable)
        )
        for variable in placement.variables_at(site)
    }
    order: List[str] = []
    grouped: Dict[str, List[RoutedAccess]] = {}
    for routed in plan:
        if routed.transaction not in grouped:
            grouped[routed.transaction] = []
            order.append(routed.transaction)
        grouped[routed.transaction].append(routed)
    root_program = TransactionProgram(
        tuple(
            SubtransactionCall(
                name,
                access_sequence(
                    [(r.component, r.obj, r.op) for r in grouped[name]]
                ),
            )
            for name in order
        ),
        sequential=False,
    )
    programs = {TransactionName(()): root_program}
    return system_type_for(objects, programs), programs


def _top_level_fates(behavior: Behavior) -> Tuple[Dict[str, str], List[str]]:
    """Map each top-level transaction in ``behavior`` to its fate.

    Returns ``(fates, aborted)`` where fates maps name -> "committed" |
    "aborted" and ``aborted`` lists the aborted ones.
    """
    fates: Dict[str, str] = {}
    aborted: List[str] = []
    for action in behavior:
        if isinstance(action, Commit) and len(action.transaction.path) == 1:
            fates[str(action.transaction.path[0])] = "committed"
        elif isinstance(action, Abort) and len(action.transaction.path) == 1:
            name = str(action.transaction.path[0])
            fates[name] = "aborted"
            aborted.append(name)
    return fates, aborted


def run_distributed(
    config: DistributedConfig,
    object_factory: Optional[ObjectFactory] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> DistributedRun:
    """Route, simulate per site, and reconcile cross-site outcomes.

    Deterministic in ``config.seed``.  ``object_factory`` defaults to
    Moss read/write locking at every site.
    """
    factory: ObjectFactory = (
        object_factory if object_factory is not None else MossRWLockingObject
    )
    placement = config.placement()
    if metrics is not None:
        metrics.set_gauge("distributed.sites", config.sites)
    routing = route_workload(config, placement, metrics)
    doomed: Dict[str, str] = dict(routing.doomed)
    site_runs: Dict[int, SiteRun] = {}
    fates_by_site: Dict[int, Dict[str, str]] = {}
    rounds = 0
    for _ in range(_MAX_RECONCILE_ROUNDS):
        rounds += 1
        newly_doomed: Dict[str, str] = {}
        for site in placement.sites():
            plan = routing.plans.get(site, [])
            system_type, programs = site_system(site, plan, placement, config)
            system = make_generic_system(
                system_type, programs, factory, name=f"site-{site}"
            )
            victims = frozenset(
                TransactionName((name,)) for name in doomed
            )
            policy = ScriptedAbortInjector(
                EagerInformPolicy(seed=config.seed * 100003 + site),
                victims,
                seed=config.seed * 100003 + site,
            )
            result = run_system(
                system,
                policy,
                system_type,
                max_steps=config.max_steps,
                resolve_deadlocks=True,
            )
            transactions = tuple(
                sorted({routed.transaction for routed in plan})
            )
            site_runs[site] = SiteRun(
                site, system_type, result.behavior, result.stats, transactions
            )
            fates, aborted = _top_level_fates(result.behavior)
            fates_by_site[site] = fates
            for name in aborted:
                if name not in doomed and name not in newly_doomed:
                    newly_doomed[name] = (
                        f"aborted during site s{site} execution "
                        f"(atomic abort everywhere)"
                    )
        if not newly_doomed:
            break
        doomed.update(newly_doomed)
        if metrics is not None:
            metrics.inc("distributed.doomed", len(newly_doomed))
    if metrics is not None:
        metrics.inc("distributed.reconcile_rounds", rounds)
    outcomes: Dict[str, str] = {}
    for txn in config.transactions:
        if txn.name in doomed:
            outcomes[txn.name] = "aborted"
            continue
        fates = [
            fates_by_site[site].get(txn.name)
            for site in placement.sites()
            if txn.name in site_runs[site].transactions
        ]
        if all(fate == "committed" for fate in fates):
            outcomes[txn.name] = "committed"
        elif any(fate == "aborted" for fate in fates):
            # unreachable after the fixpoint, kept as a guard
            outcomes[txn.name] = "aborted"
        else:
            outcomes[txn.name] = "incomplete"
    return DistributedRun(
        config, placement, routing, site_runs, doomed, outcomes, rounds
    )
