"""Human-facing reports: certificate summaries and Graphviz export.

The certifier produces structured results (:class:`repro.core.Certificate`);
this module renders them for people — a text report suitable for logs
and a DOT rendering of the serialization graph for visual inspection
(`dot -Tpng` or any Graphviz viewer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .core.actions import Action, format_behavior
from .core.correctness import Certificate
from .core.events import StatusIndex, serial_projection
from .core.explain import CycleExplanation
from .core.names import ROOT, SystemType
from .core.serialization_graph import CONFLICT, PRECEDES, SerializationGraph

__all__ = [
    "serialization_graph_to_dot",
    "certificate_report",
    "behavior_summary",
    "explanation_report",
]

_EDGE_STYLE = {
    CONFLICT: 'color="firebrick"',
    PRECEDES: 'color="steelblue", style=dashed',
}


def serialization_graph_to_dot(
    graph: SerializationGraph,
    explanation: Optional[CycleExplanation] = None,
) -> str:
    """Render ``SG(beta)`` as Graphviz DOT, one cluster per sibling group.

    With an ``explanation`` (from :func:`repro.core.explain_cycle`), the
    cycle's edges are drawn bold with their first concrete witness — the
    conflicting operation pair, or the report/request positions — as the
    edge label, so the rejected run's provenance is readable straight
    off the picture.
    """
    witness_labels: Dict[Tuple[object, object], str] = {}
    if explanation is not None:
        for edge in explanation.edges:
            if edge.conflicts:
                witness = edge.conflicts[0]
                text = (
                    f"{witness.obj}: {witness.first_op}@{witness.first_position}"
                    f" vs {witness.second_op}@{witness.second_position}"
                )
            elif edge.precedes:
                hit = edge.precedes[0]
                text = (
                    f"report@{hit.report_position}"
                    f" < request@{hit.request_position}"
                )
            else:
                text = "unwitnessed"
            witness_labels[(edge.source, edge.target)] = text
    lines = ["digraph SG {", "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
    for cluster, parent in enumerate(graph.parents()):
        lines.append(f"  subgraph cluster_{cluster} {{")
        lines.append(f'    label="children of {parent}";')
        sub = graph.graph_for(parent)
        for node in sub.nodes():
            lines.append(f'    "{node}";')
        for src, dst, labels in sub.edges():
            witness_text = witness_labels.get((src, dst))
            for label in sorted(labels) or [""]:
                style = _EDGE_STYLE.get(label, "")
                if witness_text is not None:
                    text = f"{label}\\n{witness_text}" if label else witness_text
                    attributes = f'label="{text}", penwidth=2.5' + (
                        f", {style}" if style else ""
                    )
                else:
                    attributes = f'label="{label}"' + (f", {style}" if style else "")
                lines.append(f'    "{src}" -> "{dst}" [{attributes}];')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def explanation_report(explanation: CycleExplanation) -> str:
    """A multi-line text rendering of one cycle's provenance."""
    lines = [
        f"cycle in sibling group of {explanation.parent}: "
        + " -> ".join(str(node) for node in explanation.nodes),
        f"witnesses {'complete' if explanation.complete else 'INCOMPLETE'}"
        f" over {len(explanation.edges)} edge(s)",
    ]
    for edge in explanation.edges:
        kinds = "+".join(edge.kinds) if edge.kinds else "unwitnessed"
        lines.append(f"edge {edge.source} -> {edge.target} [{kinds}]")
        for witness in edge.conflicts:
            lines.append(f"  conflict {witness}")
        for precedes_witness in edge.precedes:
            lines.append(f"  precedes {precedes_witness}")
    return "\n".join(lines)


def behavior_summary(
    behavior: Sequence[Action], system_type: SystemType
) -> List[str]:
    """A few orientation lines about a behavior (sizes, completions)."""
    serial = serial_projection(behavior)
    index = StatusIndex(serial)
    accesses = sum(
        1 for t in index.commit_requested if system_type.is_access(t)
    )
    return [
        f"events: {len(behavior)} total, {len(serial)} serial",
        f"transactions committed: {len(index.committed)}, "
        f"aborted: {len(index.aborted)}",
        f"accesses answered: {accesses}",
        f"objects: {len(system_type.object_names())}",
    ]


def certificate_report(
    certificate: Certificate,
    behavior: Optional[Sequence[Action]] = None,
    system_type: Optional[SystemType] = None,
    witness_preview: int = 0,
) -> str:
    """A multi-line text report of a certification outcome."""
    lines: List[str] = []
    if behavior is not None and system_type is not None:
        lines.extend(behavior_summary(behavior, system_type))
        lines.append("")
    lines.append(certificate.explain())
    graph = certificate.graph
    lines.append(
        f"serialization graph: {len(graph.parents())} sibling group(s), "
        f"{len(graph.nodes())} node(s), {graph.edge_count()} edge(s)"
    )
    conflict_edges = [e for e in graph.edges() if e.kind == CONFLICT]
    precedes_edges = [e for e in graph.edges() if e.kind == PRECEDES]
    lines.append(
        f"  {len(conflict_edges)} conflict edge(s), "
        f"{len(precedes_edges)} precedes edge(s)"
    )
    for edge in list(graph.edges())[:20]:
        lines.append(f"  {edge}")
    if certificate.witness is not None and witness_preview > 0:
        lines.append("")
        lines.append(
            f"witness serial behavior ({len(certificate.witness)} events, "
            f"showing {min(witness_preview, len(certificate.witness))}):"
        )
        lines.append(format_behavior(certificate.witness[:witness_preview]))
    return "\n".join(lines)
