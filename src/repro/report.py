"""Human-facing reports: certificate summaries and Graphviz export.

The certifier produces structured results (:class:`repro.core.Certificate`);
this module renders them for people — a text report suitable for logs
and a DOT rendering of the serialization graph for visual inspection
(`dot -Tpng` or any Graphviz viewer).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .core.actions import Action, format_behavior
from .core.correctness import Certificate
from .core.events import StatusIndex, serial_projection
from .core.names import ROOT, SystemType
from .core.serialization_graph import CONFLICT, PRECEDES, SerializationGraph

__all__ = ["serialization_graph_to_dot", "certificate_report", "behavior_summary"]

_EDGE_STYLE = {
    CONFLICT: 'color="firebrick"',
    PRECEDES: 'color="steelblue", style=dashed',
}


def serialization_graph_to_dot(graph: SerializationGraph) -> str:
    """Render ``SG(beta)`` as Graphviz DOT, one cluster per sibling group."""
    lines = ["digraph SG {", "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
    for cluster, parent in enumerate(graph.parents()):
        lines.append(f"  subgraph cluster_{cluster} {{")
        lines.append(f'    label="children of {parent}";')
        sub = graph.graph_for(parent)
        for node in sub.nodes():
            lines.append(f'    "{node}";')
        for src, dst, labels in sub.edges():
            for label in sorted(labels) or [""]:
                style = _EDGE_STYLE.get(label, "")
                attributes = f'label="{label}"' + (f", {style}" if style else "")
                lines.append(f'    "{src}" -> "{dst}" [{attributes}];')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def behavior_summary(
    behavior: Sequence[Action], system_type: SystemType
) -> List[str]:
    """A few orientation lines about a behavior (sizes, completions)."""
    serial = serial_projection(behavior)
    index = StatusIndex(serial)
    accesses = sum(
        1 for t in index.commit_requested if system_type.is_access(t)
    )
    return [
        f"events: {len(behavior)} total, {len(serial)} serial",
        f"transactions committed: {len(index.committed)}, "
        f"aborted: {len(index.aborted)}",
        f"accesses answered: {accesses}",
        f"objects: {len(system_type.object_names())}",
    ]


def certificate_report(
    certificate: Certificate,
    behavior: Optional[Sequence[Action]] = None,
    system_type: Optional[SystemType] = None,
    witness_preview: int = 0,
) -> str:
    """A multi-line text report of a certification outcome."""
    lines: List[str] = []
    if behavior is not None and system_type is not None:
        lines.extend(behavior_summary(behavior, system_type))
        lines.append("")
    lines.append(certificate.explain())
    graph = certificate.graph
    lines.append(
        f"serialization graph: {len(graph.parents())} sibling group(s), "
        f"{len(graph.nodes())} node(s), {graph.edge_count()} edge(s)"
    )
    conflict_edges = [e for e in graph.edges() if e.kind == CONFLICT]
    precedes_edges = [e for e in graph.edges() if e.kind == PRECEDES]
    lines.append(
        f"  {len(conflict_edges)} conflict edge(s), "
        f"{len(precedes_edges)} precedes edge(s)"
    )
    for edge in list(graph.edges())[:20]:
        lines.append(f"  {edge}")
    if certificate.witness is not None and witness_preview > 0:
        lines.append("")
        lines.append(
            f"witness serial behavior ({len(certificate.witness)} events, "
            f"showing {min(witness_preview, len(certificate.witness))}):"
        )
        lines.append(format_behavior(certificate.witness[:witness_preview]))
    return "\n".join(lines)
