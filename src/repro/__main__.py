"""``python -m repro`` entry point."""

import sys

from .cli import main

try:
    code = main()
except BrokenPipeError:
    # downstream pager/head closed the pipe; exit quietly like other CLIs
    try:
        sys.stdout.close()
    except Exception:
        pass
    code = 0
except KeyboardInterrupt:
    code = 130
sys.exit(code)
