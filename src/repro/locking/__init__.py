"""Moss' read/write locking algorithm (Section 5)."""

from .moss import (
    MossRWLockingObject,
    MossState,
    least_write_lockholder,
    write_lockholders_form_chain,
)
from .read_update import ReadUpdateLockingObject, ReadUpdateState
from .visibility import (
    inform_chain,
    is_local_orphan,
    is_lock_visible,
    is_locally_visible,
)

__all__ = [
    "MossRWLockingObject",
    "MossState",
    "ReadUpdateLockingObject",
    "ReadUpdateState",
    "least_write_lockholder",
    "write_lockholders_form_chain",
    "inform_chain",
    "is_local_orphan",
    "is_lock_visible",
    "is_locally_visible",
]
