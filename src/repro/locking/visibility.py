"""Local visibility notions deducible from a generic object's own behavior.

Section 5.3 (for Moss locking) and Section 6.3 (for undo logging) define
what an object can conclude about transaction status from the INFORM
events it has received:

* ``T`` is a *local orphan* at ``X`` when an ``INFORM_ABORT_AT(X)OF(U)``
  arrived for some ancestor ``U`` of ``T``;
* ``T`` is *lock-visible* at ``X`` to ``T'`` when INFORM_COMMITs arrived
  for every ancestor of ``T`` up to (excluding) an ancestor of ``T'``,
  **in ascending (leaf-to-root) order** — the order in which Moss
  locking propagates locks;
* ``T`` is *locally visible* at ``X`` to ``T'`` when the same informs
  arrived in *any* order — the weaker notion the undo logging algorithm
  needs.

All three are functions of the object's projected behavior; the driver
tests check the paper's remark that lock-visible/locally-visible at
``X`` implies visible in the whole system behavior.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.actions import Action, InformAbort, InformCommit
from ..core.names import ObjectName, TransactionName

__all__ = ["is_local_orphan", "is_lock_visible", "is_locally_visible", "inform_chain"]


def is_local_orphan(
    behavior: Sequence[Action], obj: ObjectName, transaction: TransactionName
) -> bool:
    """Did an INFORM_ABORT at ``obj`` arrive for an ancestor of ``transaction``?"""
    for action in behavior:
        if isinstance(action, InformAbort) and action.obj == obj:
            if action.transaction.is_ancestor_of(transaction):
                return True
    return False


def inform_chain(
    source: TransactionName, target: TransactionName
) -> List[TransactionName]:
    """``ancestors(source) - ancestors(target)``, ordered leaf-to-root."""
    chain: List[TransactionName] = []
    for ancestor in source.ancestors():
        if ancestor.is_ancestor_of(target):
            break
        chain.append(ancestor)
    return chain


def is_lock_visible(
    behavior: Sequence[Action],
    obj: ObjectName,
    source: TransactionName,
    target: TransactionName,
) -> bool:
    """Moss visibility: INFORM_COMMITs for the chain, in ascending order.

    ``behavior`` must contain a *subsequence* of INFORM_COMMIT events at
    ``obj`` covering every ancestor of ``source`` that is not an ancestor
    of ``target``, arranged so the inform for a transaction precedes the
    inform for its parent.
    """
    chain = inform_chain(source, target)
    if not chain:
        return True
    needed = 0
    for action in behavior:
        if isinstance(action, InformCommit) and action.obj == obj:
            if action.transaction == chain[needed]:
                needed += 1
                if needed == len(chain):
                    return True
    return False


def is_locally_visible(
    behavior: Sequence[Action],
    obj: ObjectName,
    source: TransactionName,
    target: TransactionName,
) -> bool:
    """Undo-logging visibility: the chain's INFORM_COMMITs in any order."""
    chain = set(inform_chain(source, target))
    if not chain:
        return True
    for action in behavior:
        if isinstance(action, InformCommit) and action.obj == obj:
            chain.discard(action.transaction)
            if not chain:
                return True
    return False
