"""Read/update locking for arbitrary data types — the general form of Moss.

The paper's ``M1_X`` (Section 5.2) is "a simplification of the
read/update locking automaton ``M_X`` defined in [4]", which works for
*any* serial object: read-only operations take shared read locks,
every other ("update") operation takes an exclusive update lock, and
each update lockholder carries a private copy of the abstract state
reflecting its tentative operations.  Lock and state inheritance on
INFORM_COMMIT and discard on INFORM_ABORT are exactly as in ``M1_X``.

Compared with undo logging (:mod:`repro.undo.logging`), read/update
locking supports the same types but ignores commutativity — every
update serialises.  It is the conservative middle point of the E7
ablation: RW locking < read/update locking < undo logging in admitted
concurrency, all three certified by the same serialization-graph test.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Iterator, Tuple

from ..core.actions import Action, Create, InformAbort, InformCommit, RequestCommit
from ..core.names import ROOT, ObjectName, SystemType, TransactionName
from ..generic.objects import GenericObject
from ..spec.datatype import DataType

__all__ = ["ReadUpdateState", "ReadUpdateLockingObject"]


@dataclass(frozen=True)
class ReadUpdateState:
    """State of ``M_X``: lockholder sets plus per-update-holder type states."""

    created: FrozenSet[TransactionName] = frozenset()
    commit_requested: FrozenSet[TransactionName] = frozenset()
    update_locks: Tuple[Tuple[TransactionName, Any], ...] = ()
    read_lockholders: FrozenSet[TransactionName] = frozenset()

    @property
    def update_lockholders(self) -> FrozenSet[TransactionName]:
        return frozenset(name for name, _ in self.update_locks)

    def state_of(self, holder: TransactionName) -> Any:
        for name, value in self.update_locks:
            if name == holder:
                return value
        raise KeyError(holder)

    def with_update_lock(self, holder: TransactionName, value: Any) -> "ReadUpdateState":
        locks = tuple(
            (name, existing) for name, existing in self.update_locks if name != holder
        )
        return replace(self, update_locks=tuple(sorted(locks + ((holder, value),))))

    def without_update_locks(
        self, holders: FrozenSet[TransactionName]
    ) -> "ReadUpdateState":
        locks = tuple(
            (name, value) for name, value in self.update_locks if name not in holders
        )
        return replace(self, update_locks=locks)


def _least(holders: FrozenSet[TransactionName]) -> TransactionName:
    return max(holders, key=lambda name: name.depth)


class ReadUpdateLockingObject(GenericObject):
    """``M_X``: read/update locking for an object of arbitrary data type."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        super().__init__(obj, system_type)
        spec = system_type.spec(obj)
        if not isinstance(spec, DataType):
            raise TypeError(
                f"read/update locking needs a DataType spec for {obj}, got {spec!r}"
            )
        self.datatype: DataType = spec
        self.name = f"M_{obj}"

    # -- helpers -----------------------------------------------------------

    def _current_state(self, state: ReadUpdateState) -> Any:
        return state.state_of(_least(state.update_lockholders))

    def _read_enabled(self, state: ReadUpdateState, transaction: TransactionName) -> bool:
        if transaction not in state.created or transaction in state.commit_requested:
            return False
        return all(
            holder.is_ancestor_of(transaction)
            for holder in state.update_lockholders
        )

    def _update_enabled(
        self, state: ReadUpdateState, transaction: TransactionName
    ) -> bool:
        if transaction not in state.created or transaction in state.commit_requested:
            return False
        holders = state.update_lockholders | state.read_lockholders
        return all(holder.is_ancestor_of(transaction) for holder in holders)

    def _expected_value(self, state: ReadUpdateState, transaction: TransactionName) -> Any:
        op = self.system_type.access(transaction).op
        _, value = self.datatype.apply(self._current_state(state), op)
        return value

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> ReadUpdateState:
        return ReadUpdateState(update_locks=((ROOT, self.datatype.initial),))

    def enabled(self, state: ReadUpdateState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            if self.datatype.is_read_only(op):
                allowed = self._read_enabled(state, transaction)
            else:
                allowed = self._update_enabled(state, transaction)
            return allowed and action.value == self._expected_value(state, transaction)
        return False

    def effect(self, state: ReadUpdateState, action: Action) -> ReadUpdateState:
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, InformCommit):
            transaction = action.transaction
            new = state
            if transaction in new.update_lockholders:
                inherited = new.state_of(transaction)
                new = new.without_update_locks(frozenset({transaction}))
                new = new.with_update_lock(transaction.parent, inherited)
            if transaction in new.read_lockholders:
                holders = (new.read_lockholders - {transaction}) | {transaction.parent}
                new = replace(new, read_lockholders=frozenset(holders))
            return new
        if isinstance(action, InformAbort):
            transaction = action.transaction
            doomed_updates = frozenset(
                holder
                for holder in state.update_lockholders
                if transaction.is_ancestor_of(holder)
            )
            doomed_reads = frozenset(
                holder
                for holder in state.read_lockholders
                if transaction.is_ancestor_of(holder)
            )
            new = state.without_update_locks(doomed_updates)
            return replace(new, read_lockholders=new.read_lockholders - doomed_reads)
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            new = replace(
                state, commit_requested=state.commit_requested | {transaction}
            )
            if self.datatype.is_read_only(op):
                return replace(
                    new, read_lockholders=new.read_lockholders | {transaction}
                )
            next_state, _ = self.datatype.apply(self._current_state(state), op)
            return new.with_update_lock(transaction, next_state)
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: ReadUpdateState) -> Iterator[Action]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if self.datatype.is_read_only(op):
                allowed = self._read_enabled(state, transaction)
            else:
                allowed = self._update_enabled(state, transaction)
            if allowed:
                yield RequestCommit(
                    transaction, self._expected_value(state, transaction)
                )

    def blocked_accesses(self, state: ReadUpdateState) -> Iterator[TransactionName]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if self.datatype.is_read_only(op):
                allowed = self._read_enabled(state, transaction)
            else:
                allowed = self._update_enabled(state, transaction)
            if not allowed:
                yield transaction
