"""Moss' read/write locking object automaton ``M1_X`` (Section 5.2).

The default concurrency control and recovery algorithm of Argus and
Camelot, transcribed from the paper's transition relation.  The
automaton keeps read and write lock holder sets plus a stack of values
``value: write_lockholders -> D``:

* ``CREATE(T)`` registers the access;
* a read access responds when every *write* lockholder is an ancestor,
  returning the value of the least (deepest) write lockholder, and takes
  a read lock;
* a write access responds when every lockholder of either kind is an
  ancestor, returning ``OK``, takes a write lock, and stores its datum;
* ``INFORM_COMMIT`` passes a holder's locks (and stored value) to its
  parent — lock inheritance;
* ``INFORM_ABORT`` discards all locks held by descendants of the aborted
  transaction, exposing the pre-abort value underneath — undo for free.

The lemma-numbered invariants (Lemmas 9, 10, 12, 13) are implemented as
checkable predicates on states in :func:`write_lockholders_form_chain`
and friends, so the property-based tests exercise the paper's proof
obligations directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Iterator, List, Optional, Tuple

from ..core.actions import (
    Action,
    Create,
    InformAbort,
    InformCommit,
    RequestCommit,
)
from ..core.names import ROOT, ObjectName, SystemType, TransactionName
from ..core.rw_semantics import OK, ReadOp, RWSpec, WriteOp
from ..generic.objects import GenericObject

__all__ = [
    "MossState",
    "MossRWLockingObject",
    "write_lockholders_form_chain",
    "least_write_lockholder",
]


@dataclass(frozen=True)
class MossState:
    """The state of ``M1_X``.

    ``write_locks`` maps each write lockholder to its stored value; it is
    kept as a sorted tuple of pairs so states stay hashable.
    """

    created: FrozenSet[TransactionName] = frozenset()
    commit_requested: FrozenSet[TransactionName] = frozenset()
    write_locks: Tuple[Tuple[TransactionName, Any], ...] = ()
    read_lockholders: FrozenSet[TransactionName] = frozenset()

    @property
    def write_lockholders(self) -> FrozenSet[TransactionName]:
        return frozenset(name for name, _ in self.write_locks)

    def value(self, holder: TransactionName) -> Any:
        for name, value in self.write_locks:
            if name == holder:
                return value
        raise KeyError(holder)

    def with_write_lock(self, holder: TransactionName, value: Any) -> "MossState":
        locks = tuple(
            (name, existing) for name, existing in self.write_locks if name != holder
        )
        return replace(self, write_locks=tuple(sorted(locks + ((holder, value),))))

    def without_write_locks(self, holders: FrozenSet[TransactionName]) -> "MossState":
        locks = tuple(
            (name, value) for name, value in self.write_locks if name not in holders
        )
        return replace(self, write_locks=locks)


def least_write_lockholder(state: MossState) -> TransactionName:
    """The unique deepest element of the write lockholder chain."""
    holders = state.write_lockholders
    if not holders:
        raise ValueError("no write lockholders")
    return max(holders, key=lambda name: name.depth)


def write_lockholders_form_chain(state: MossState) -> bool:
    """Lemma 9 invariant: write lockholders are pairwise ancestor-related."""
    holders = sorted(state.write_lockholders, key=lambda name: name.depth)
    for shallow, deep in zip(holders, holders[1:]):
        if not shallow.is_ancestor_of(deep):
            return False
    return True


class MossRWLockingObject(GenericObject):
    """``M1_X``: the read/write locking generic object automaton."""

    def __init__(self, obj: ObjectName, system_type: SystemType) -> None:
        super().__init__(obj, system_type)
        spec = system_type.spec(obj)
        if not isinstance(spec, RWSpec):
            raise TypeError(f"Moss locking requires an RWSpec, got {spec!r}")
        self.initial_value = spec.initial
        self.name = f"M1_{obj}"

    # -- transitions ----------------------------------------------------------

    def initial_state(self) -> MossState:
        return MossState(write_locks=((ROOT, self.initial_value),))

    def _read_enabled(self, state: MossState, transaction: TransactionName) -> bool:
        if transaction not in state.created or transaction in state.commit_requested:
            return False
        return all(
            holder.is_ancestor_of(transaction) for holder in state.write_lockholders
        )

    def _write_enabled(self, state: MossState, transaction: TransactionName) -> bool:
        if transaction not in state.created or transaction in state.commit_requested:
            return False
        holders = state.write_lockholders | state.read_lockholders
        return all(holder.is_ancestor_of(transaction) for holder in holders)

    def enabled(self, state: MossState, action: Action) -> bool:
        if self.is_input(action):
            return True
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp):
                return (
                    self._read_enabled(state, transaction)
                    and action.value == state.value(least_write_lockholder(state))
                )
            if isinstance(op, WriteOp):
                return self._write_enabled(state, transaction) and action.value == OK
        return False

    def effect(self, state: MossState, action: Action) -> MossState:
        if isinstance(action, Create):
            return replace(state, created=state.created | {action.transaction})
        if isinstance(action, InformCommit):
            transaction = action.transaction
            new = state
            if transaction in new.write_lockholders:
                inherited = new.value(transaction)
                new = new.without_write_locks(frozenset({transaction}))
                new = new.with_write_lock(transaction.parent, inherited)
            if transaction in new.read_lockholders:
                holders = (new.read_lockholders - {transaction}) | {transaction.parent}
                new = replace(new, read_lockholders=frozenset(holders))
            return new
        if isinstance(action, InformAbort):
            transaction = action.transaction
            doomed_writes = frozenset(
                holder
                for holder in state.write_lockholders
                if transaction.is_ancestor_of(holder)
            )
            doomed_reads = frozenset(
                holder
                for holder in state.read_lockholders
                if transaction.is_ancestor_of(holder)
            )
            new = state.without_write_locks(doomed_writes)
            return replace(new, read_lockholders=new.read_lockholders - doomed_reads)
        if isinstance(action, RequestCommit):
            transaction = action.transaction
            op = self.system_type.access(transaction).op
            new = replace(
                state, commit_requested=state.commit_requested | {transaction}
            )
            if isinstance(op, ReadOp):
                return replace(
                    new, read_lockholders=new.read_lockholders | {transaction}
                )
            return new.with_write_lock(transaction, op.data)
        raise ValueError(f"{self.name}: {action} not in signature")

    def enabled_outputs(self, state: MossState) -> Iterator[Action]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp) and self._read_enabled(state, transaction):
                yield RequestCommit(
                    transaction, state.value(least_write_lockholder(state))
                )
            elif isinstance(op, WriteOp) and self._write_enabled(state, transaction):
                yield RequestCommit(transaction, OK)

    def blocked_accesses(self, state: MossState) -> Iterator[TransactionName]:
        for transaction in sorted(state.created - state.commit_requested):
            op = self.system_type.access(transaction).op
            if isinstance(op, ReadOp) and not self._read_enabled(state, transaction):
                yield transaction
            elif isinstance(op, WriteOp) and not self._write_enabled(
                state, transaction
            ):
                yield transaction
