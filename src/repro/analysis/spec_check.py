"""Spec-soundness checker: prove the commutativity specs at lint time.

The serialization-graph construction delegates every conflict verdict to
an object specification, and two engine layers *assume* structural
properties of those specs that no single call site checks:

* ``conflicts`` must be **symmetric** (edges are emitted for ordered
  pairs; an asymmetric predicate would make the graph depend on
  enumeration order);
* ``is_read_only(op1) and is_read_only(op2)`` must imply
  ``not conflicts(op1, v1, op2, v2)`` — the exact assumption behind the
  indexed ``conflict_pairs`` writer-boundary fast path
  (:func:`repro.core.serialization_graph._conflict_pairs_indexed`),
  which never consults the spec for read/read pairs;
* an ``is_read_only`` claim must be true: the operation preserves every
  reachable state;
* the claimed table must **agree with the definition** of backward
  commutativity (:mod:`repro.spec.commutativity`, Section 6.1) on
  exhaustive bounded prefixes — for the exact built-in types in both
  directions, and for deliberately conservative relations (the classical
  :class:`repro.core.rw_semantics.RWSpec`) in the sound direction:
  a claimed *commute* must never violate the definition.

:func:`check_all_builtin_specs` certifies every registered spec and
returns machine-readable :class:`SpecReport` objects; ``repro lint``
folds the problems into its findings (rules S001–S003).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.rw_semantics import ReadOp, RWSpec, WriteOp
from ..spec.builtin import (
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    Dequeue,
    Enqueue,
    MapGet,
    MapPut,
    MapRemove,
    MapType,
    QueueType,
    RegisterType,
    RegRead,
    RegWrite,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
    Withdraw,
)
from ..spec.commutativity import (
    commutes_backward_on_prefix,
    exhaustive_prefixes,
    find_commutativity_counterexample,
)
from ..spec.datatype import DataType

__all__ = [
    "SpecDomain",
    "SpecProblem",
    "SpecReport",
    "builtin_spec_domains",
    "check_spec",
    "check_all_builtin_specs",
]

Pair = Tuple[Any, Any]

#: problem kind -> the lint rule id it surfaces under
PROBLEM_RULES: Dict[str, str] = {
    "symmetry": "S001",
    "read_only_claim": "S002",
    "read_only_conflict": "S002",
    "table": "S003",
}


@dataclass(frozen=True)
class SpecProblem:
    """One soundness violation of a specification."""

    spec: str
    kind: str  # "symmetry" | "read_only_claim" | "read_only_conflict" | "table"
    detail: str

    @property
    def rule(self) -> str:
        """The lint rule id this problem surfaces under (S001–S003)."""
        return PROBLEM_RULES.get(self.kind, "S000")

    def to_dict(self) -> Dict[str, str]:
        """The JSON shape emitted by ``repro lint --json``."""
        return {
            "spec": self.spec,
            "kind": self.kind,
            "rule": self.rule,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return f"spec:{self.spec}: {self.rule} [{self.kind}] {self.detail}"


@dataclass
class SpecReport:
    """The certification result for one specification domain."""

    spec: str
    exact: bool
    pairs: int = 0
    prefixes: int = 0
    problems: List[SpecProblem] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.problems

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape emitted by ``repro lint --json``."""
        return {
            "spec": self.spec,
            "exact": self.exact,
            "pairs": self.pairs,
            "prefixes": self.prefixes,
            "ok": self.ok,
            "problems": [problem.to_dict() for problem in self.problems],
        }


@dataclass(frozen=True)
class SpecDomain:
    """A spec plus the bounded operation domain it is verified over.

    ``exact=True`` demands agreement with the definition in both
    directions (claimed conflicts need a witness); ``exact=False``
    permits a conservative relation and only rejects false commutes.
    """

    name: str
    spec: Any
    operations: Tuple[Any, ...]
    max_prefix: int = 3
    exact: bool = True


class _SpecView(DataType):
    """Adapt any ``conflicts``-protocol spec to the ``DataType`` protocol.

    :class:`repro.core.rw_semantics.RWSpec` (and user specs following
    its protocol) expose ``initial``/``apply``/``conflicts`` but not the
    ``DataType`` machinery the definitional checker drives
    (``replay``/``results_along`` raising ``IllegalOperation``).  The
    view forwards the former and inherits the latter.
    """

    def __init__(self, spec: Any, name: str) -> None:
        self._spec = spec
        self.type_name = name

    @property
    def initial(self) -> Any:
        """The wrapped spec's initial state."""
        return self._spec.initial

    def apply(self, state: Any, op: Any) -> Tuple[Any, Any]:
        """Forward to the wrapped spec."""
        return self._spec.apply(state, op)

    def commutes_backward(self, op1: Any, value1: Any, op2: Any, value2: Any) -> bool:
        """The complement of the wrapped spec's ``conflicts``."""
        return not self._spec.conflicts(op1, value1, op2, value2)

    def is_read_only(self, op: Any) -> bool:
        """Forward when the wrapped spec has the predicate; else False."""
        probe = getattr(self._spec, "is_read_only", None)
        return bool(probe(op)) if probe is not None else False


def _as_datatype(domain: SpecDomain) -> DataType:
    if isinstance(domain.spec, DataType):
        return domain.spec
    return _SpecView(domain.spec, domain.name)


def builtin_spec_domains() -> List[SpecDomain]:
    """The registered specs with their bounded verification domains.

    Mirrors the domains the definitional test suite uses
    (``tests/test_commutativity.py``), plus the classical
    :class:`RWSpec` relation, which is conservative by design
    (``exact=False``: same-value writes conflict classically but
    commute exactly — see ``TestClassicalIsCoarser``).
    """
    return [
        SpecDomain(
            "register", RegisterType(initial=0), (RegWrite(1), RegWrite(2), RegRead())
        ),
        SpecDomain(
            "counter",
            CounterType(initial=0),
            (CounterInc(1), CounterInc(-1), CounterInc(0), CounterRead()),
        ),
        SpecDomain(
            "set",
            SetType(),
            (SetInsert(1), SetInsert(2), SetRemove(1), SetMember(1), SetMember(2)),
        ),
        SpecDomain(
            "bank-account",
            BankAccountType(initial=10),
            (Deposit(5), Withdraw(5), Withdraw(20), BalanceRead()),
        ),
        SpecDomain("queue", QueueType(), (Enqueue("a"), Enqueue("b"), Dequeue())),
        SpecDomain(
            "map",
            MapType(),
            (MapPut("k", 1), MapPut("k", 2), MapGet("k"), MapRemove("k"), MapGet("j")),
        ),
        SpecDomain(
            "rw",
            RWSpec(initial=0),
            (WriteOp(1), WriteOp(2), ReadOp()),
            exact=False,
        ),
    ]


def _jointly_realizable(
    datatype: DataType,
    operations: Sequence[Any],
    prefixes: Sequence[Tuple[Pair, ...]],
) -> Tuple[List[Tuple[Pair, Pair]], List[Pair], List[Any]]:
    """Adjacent-realisable combos, flat ``(op, value)`` pairs, and states.

    A combo ``(first, second)`` is realisable when the two operations
    can legally return those values back to back after some prefix —
    exactly the combinations the definitional hypothesis can fire on,
    so a claimed conflict among them must have a witness within the
    prefix set (unrealisable combos are vacuously fine and skipped).
    """
    combos = set()
    states = []
    seen_states = set()
    for prefix in prefixes:
        state = datatype.replay(prefix)
        if state not in seen_states:
            seen_states.add(state)
            states.append(state)
        for first in operations:
            mid_state, value1 = datatype.apply(state, first)
            for second in operations:
                _, value2 = datatype.apply(mid_state, second)
                combos.add(((first, value1), (second, value2)))
    ordered = sorted(combos, key=repr)
    flat = sorted({pair for combo in ordered for pair in combo}, key=repr)
    return ordered, flat, states


def check_spec(domain: SpecDomain) -> SpecReport:
    """Certify one specification over its bounded domain."""
    datatype = _as_datatype(domain)
    report = SpecReport(spec=domain.name, exact=domain.exact)
    prefixes = exhaustive_prefixes(datatype, domain.operations, domain.max_prefix)
    combos, pairs, states = _jointly_realizable(
        datatype, domain.operations, prefixes
    )
    report.prefixes = len(prefixes)
    report.pairs = len(pairs)

    # -- is_read_only claims: the op must preserve every reachable state --
    for op in domain.operations:
        if not datatype.is_read_only(op):
            continue
        for state in states:
            new_state, _ = datatype.apply(state, op)
            if not datatype.states_equivalent(new_state, state):
                report.problems.append(
                    SpecProblem(
                        domain.name,
                        "read_only_claim",
                        f"is_read_only({op}) claimed, but it maps state "
                        f"{state!r} to {new_state!r}",
                    )
                )
                break

    # -- symmetry and the read/read no-conflict fast-path assumption ------
    # Checked over *all* pair combinations, realisable or not: the engine
    # layers may consult the predicate with any value combination.
    for i, first in enumerate(pairs):
        for second in pairs[i:]:
            forward = datatype.commutes_backward(
                first[0], first[1], second[0], second[1]
            )
            backward = datatype.commutes_backward(
                second[0], second[1], first[0], first[1]
            )
            if forward != backward:
                report.problems.append(
                    SpecProblem(
                        domain.name,
                        "symmetry",
                        f"conflicts({first}, {second}) = {not forward} but "
                        f"conflicts({second}, {first}) = {not backward}",
                    )
                )
                continue
            if (
                datatype.is_read_only(first[0])
                and datatype.is_read_only(second[0])
                and not forward
            ):
                report.problems.append(
                    SpecProblem(
                        domain.name,
                        "read_only_conflict",
                        f"read-only pair {first} / {second} claimed to "
                        "conflict — breaks the indexed conflict_pairs "
                        "read/read skip",
                    )
                )

    # -- agreement with the Section 6.1 definition ------------------------
    # Checked over adjacent-realisable combos only: a claimed conflict
    # among them must exhibit a witness; unrealisable combos are vacuous.
    seen = set()
    for first, second in combos:
        key = frozenset((first, second))
        if key in seen:
            continue
        seen.add(key)
        claimed = datatype.commutes_backward(
            first[0], first[1], second[0], second[1]
        )
        if claimed != datatype.commutes_backward(
            second[0], second[1], first[0], first[1]
        ):
            continue  # already reported as a symmetry problem
        if domain.exact:
            counterexample = find_commutativity_counterexample(
                datatype, first, second, prefixes
            )
            if counterexample is not None:
                report.problems.append(
                    SpecProblem(domain.name, "table", str(counterexample))
                )
        elif claimed:
            violation = _false_commute(datatype, first, second, prefixes)
            if violation is not None:
                report.problems.append(
                    SpecProblem(domain.name, "table", violation)
                )
    return report


def _false_commute(
    datatype: DataType,
    first: Pair,
    second: Pair,
    prefixes: Sequence[Tuple[Pair, ...]],
) -> Optional[str]:
    """A definitional violation of a claimed commute, or None."""
    for prefix in prefixes:
        for a, b in ((first, second), (second, first)):
            reason = commutes_backward_on_prefix(datatype, prefix, a, b)
            if reason is not None:
                return (
                    f"claimed commute for {a} / {b} but after prefix of "
                    f"length {len(prefix)}: {reason}"
                )
    return None


def check_all_builtin_specs() -> List[SpecReport]:
    """Certify every registered built-in spec; see :func:`check_spec`."""
    return [check_spec(domain) for domain in builtin_spec_domains()]
