"""The AST lint engine: findings, rules, suppression, and the driver.

The engine parses every Python module under a root into a
:class:`ModuleUnit` (source, AST, per-line suppression tags) and runs
each registered :class:`Rule` over each unit.  Rules are pure: they
yield :class:`Finding` objects and never mutate the unit.  Findings
carry the rule id, a repo-relative path, a 1-based line and a message —
exactly what the CLI renders as text or JSON.

Suppression is comment-driven, per line::

    holders = [h for h in chain if h in doomed]  # lint: allow-quadratic
    print(table)                                 # lint: allow-R002

``# lint: allow-<RULE-ID>`` silences that rule on that physical line;
each rule also registers a human tag (``quadratic`` for R003, ...) as
an alias.  A module whose first two lines contain ``# lint: skip-file``
is not linted at all.  The engine applies suppression after the rules
run, so rules stay oblivious to it (R003 additionally honours the tag
on the header line of the enclosing loop, which it resolves itself
through :meth:`ModuleUnit.line_allows`).
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleUnit",
    "LintContext",
    "Rule",
    "LintEngine",
    "lint_paths",
    "python_files",
]

#: ``# lint: allow-R003`` or ``# lint: allow-quadratic`` (comma-separable).
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow-([A-Za-z0-9_,\-]+)")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file")


@dataclass(frozen=True)
class Finding:
    """One lint finding: rule id, location, and a human-readable message."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """The JSON shape emitted by ``repro lint --json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class ModuleUnit:
    """One parsed module: path, source text, AST, and suppression tags."""

    def __init__(self, path: Path, source: str, display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        #: line number (1-based) -> lowercased allow tags on that line
        self.allows: Dict[int, Set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(text)
            if match:
                tags = {tag.strip().lower() for tag in match.group(1).split(",")}
                self.allows[number] = {tag for tag in tags if tag}

    @property
    def skip_file(self) -> bool:
        """True when the module opts out of linting entirely."""
        head = self.lines[:2]
        return any(_SKIP_FILE_RE.search(text) for text in head)

    def line_allows(self, line: int, tags: Iterable[str]) -> bool:
        """True when ``line`` carries any of the (lowercased) allow tags."""
        present = self.allows.get(line)
        if not present:
            return False
        return any(tag.lower() in present for tag in tags)


@dataclass
class LintContext:
    """Cross-module facts the rules need.

    ``root`` is the linted source root (``src/repro``); ``tests_root``
    lets R001 verify A/B flags are exercised both ways by the test
    suite; ``units`` is the full parsed corpus, so rules can reason
    across modules (registered by the engine before rules run).
    """

    root: Path
    tests_root: Optional[Path] = None
    units: List[ModuleUnit] = field(default_factory=list)
    _test_flag_values: Optional[Dict[str, Set[bool]]] = None

    def test_flag_values(self, flags: Sequence[str]) -> Dict[str, Set[bool]]:
        """Boolean values each keyword ``flag`` is called with in tests.

        Scans every Python file under ``tests_root`` once and caches the
        result: ``{"indexed": {True, False}, ...}``.  Two call shapes
        count: a literal ``flag=True``/``flag=False`` keyword, and
        ``flag=<name>`` where ``<name>`` is bound by a pytest fixture
        (``@pytest.fixture(params=[True, False])``) or by
        ``parametrize("<name>", [...])`` to boolean constants.  Missing
        tests root yields empty sets (R001 then reports the flags as
        uncovered).
        """
        if self._test_flag_values is None:
            values: Dict[str, Set[bool]] = {flag: set() for flag in flags}
            bound: Dict[str, Set[bool]] = {}
            indirect: List[Tuple[str, str]] = []  # (flag, referenced name)
            if self.tests_root is not None and self.tests_root.is_dir():
                for path in python_files(self.tests_root):
                    try:
                        tree = ast.parse(path.read_text(), filename=str(path))
                    except SyntaxError:
                        continue
                    _collect_param_bindings(tree, bound)
                    for node in ast.walk(tree):
                        if not isinstance(node, ast.Call):
                            continue
                        for keyword in node.keywords:
                            if keyword.arg not in values:
                                continue
                            value = keyword.value
                            if isinstance(value, ast.Constant) and isinstance(
                                value.value, bool
                            ):
                                values[keyword.arg].add(value.value)
                            elif isinstance(value, ast.Name):
                                indirect.append((keyword.arg, value.id))
            for flag, name in indirect:
                values[flag] |= bound.get(name, set())
            self._test_flag_values = values
        missing = [flag for flag in flags if flag not in self._test_flag_values]
        for flag in missing:
            self._test_flag_values[flag] = set()
        return self._test_flag_values


def _bool_constants(node: ast.expr) -> Set[bool]:
    """The boolean constants in a list/tuple literal (ignores the rest)."""
    found: Set[bool] = set()
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, bool):
                found.add(element.value)
    return found


def _collect_param_bindings(tree: ast.Module, bound: Dict[str, Set[bool]]) -> None:
    """Names bound to boolean values by pytest fixtures/parametrize.

    Records ``name -> {True, False, ...}`` for (a) fixture functions
    decorated ``@pytest.fixture(params=[...])`` and (b)
    ``parametrize("name", [...])`` calls (single-name form only).
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name != "fixture":
                    continue
                for keyword in decorator.keywords:
                    if keyword.arg == "params":
                        booleans = _bool_constants(keyword.value)
                        if booleans:
                            bound.setdefault(node.name, set()).update(booleans)
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name != "parametrize" or len(node.args) < 2:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            if "," in first.value:
                continue  # multi-name form: positions are ambiguous here
            booleans = _bool_constants(node.args[1])
            if booleans:
                bound.setdefault(first.value.strip(), set()).update(booleans)


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``"R001"``), ``tags`` (suppression
    aliases), a one-line ``title``, and implement :meth:`check_module`.
    """

    rule_id: str = "R000"
    title: str = "abstract rule"
    #: Suppression aliases (``# lint: allow-<tag>``); the rule id always works.
    tags: Tuple[str, ...] = ()

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Yield findings for one module; default checks nothing."""
        return iter(())

    def suppression_tags(self) -> Tuple[str, ...]:
        """Every tag that silences this rule (id + aliases, lowercased)."""
        return tuple({self.rule_id.lower(), *(tag.lower() for tag in self.tags)})


def python_files(root: Path) -> List[Path]:
    """All ``*.py`` files under ``root`` (or just ``root``), sorted."""
    if root.is_file():
        return [root]
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


class LintEngine:
    """Run a set of rules over a source tree and collect findings."""

    def __init__(self, rules: Sequence[Rule], context: LintContext) -> None:
        self.rules = list(rules)
        self.context = context
        self.parse_errors: List[Finding] = []

    def load(self, paths: Iterable[Path]) -> List[ModuleUnit]:
        """Parse ``paths`` into units, recording syntax errors as findings."""
        units: List[ModuleUnit] = []
        for path in paths:
            display = _display_path(path, self.context.root)
            try:
                source = path.read_text()
                unit = ModuleUnit(path, source, display)
            except (OSError, SyntaxError, UnicodeDecodeError, tokenize.TokenError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                self.parse_errors.append(
                    Finding("E000", display, line, f"cannot parse module: {exc}")
                )
                continue
            if not unit.skip_file:
                units.append(unit)
        self.context.units = units
        return units

    def run(self, units: Sequence[ModuleUnit]) -> List[Finding]:
        """Apply every rule to every unit, honouring per-line suppression."""
        findings: List[Finding] = list(self.parse_errors)
        for rule in self.rules:
            tags = rule.suppression_tags()
            for unit in units:
                for finding in rule.check_module(unit, self.context):
                    if unit.line_allows(finding.line, tags):
                        continue
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return findings


def _display_path(path: Path, root: Path) -> str:
    """``path`` relative to the repository root when possible."""
    if root.is_file():
        repo_root = Path.cwd()
    elif root.name == "repro":
        repo_root = root.parent.parent
    else:
        repo_root = root
    try:
        return os.path.relpath(path, repo_root)
    except ValueError:  # different drive (Windows); keep it absolute
        return str(path)


def lint_paths(
    root: Path,
    rules: Sequence[Rule],
    tests_root: Optional[Path] = None,
) -> List[Finding]:
    """Convenience one-shot: parse everything under ``root`` and lint it."""
    context = LintContext(root=root, tests_root=tests_root)
    engine = LintEngine(rules, context)
    units = engine.load(python_files(root))
    return engine.run(units)
