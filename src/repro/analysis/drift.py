"""Drift detectors: keep the docs honest about code, both directions.

Two inventories rot silently as the code moves:

* **Metric names** — every counter/gauge/histogram the library emits
  through :class:`repro.obs.metrics.MetricsRegistry` is catalogued in
  ``docs/OBSERVABILITY.md`` under the heading ``## Metric names emitted
  by the instrumented library`` (the *canonical inventory* this module
  parses).  An emitted-but-undocumented metric is invisible to
  operators; a documented-but-gone metric sends them hunting for data
  that will never arrive.  Rule **D001**, both directions.
* **Experiment scripts** — ``EXPERIMENTS.md`` names the
  ``benchmarks/bench_*.py`` script that reproduces each experiment.  A
  referenced-but-missing script breaks reproduction; a present-but-
  unreferenced script is an experiment nobody can find.  Rule **D002**,
  both directions.

Extraction is syntactic (:mod:`ast` for source, a backtick scan for
docs) so the detectors run without importing — or executing — any of
the checked code.  Dynamic metric names built from f-strings (e.g.
``span.{name}``) become *wildcard prefixes*; the docs declare them with
an angle-bracket placeholder (``span.<name>``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

from .linter import python_files

__all__ = [
    "DriftProblem",
    "METRICS_DOC_HEADING",
    "source_metric_names",
    "documented_metric_names",
    "check_metrics_drift",
    "check_benchmark_drift",
    "check_all_drift",
]

#: The OBSERVABILITY.md heading opening the canonical metric inventory.
METRICS_DOC_HEADING = "## Metric names emitted by the instrumented library"

#: MetricsRegistry methods whose first argument is a metric name.
_REGISTRY_METHODS = frozenset(
    {"inc", "set_gauge", "observe", "counter", "gauge", "histogram"}
)

#: Module-level wiring helpers called as plain names whose argument at
#: the given index is a metric name (``latency_histogram(registry,
#: "stream.latency.x")`` routes a registry write just like a method
#: call, so its names are checked against the same inventory).
_HELPER_FUNCTIONS: Dict[str, int] = {"latency_histogram": 1}

#: A documented metric token: dotted lowercase, optional <placeholder>.
_DOC_TOKEN_RE = re.compile(r"`([a-z][a-z0-9_.]*\.(?:[a-z0-9_.]|<[A-Za-z0-9_]*>)*)`")

#: A benchmark script reference in EXPERIMENTS.md.
_BENCH_RE = re.compile(r"\bbench_[a-z0-9_]+\.py\b")


@dataclass(frozen=True)
class DriftProblem:
    """One source/docs disagreement."""

    rule: str  # "D001" (metrics) | "D002" (benchmarks)
    kind: str  # "undocumented" | "stale_doc" | "missing_script" | "orphan_script"
    detail: str

    def to_dict(self) -> Dict[str, str]:
        """The JSON shape emitted by ``repro lint --json``."""
        return {"rule": self.rule, "kind": self.kind, "detail": self.detail}

    def __str__(self) -> str:
        return f"drift: {self.rule} [{self.kind}] {self.detail}"


def _constant_names(expression: ast.expr) -> Tuple[Set[str], Set[str]]:
    """``(exact, prefixes)`` metric names one argument expression yields."""
    exact: Set[str] = set()
    prefixes: Set[str] = set()
    if isinstance(expression, ast.Constant) and isinstance(expression.value, str):
        exact.add(expression.value)
    elif isinstance(expression, ast.IfExp):
        for branch in (expression.body, expression.orelse):
            branch_exact, branch_prefixes = _constant_names(branch)
            exact |= branch_exact
            prefixes |= branch_prefixes
    elif isinstance(expression, ast.JoinedStr):
        parts: List[str] = []
        for value in expression.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                break
        prefix = "".join(parts)
        if prefix:
            prefixes.add(prefix)
    return exact, prefixes


def source_metric_names(source_root: Path) -> Tuple[Set[str], Set[str]]:
    """``(exact, prefixes)`` metric names emitted under ``source_root``.

    Scans every registry-method call whose first argument is a string
    constant, a conditional expression over string constants, or an
    f-string (the constant head becomes a wildcard prefix) — plus the
    plain-name wiring helpers in :data:`_HELPER_FUNCTIONS`, whose
    metric-name argument sits at a helper-specific index.
    """
    exact: Set[str] = set()
    prefixes: Set[str] = set()
    for path in python_files(source_root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:  # the linter reports this as E000
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name_argument = None
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRY_METHODS
                and node.args
            ):
                name_argument = node.args[0]
            elif isinstance(node.func, ast.Name):
                index = _HELPER_FUNCTIONS.get(node.func.id)
                if index is not None and len(node.args) > index:
                    name_argument = node.args[index]
            if name_argument is not None:
                node_exact, node_prefixes = _constant_names(name_argument)
                exact |= node_exact
                prefixes |= node_prefixes
    return exact, prefixes


def documented_metric_names(doc_path: Path) -> Tuple[Set[str], Set[str]]:
    """``(exact, prefixes)`` metric names the canonical inventory declares.

    Only the section opened by :data:`METRICS_DOC_HEADING` (up to the
    next ``## `` heading) is parsed; a backticked ``name.<placeholder>``
    token declares the wildcard prefix ``name.``.  Backticked module
    paths (``repro.*``) are ignored.
    """
    exact: Set[str] = set()
    prefixes: Set[str] = set()
    text = doc_path.read_text(encoding="utf-8")
    start = text.find(METRICS_DOC_HEADING)
    if start < 0:
        return exact, prefixes
    body = text[start + len(METRICS_DOC_HEADING):]
    end = body.find("\n## ")
    if end >= 0:
        body = body[:end]
    for token in _DOC_TOKEN_RE.findall(body):
        if token.startswith("repro."):
            continue
        marker = token.find("<")
        if marker >= 0:
            prefix = token[:marker]
            if prefix:
                prefixes.add(prefix)
        else:
            exact.add(token)
    return exact, prefixes


def _covered(name: str, exact: Set[str], prefixes: Set[str]) -> bool:
    return name in exact or any(name.startswith(prefix) for prefix in prefixes)


def check_metrics_drift(source_root: Path, doc_path: Path) -> List[DriftProblem]:
    """D001: source metric emissions vs the OBSERVABILITY.md inventory."""
    problems: List[DriftProblem] = []
    if not doc_path.is_file():
        return [
            DriftProblem(
                "D001", "stale_doc", f"metric inventory {doc_path} does not exist"
            )
        ]
    src_exact, src_prefixes = source_metric_names(source_root)
    doc_exact, doc_prefixes = documented_metric_names(doc_path)
    if not doc_exact and not doc_prefixes:
        return [
            DriftProblem(
                "D001",
                "stale_doc",
                f"{doc_path.name} has no '{METRICS_DOC_HEADING}' inventory",
            )
        ]
    for name in sorted(src_exact):
        if not _covered(name, doc_exact, doc_prefixes):
            problems.append(
                DriftProblem(
                    "D001",
                    "undocumented",
                    f"metric '{name}' is emitted but missing from the "
                    f"{doc_path.name} inventory",
                )
            )
    for prefix in sorted(src_prefixes):
        if prefix not in doc_prefixes:
            problems.append(
                DriftProblem(
                    "D001",
                    "undocumented",
                    f"dynamic metric family '{prefix}<...>' is emitted but "
                    f"missing from the {doc_path.name} inventory",
                )
            )
    for name in sorted(doc_exact):
        if not _covered(name, src_exact, src_prefixes):
            problems.append(
                DriftProblem(
                    "D001",
                    "stale_doc",
                    f"metric '{name}' is documented in {doc_path.name} but "
                    "never emitted by the source",
                )
            )
    for prefix in sorted(doc_prefixes):
        if prefix not in src_prefixes and not any(
            name.startswith(prefix) for name in src_exact
        ):
            problems.append(
                DriftProblem(
                    "D001",
                    "stale_doc",
                    f"dynamic metric family '{prefix}<...>' is documented in "
                    f"{doc_path.name} but never emitted by the source",
                )
            )
    return problems


def check_benchmark_drift(
    experiments_path: Path, benchmarks_dir: Path
) -> List[DriftProblem]:
    """D002: EXPERIMENTS.md script references vs ``benchmarks/bench_*.py``."""
    problems: List[DriftProblem] = []
    if not experiments_path.is_file():
        return [
            DriftProblem(
                "D002",
                "stale_doc",
                f"experiment inventory {experiments_path} does not exist",
            )
        ]
    referenced = set(_BENCH_RE.findall(experiments_path.read_text(encoding="utf-8")))
    present = {path.name for path in benchmarks_dir.glob("bench_*.py")}
    for name in sorted(referenced - present):
        problems.append(
            DriftProblem(
                "D002",
                "missing_script",
                f"{experiments_path.name} references benchmarks/{name}, "
                "which does not exist",
            )
        )
    for name in sorted(present - referenced):
        problems.append(
            DriftProblem(
                "D002",
                "orphan_script",
                f"benchmarks/{name} exists but no experiment in "
                f"{experiments_path.name} references it",
            )
        )
    return problems


def check_all_drift(repo_root: Path) -> List[DriftProblem]:
    """Run every drift detector rooted at the repository top level."""
    repo_root = Path(repo_root)
    problems = check_metrics_drift(
        repo_root / "src" / "repro", repo_root / "docs" / "OBSERVABILITY.md"
    )
    problems.extend(
        check_benchmark_drift(
            repo_root / "EXPERIMENTS.md", repo_root / "benchmarks"
        )
    )
    return problems
