"""Static robustness analysis over transaction-program templates.

Everything else in the repository certifies *executions* after the
fact.  This module is the design-time complement: given only the
program templates of :mod:`repro.sim.programs` (the ``seq``/``par``
nesting structure, the accesses with their operations, and the
``after_abort_of`` retry alternatives), decide whether **any**
interleaving the scheduler could produce yields a cyclic serialization
graph — the condition under which the Theorem 8/19 certifier rejects.

The analysis follows the robustness literature (Vandevoort & Koch on
MVRC, Nagar & Jagannathan on weak-consistency violations — PAPERS.md)
transplanted to the paper's nested-transaction model:

1. **Summary extraction** — each program forest is flattened into
   per-template access footprints.  Every access carries its full
   :class:`~repro.core.names.TransactionName`, its operation, and the
   set of *abort assumptions* under which it runs (an access inside an
   ``after_abort_of`` branch only executes in runs where the trigger
   subtree aborted — a disjunctive program path).  The ``seq``/``par``
   structure induces the guaranteed *precedes* order: a sequential
   program never requests call *j* before call *i < j* resolved.

2. **Static serialization graph** — for every sibling group in the
   forest (the paper's ``SG(beta)`` is a disjoint union of per-parent
   digraphs, so program-level cycles can live at any nesting level) we
   build potential CONFLICT edges between sibling subtrees from a sound
   may-conflict probe: read/write specs resolve structurally
   (``conflicts_iff_writer``), generic specifications are probed over
   the bounded per-object value domain reachable by executing subsets
   of the object's own access multiset, with verdicts memoized in the
   shared :class:`~repro.core.history.ConflictCache`.  Probes that
   exceed the enumeration budget degrade to *conflicting* — the sound
   direction.

3. **Dangerous-structure detection** — cycles in a group's potential
   graph are only dangerous if some run realizes every edge at once.
   For each candidate cycle we search assignments of per-edge witnesses
   (a concrete conflicting access pair, or a potential precedes edge)
   and accept exactly when the induced ordering constraints — template
   structure, witness order, report-before-request — are consistent
   (acyclic over the access instances) and the abort assumptions do not
   contradict the visibility the witnesses need.  Realized cycles are
   classified into the classical anomaly shapes (lost update, write
   skew, fractured read) and reported as a program-level
   counterexample sketch with a directed access schedule.

4. **Validation bridge** — with ``validate=True`` every NOT-ROBUST
   verdict is machine-checked against the dynamic certifier: a
   :class:`DirectedPolicy` drives :func:`repro.sim.driver.run_system`
   over the implicated templates (concurrency control removed — the
   :class:`repro.generic.permissive.PermissiveObject` services every
   access immediately) toward the counterexample's schedule, and the
   resulting behavior must make :func:`repro.core.correctness.certify`
   report a cycle; bounded random exploration is the fallback.  A
   ROBUST verdict is *sound* by construction; the test-suite gate
   additionally checks it against bounded dynamic exploration on a
   generated corpus.

The verdict is about the certifier's sufficient condition: NOT-ROBUST
means some schedule produces a cyclic serialization graph (which the
certifier rejects), not necessarily an actual serial-correctness
violation — the same precision gap experiment E4 measures dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.actions import (
    Abort,
    Action,
    Commit,
    Create,
    InformAbort,
    InformCommit,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from ..core.correctness import certify
from ..core.history import ConflictCache, spec_is_read_only
from ..core.names import ROOT, ObjectName, TransactionName, lca
from ..core.serialization_graph import CONFLICT, PRECEDES
from ..obs import MetricsRegistry
from ..sim.programs import (
    AccessCall,
    SubtransactionCall,
    TransactionProgram,
    system_type_for,
)

__all__ = [
    "ROBUST",
    "NOT_ROBUST",
    "LOST_UPDATE",
    "WRITE_SKEW",
    "FRACTURED_READ",
    "GENERAL",
    "StaticAccess",
    "ProgramSetSummary",
    "summarize_programs",
    "ConflictProbe",
    "ConflictWitness",
    "StaticEdge",
    "StaticGroup",
    "build_static_graph",
    "CycleEdge",
    "Counterexample",
    "ValidationResult",
    "RobustnessReport",
    "analyze_robustness",
    "DirectedPolicy",
    "explore_program_set",
    "validate_counterexample",
]

#: Verdicts.
ROBUST = "ROBUST"
NOT_ROBUST = "NOT-ROBUST"

#: Dangerous-structure classifications (see docs/STATIC_ANALYSIS.md).
LOST_UPDATE = "lost-update"
WRITE_SKEW = "write-skew"
FRACTURED_READ = "fractured-read"
GENERAL = "general"

#: Enumeration budgets.  Exceeding any of them sets ``truncated`` on the
#: report; a truncated ROBUST verdict is advisory rather than proven.
_MAX_CYCLES_PER_GROUP = 4000
_MAX_ASSIGNMENTS_PER_CYCLE = 4000
_MAX_WITNESSES_PER_EDGE = 12
_MAX_PROBE_OPS = 10
_MAX_PROBE_NODES = 4096


# ---------------------------------------------------------------------------
# 1. Summary extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StaticAccess:
    """One access leaf of a program forest.

    ``assumptions`` is the set of subtree names that must have aborted
    for this access to be issued at all: the ``after_abort_of`` triggers
    on the path from the template root down to the access.  An access
    with empty assumptions runs on every (non-aborted) path.
    """

    name: TransactionName
    obj: ObjectName
    op: Any
    read_only: bool
    assumptions: FrozenSet[TransactionName]

    def active_under(self, assumed: FrozenSet[TransactionName]) -> bool:
        """Does this access run — and stay visible — when exactly the
        subtrees in ``assumed`` abort?"""
        if not self.assumptions <= assumed:
            return False
        return not any(
            t == self.name or t.is_ancestor_of(self.name) for t in assumed
        )


@dataclass
class ProgramSetSummary:
    """The static footprint of a program forest.

    Maps every internal program node to its ordered children and
    sequential flag, every access leaf to its :class:`StaticAccess`,
    and every ``after_abort_of`` alternative to its trigger — enough to
    answer the two structural questions the analysis needs:
    :meth:`must_precede` (the guaranteed order between two names) and
    :meth:`subtree_accesses` (the footprint of a sibling subtree).
    """

    accesses: Dict[TransactionName, StaticAccess] = field(default_factory=dict)
    children: Dict[TransactionName, Tuple[TransactionName, ...]] = field(
        default_factory=dict
    )
    sequential: Dict[TransactionName, bool] = field(default_factory=dict)
    triggers: Dict[TransactionName, TransactionName] = field(default_factory=dict)
    _subtrees: Dict[TransactionName, Tuple[StaticAccess, ...]] = field(
        default_factory=dict
    )

    def subtree_accesses(self, node: TransactionName) -> Tuple[StaticAccess, ...]:
        """All access leaves at or below ``node`` (memoized)."""
        cached = self._subtrees.get(node)
        if cached is not None:
            return cached
        if node in self.accesses:
            result: Tuple[StaticAccess, ...] = (self.accesses[node],)
        else:
            result = tuple(
                access
                for child in self.children.get(node, ())
                for access in self.subtree_accesses(child)
            )
        self._subtrees[node] = result
        return result

    def must_precede(self, a: TransactionName, b: TransactionName) -> bool:
        """Is ``a``'s subtree guaranteed to resolve before ``b`` starts?

        True when the least common ancestor program is sequential and
        ``a``'s branch comes first, or when ``b``'s branch sits on an
        ``after_abort_of`` chain leading back to ``a``'s branch (an
        alternative is only requested once its trigger resolved).  The
        guarantee is conditional on both branches being issued at all —
        callers apply it to accesses already known active.
        """
        common = lca(a, b)
        if common == a or common == b:
            return False
        depth = common.depth + 1
        branch_a, branch_b = a.prefix(depth), b.prefix(depth)
        siblings = self.children.get(common)
        if siblings is None:
            return False
        if self.sequential.get(common, False):
            return siblings.index(branch_a) < siblings.index(branch_b)
        trigger = self.triggers.get(branch_b)
        while trigger is not None:
            if trigger == branch_a:
                return True
            trigger = self.triggers.get(trigger)
        return False


def _walk_program(
    summary: ProgramSetSummary,
    objects: Mapping[ObjectName, Any],
    node: TransactionName,
    program: TransactionProgram,
    inherited: FrozenSet[TransactionName],
) -> None:
    names: List[TransactionName] = []
    for call in program.calls:
        child = node.child(call.component)
        names.append(child)
        assumptions = inherited
        if call.after_abort_of is not None:
            trigger = node.child(call.after_abort_of)
            summary.triggers[child] = trigger
            assumptions = assumptions | {trigger}
        if isinstance(call, AccessCall):
            spec = objects.get(call.obj)
            summary.accesses[child] = StaticAccess(
                name=child,
                obj=call.obj,
                op=call.op,
                read_only=spec_is_read_only(spec, call.op),
                assumptions=assumptions,
            )
        elif isinstance(call, SubtransactionCall):
            _walk_program(summary, objects, child, call.program, assumptions)
        else:  # pragma: no cover - the DSL has exactly two call kinds
            raise TypeError(f"unknown call kind: {call!r}")
    summary.children[node] = tuple(names)
    summary.sequential[node] = program.sequential


def summarize_programs(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
) -> ProgramSetSummary:
    """Extract the static footprint of a program mapping.

    Accepts the same shape as :func:`repro.sim.programs.system_type_for`
    / :func:`repro.generic.system.make_generic_system`: typically
    ``{ROOT: root_program}``.  Mapping entries reachable from another
    entry (the :func:`collect_programs` flattened form) are walked once,
    from their forest root.  Multiple unrelated roots without a common
    program are treated as one parallel group under their parent —
    the scheduler is free to interleave them arbitrarily.
    """
    summary = ProgramSetSummary()
    roots = [
        name
        for name in programs
        if not any(
            other != name and other.is_ancestor_of(name) for other in programs
        )
    ]
    for root in roots:
        _walk_program(summary, objects, root, programs[root], frozenset())
    implicit = [root for root in roots if not root.is_root]
    if implicit:
        parent = implicit[0].parent
        if all(name.parent == parent for name in implicit):
            summary.children.setdefault(parent, tuple(implicit))
            summary.sequential.setdefault(parent, False)
    return summary


# ---------------------------------------------------------------------------
# 2. Sound may-conflict probing
# ---------------------------------------------------------------------------


class ConflictProbe:
    """A sound *may-conflict* oracle for one object.

    Every access in a program set runs at most once per execution, so
    the states any operation can observe are exactly those produced by
    applying a subset of the object's access multiset, in some order,
    to the initial state.  The probe enumerates that (bounded) state
    space, collects each operation's realizable return values, and asks
    the specification's ``conflicts`` predicate over the value cross
    product, memoized through the shared :class:`ConflictCache`.

    Degradations are always toward *conflicting* (the sound direction
    for a ROBUST verdict): read/write-style specs short-circuit on
    ``conflicts_iff_writer``, read-only pairs never conflict (the S002
    invariant), and anything the budget or the spec's surface cannot
    enumerate is reported as a potential conflict.
    """

    def __init__(
        self,
        spec: Any,
        ops: Sequence[Any],
        cache: ConflictCache,
        max_ops: int = _MAX_PROBE_OPS,
        max_nodes: int = _MAX_PROBE_NODES,
    ) -> None:
        self.spec = spec
        self.cache = cache
        self.iff_writer = bool(getattr(spec, "conflicts_iff_writer", False))
        self.truncated = False
        self._values: Dict[Any, Tuple[Any, ...]] = {}
        distinct: List[Any] = []
        for op in ops:
            if op not in distinct:
                distinct.append(op)
        if not self.iff_writer:
            self._enumerate(distinct, max_ops, max_nodes)

    def _enumerate(self, ops: List[Any], max_ops: int, max_nodes: int) -> None:
        if len(ops) > max_ops:
            self.truncated = True
            return
        apply = getattr(self.spec, "apply", None)
        initial = getattr(self.spec, "initial", None)
        if apply is None:
            self.truncated = True
            return
        seen: Set[Tuple[str, FrozenSet[int]]] = set()
        states: List[Any] = []
        state_keys: Set[str] = set()
        frontier: List[Tuple[Any, FrozenSet[int]]] = [(initial, frozenset())]
        values: Dict[int, Set[Any]] = {i: set() for i in range(len(ops))}
        value_order: Dict[int, List[Any]] = {i: [] for i in range(len(ops))}
        try:
            while frontier:
                state, used = frontier.pop()
                key = (repr(state), used)
                if key in seen:
                    continue
                seen.add(key)
                if len(seen) > max_nodes:
                    self.truncated = True
                    return
                if repr(state) not in state_keys:
                    state_keys.add(repr(state))
                    states.append(state)
                for index, op in enumerate(ops):
                    next_state, value = apply(state, op)
                    if value not in values[index]:
                        values[index].add(value)
                        value_order[index].append(value)
                    if index not in used:
                        frontier.append((next_state, used | {index}))
        except Exception:
            self.truncated = True
            return
        for index, op in enumerate(ops):
            self._values[op] = tuple(value_order[index])

    def may_conflict(self, op1: Any, op2: Any) -> bool:
        """Could ``op1`` and ``op2`` conflict under any realizable values?"""
        if spec_is_read_only(self.spec, op1) and spec_is_read_only(self.spec, op2):
            return False
        if self.iff_writer:
            return True
        if self.truncated:
            return True
        values1 = self._values.get(op1)
        values2 = self._values.get(op2)
        if values1 is None or values2 is None:
            return True
        return any(
            self.cache.conflicts(self.spec, op1, v1, op2, v2)
            for v1 in values1
            for v2 in values2
        )


def _build_probes(
    objects: Mapping[ObjectName, Any],
    summary: ProgramSetSummary,
    cache: ConflictCache,
) -> Dict[ObjectName, ConflictProbe]:
    per_object: Dict[ObjectName, List[Any]] = {}
    for access in summary.accesses.values():
        per_object.setdefault(access.obj, []).append(access.op)
    return {
        obj: ConflictProbe(objects.get(obj), ops, cache)
        for obj, ops in per_object.items()
    }


# ---------------------------------------------------------------------------
# 3. The static serialization graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConflictWitness:
    """A pair of accesses that can realize a conflict edge: the source
    access's ``REQUEST_COMMIT`` before the target's."""

    source: TransactionName
    target: TransactionName
    obj: ObjectName

    def to_dict(self) -> Dict[str, str]:
        return {
            "source": str(self.source),
            "target": str(self.target),
            "obj": str(self.obj),
        }


@dataclass(frozen=True)
class StaticEdge:
    """A potential edge between two sibling subtrees.

    ``forced`` marks edges present in *every* run where both sides are
    issued (sequential program order); unforced edges depend on the
    scheduler.  PRECEDES edges are recorded only when forced — a
    potential report-before-request edge exists between any unordered
    pair and is considered implicitly during cycle search.
    """

    source: TransactionName
    target: TransactionName
    kind: str
    forced: bool
    witnesses: Tuple[ConflictWitness, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": str(self.source),
            "target": str(self.target),
            "kind": self.kind,
            "forced": self.forced,
            "witnesses": [w.to_dict() for w in self.witnesses],
        }


@dataclass
class StaticGroup:
    """The static serialization graph of one sibling group."""

    parent: TransactionName
    members: Tuple[TransactionName, ...]
    edges: Tuple[StaticEdge, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parent": str(self.parent),
            "members": [str(m) for m in self.members],
            "edges": [edge.to_dict() for edge in self.edges],
        }


def _compatible(a: StaticAccess, b: StaticAccess) -> bool:
    """Can both accesses be visible in one run?"""
    assumed = a.assumptions | b.assumptions
    return a.active_under(assumed) and b.active_under(assumed)


def _conflict_witnesses(
    summary: ProgramSetSummary,
    probes: Mapping[ObjectName, ConflictProbe],
    source: TransactionName,
    target: TransactionName,
) -> Tuple[ConflictWitness, ...]:
    witnesses: List[ConflictWitness] = []
    for a in summary.subtree_accesses(source):
        for b in summary.subtree_accesses(target):
            if a.obj != b.obj or not _compatible(a, b):
                continue
            probe = probes.get(a.obj)
            if probe is None or probe.may_conflict(a.op, b.op):
                witnesses.append(ConflictWitness(a.name, b.name, a.obj))
    return tuple(witnesses)


def build_static_graph(
    summary: ProgramSetSummary,
    probes: Mapping[ObjectName, ConflictProbe],
) -> Tuple[StaticGroup, ...]:
    """The per-sibling-group static serialization graphs of a forest.

    Conflict edges connect sibling subtrees with a compatible
    may-conflicting access pair, in every direction the structural
    order allows; forced PRECEDES edges record the sequential program
    order.  Groups are emitted for every program node with at least two
    calls, at every nesting depth.
    """
    groups: List[StaticGroup] = []
    for parent in sorted(summary.children):
        members = summary.children[parent]
        if len(members) < 2:
            continue
        edges: List[StaticEdge] = []
        for u in members:
            for v in members:
                if u == v or summary.must_precede(v, u):
                    continue
                forced = summary.must_precede(u, v)
                witnesses = _conflict_witnesses(summary, probes, u, v)
                if witnesses:
                    edges.append(
                        StaticEdge(u, v, CONFLICT, forced, witnesses)
                    )
                if forced:
                    edges.append(StaticEdge(u, v, PRECEDES, True))
        groups.append(StaticGroup(parent, members, tuple(edges)))
    return tuple(groups)


# ---------------------------------------------------------------------------
# 4. Dangerous-structure detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CycleEdge:
    """One edge of a realized cycle: a conflict witness or a potential
    report-before-request (PRECEDES) edge."""

    source: TransactionName
    target: TransactionName
    kind: str
    witness: Optional[ConflictWitness] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "source": str(self.source),
            "target": str(self.target),
            "kind": self.kind,
        }
        if self.witness is not None:
            payload["witness"] = self.witness.to_dict()
        return payload


@dataclass
class Counterexample:
    """A realizable cyclic structure, with the schedule that realizes it.

    ``schedule`` lists the access names of the implicated subtrees in a
    ``REQUEST_COMMIT`` order consistent with every constraint the cycle
    needs; ``assumed_aborts`` are the subtrees a run must abort to take
    the implicated ``after_abort_of`` branches.
    """

    parent: TransactionName
    nodes: Tuple[TransactionName, ...]
    edges: Tuple[CycleEdge, ...]
    classification: str
    assumed_aborts: FrozenSet[TransactionName]
    schedule: Tuple[TransactionName, ...]

    def sketch(self, summary: Optional[ProgramSetSummary] = None) -> str:
        """A human-readable program-level account of the cycle."""
        ring = " -> ".join(str(n) for n in self.nodes + (self.nodes[0],))
        lines = [
            f"potential cycle under {self.parent}: {ring} "
            f"[{self.classification}]"
        ]
        for edge in self.edges:
            if edge.witness is not None:
                w = edge.witness
                op: Any = ""
                target_op: Any = ""
                if summary is not None:
                    op = summary.accesses[w.source].op
                    target_op = summary.accesses[w.target].op
                lines.append(
                    f"  {edge.source} -> {edge.target}: "
                    f"{w.source} {op} commits before {w.target} {target_op} "
                    f"on {w.obj}"
                )
            else:
                lines.append(
                    f"  {edge.source} -> {edge.target}: {edge.source} "
                    "reports before {0} is requested".format(edge.target)
                )
        if self.assumed_aborts:
            aborted = ", ".join(str(t) for t in sorted(self.assumed_aborts))
            lines.append(f"  requires aborting: {aborted}")
        lines.append(
            "  directed schedule: "
            + ", ".join(str(name) for name in self.schedule)
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "parent": str(self.parent),
            "nodes": [str(n) for n in self.nodes],
            "classification": self.classification,
            "edges": [edge.to_dict() for edge in self.edges],
            "assumed_aborts": sorted(str(t) for t in self.assumed_aborts),
            "schedule": [str(name) for name in self.schedule],
        }


def _simple_cycles(
    members: Sequence[TransactionName],
    has_edge: Mapping[Tuple[TransactionName, TransactionName], bool],
    cap: int,
) -> Tuple[List[List[TransactionName]], bool]:
    """Simple cycles (length >= 2), canonicalized to start at their
    smallest member.  Returns ``(cycles, truncated)``."""
    ordered = sorted(members)
    rank = {name: index for index, name in enumerate(ordered)}
    cycles: List[List[TransactionName]] = []
    truncated = False

    def extend(start: TransactionName, path: List[TransactionName]) -> bool:
        if len(cycles) >= cap:
            return False
        current = path[-1]
        for candidate in ordered:
            if candidate == start and len(path) >= 2:
                if has_edge.get((current, start), False):
                    cycles.append(list(path))
                    if len(cycles) >= cap:
                        return False
                continue
            if rank[candidate] <= rank[start] or candidate in path:
                continue
            if not has_edge.get((current, candidate), False):
                continue
            if not extend(start, path + [candidate]):
                return False
        return True

    for start in ordered:
        if not extend(start, [start]):
            truncated = True
            break
    cycles.sort(key=len)
    return cycles, truncated


def _constraint_schedule(
    summary: ProgramSetSummary,
    nodes: Sequence[TransactionName],
    edges: Sequence[CycleEdge],
    assumed: FrozenSet[TransactionName],
) -> Optional[Tuple[TransactionName, ...]]:
    """A REQUEST_COMMIT order satisfying every constraint, or ``None``.

    Constraint graph over the *active* accesses of the cycle's nodes:
    structural ``must_precede`` pairs, witness order per conflict edge,
    and all-before-all per precedes edge.  Consistency = acyclicity;
    the topological order doubles as the directed schedule.
    """
    active: Dict[TransactionName, List[TransactionName]] = {}
    for node in nodes:
        active[node] = [
            access.name
            for access in summary.subtree_accesses(node)
            if access.active_under(assumed)
        ]
    instances: List[TransactionName] = [
        name for node in nodes for name in active[node]
    ]
    successors: Dict[TransactionName, Set[TransactionName]] = {
        name: set() for name in instances
    }
    for i, a in enumerate(instances):
        for b in instances[i + 1 :]:
            if summary.must_precede(a, b):
                successors[a].add(b)
            elif summary.must_precede(b, a):
                successors[b].add(a)
    for edge in edges:
        if edge.kind == CONFLICT:
            assert edge.witness is not None
            if (
                edge.witness.source not in successors
                or edge.witness.target not in successors
            ):
                return None
            successors[edge.witness.source].add(edge.witness.target)
        else:
            for a in active[edge.source]:
                for b in active[edge.target]:
                    successors[a].add(b)
    indegree: Dict[TransactionName, int] = {name: 0 for name in instances}
    for name in instances:
        for succ in successors[name]:
            if succ != name:
                indegree[succ] += 1
    ready = sorted(name for name in instances if indegree[name] == 0)
    order: List[TransactionName] = []
    while ready:
        name = ready.pop(0)
        order.append(name)
        inserted = False
        for succ in sorted(successors[name]):
            if succ == name:
                continue
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
                inserted = True
        if inserted:
            ready.sort()
    if len(order) != len(instances):
        return None
    return tuple(order)


def _classify(
    summary: ProgramSetSummary, edges: Sequence[CycleEdge]
) -> str:
    """Name the dangerous structure a realized cycle exhibits."""
    if len(edges) != 2 or any(edge.kind != CONFLICT for edge in edges):
        return GENERAL
    first, second = edges
    assert first.witness is not None and second.witness is not None

    def shape(witness: ConflictWitness) -> Tuple[bool, bool]:
        return (
            summary.accesses[witness.source].read_only,
            summary.accesses[witness.target].read_only,
        )

    shape1, shape2 = shape(first.witness), shape(second.witness)
    read_before_write = (True, False)
    write_before_read = (False, True)
    if first.witness.obj == second.witness.obj:
        if shape1 == read_before_write and shape2 == read_before_write:
            return LOST_UPDATE
        return GENERAL
    if shape1 == read_before_write and shape2 == read_before_write:
        return WRITE_SKEW
    if {shape1, shape2} == {read_before_write, write_before_read}:
        return FRACTURED_READ
    return GENERAL


def _edge_assignments(
    options: Sequence[Sequence[Optional[ConflictWitness]]],
    cap: int,
) -> Iterator[Tuple[Optional[ConflictWitness], ...]]:
    """Cartesian product of per-edge witness options, bounded by ``cap``.

    ``None`` stands for the PRECEDES option; assignments with fewer than
    two conflict edges are skipped (a realizable cycle needs at least
    two — precedes chains embed in real time)."""
    count = 0
    stack: List[Optional[ConflictWitness]] = []

    def rec(position: int) -> Iterator[Tuple[Optional[ConflictWitness], ...]]:
        nonlocal count
        if count >= cap:
            return
        if position == len(options):
            count += 1
            chosen = tuple(stack)
            if sum(1 for witness in chosen if witness is not None) >= 2:
                yield chosen
            return
        for option in options[position]:
            stack.append(option)
            yield from rec(position + 1)
            stack.pop()
            if count >= cap:
                return

    yield from rec(0)


def _find_counterexample(
    summary: ProgramSetSummary,
    group: StaticGroup,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[Optional[Counterexample], bool]:
    """Search one group for a realizable cycle.

    Returns ``(counterexample, truncated)`` — the first realizable
    cycle in shortest-first order, or ``None`` with a flag telling
    whether any enumeration budget was hit."""
    conflict_witnesses: Dict[
        Tuple[TransactionName, TransactionName], Tuple[ConflictWitness, ...]
    ] = {}
    has_edge: Dict[Tuple[TransactionName, TransactionName], bool] = {}
    for u in group.members:
        for v in group.members:
            if u == v or summary.must_precede(v, u):
                continue
            has_edge[(u, v)] = True
    for edge in group.edges:
        if edge.kind == CONFLICT:
            conflict_witnesses[(edge.source, edge.target)] = edge.witnesses
    cycles, truncated = _simple_cycles(
        group.members, has_edge, _MAX_CYCLES_PER_GROUP
    )
    for cycle in cycles:
        pairs = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        with_witnesses = sum(1 for pair in pairs if conflict_witnesses.get(pair))
        if with_witnesses < 2:
            continue
        if metrics is not None:
            metrics.inc("robustness.cycles.checked")
        options: List[List[Optional[ConflictWitness]]] = []
        for pair in pairs:
            witnesses = list(conflict_witnesses.get(pair, ()))
            choice: List[Optional[ConflictWitness]] = list(
                witnesses[:_MAX_WITNESSES_PER_EDGE]
            )
            if len(witnesses) > _MAX_WITNESSES_PER_EDGE:
                truncated = True
            choice.append(None)
            options.append(choice)
        for assignment in _edge_assignments(
            options, _MAX_ASSIGNMENTS_PER_CYCLE
        ):
            edges = tuple(
                CycleEdge(
                    source,
                    target,
                    CONFLICT if witness is not None else PRECEDES,
                    witness,
                )
                for (source, target), witness in zip(pairs, assignment)
            )
            assumed = frozenset(
                assumption
                for edge in edges
                if edge.witness is not None
                for name in (edge.witness.source, edge.witness.target)
                for assumption in summary.accesses[name].assumptions
            )
            if not all(
                edge.witness is None
                or (
                    summary.accesses[edge.witness.source].active_under(assumed)
                    and summary.accesses[edge.witness.target].active_under(
                        assumed
                    )
                )
                for edge in edges
            ):
                continue
            schedule = _constraint_schedule(summary, cycle, edges, assumed)
            if schedule is None:
                continue
            return (
                Counterexample(
                    parent=group.parent,
                    nodes=tuple(cycle),
                    edges=edges,
                    classification=_classify(summary, edges),
                    assumed_aborts=assumed,
                    schedule=schedule,
                ),
                truncated,
            )
    return None, truncated


# ---------------------------------------------------------------------------
# 5. The validation bridge
# ---------------------------------------------------------------------------


@dataclass
class ValidationResult:
    """Outcome of machine-checking one counterexample dynamically."""

    witnessed: bool
    method: Optional[str]  # "directed" | "explored" | None
    runs: int
    cycle: Optional[Tuple[TransactionName, List[TransactionName]]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "witnessed": self.witnessed,
            "method": self.method,
            "runs": self.runs,
        }
        if self.cycle is not None:
            parent, nodes = self.cycle
            payload["cycle"] = {
                "parent": str(parent),
                "nodes": [str(n) for n in nodes],
            }
        return payload


class DirectedPolicy:
    """Drive the generic system toward a counterexample's schedule.

    A :class:`repro.sim.policies.SchedulingPolicy` that aborts the
    assumed subtrees at the first opportunity, delays every scheduled
    access's ``REQUEST_COMMIT`` until it is the next due one, closes
    finished subtrees promptly (so report-before-request edges land),
    and otherwise lets the system make progress deterministically.
    """

    def __init__(self, counterexample: Counterexample) -> None:
        self.schedule: Tuple[TransactionName, ...] = counterexample.schedule
        self.scheduled: FrozenSet[TransactionName] = frozenset(
            counterexample.schedule
        )
        self.assumed: FrozenSet[TransactionName] = counterexample.assumed_aborts
        self._completed: Set[TransactionName] = set()
        self._aborted: Set[TransactionName] = set()
        self._offered: List[Action] = []

    def offer_aborts(self, aborts: Sequence[Action]) -> None:
        self._offered = [
            action
            for action in aborts
            if action.transaction in self.assumed
            and action.transaction not in self._aborted
        ]

    def observe(self, action: Action) -> None:
        if isinstance(action, Abort):
            self._aborted.add(action.transaction)
        elif isinstance(action, (ReportCommit, ReportAbort)):
            self._completed.add(action.transaction)

    def _dead(self, name: TransactionName) -> bool:
        return any(
            t == name or t.is_ancestor_of(name) for t in self._aborted
        )

    def _next_target(self) -> Optional[TransactionName]:
        for name in self.schedule:
            if name not in self._completed and not self._dead(name):
                return name
        return None

    def _priority(
        self, action: Action, target: Optional[TransactionName]
    ) -> int:
        transaction = action.transaction
        if isinstance(
            action,
            (Commit, ReportCommit, ReportAbort, InformCommit, InformAbort),
        ):
            return 0
        if isinstance(action, RequestCommit):
            if transaction in self.scheduled and transaction != target:
                return 4  # not due yet — hold the access back
            return 1
        if isinstance(action, (RequestCreate, Create)):
            if target is not None and (
                transaction == target or transaction.is_ancestor_of(target)
            ):
                return 2
            if any(
                transaction == t or transaction.is_ancestor_of(t)
                for t in self.assumed
            ):
                return 2  # reach the assumed subtree so it can be aborted
            if any(
                t.is_ancestor_of(transaction) for t in self.assumed
            ):
                return 5  # never start work under a doomed subtree
            if transaction in self.scheduled:
                return 4  # future scheduled access — hold back
            return 3
        return 3

    def choose(self, enabled: Sequence[Action]) -> Optional[Action]:
        if self._offered:
            return self._offered.pop(0)
        if not enabled:
            return None
        target = self._next_target()
        return min(
            enabled, key=lambda action: (self._priority(action, target), repr(action))
        )


def _restrict_programs(
    programs: Mapping[TransactionName, TransactionProgram],
    counterexample: Counterexample,
) -> Dict[TransactionName, TransactionProgram]:
    """The implicated templates only: drop unrelated top-level calls.

    Keeps every top-level subtree the counterexample touches (cycle
    members, assumed-abort subtrees) plus, transitively, the triggers
    of any kept ``after_abort_of`` alternative, so the restricted root
    program stays well-formed.
    """
    needed: Set[TransactionName] = set()
    for name in counterexample.nodes:
        needed.add(name.prefix(1))
    for name in counterexample.assumed_aborts:
        needed.add(name.prefix(1))
    for name in counterexample.schedule:
        needed.add(name.prefix(1))
    root_program = programs.get(ROOT)
    if root_program is None:
        return {
            name: program
            for name, program in programs.items()
            if name in needed or not name.parent.is_root
        }
    keep: Set[str] = {name.path[0] for name in needed}
    changed = True
    while changed:
        changed = False
        for call in root_program.calls:
            if call.component in keep and call.after_abort_of is not None:
                if call.after_abort_of not in keep:
                    keep.add(call.after_abort_of)
                    changed = True
    calls = tuple(
        call for call in root_program.calls if call.component in keep
    )
    if len(calls) == len(root_program.calls):
        return dict(programs)
    result = root_program.result if not callable(root_program.result) else "ok"
    return {
        ROOT: TransactionProgram(
            calls, sequential=root_program.sequential, result=result
        )
    }


def _certified_cycle(
    behavior: Sequence[Action], objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
) -> Optional[Tuple[TransactionName, List[TransactionName]]]:
    system_type = system_type_for(objects, programs)
    certificate = certify(behavior, system_type, construct_witness=False)
    return certificate.cycle


def _run_once(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
    policy: Any,
    max_steps: int,
) -> Optional[Tuple[TransactionName, List[TransactionName]]]:
    from ..generic.permissive import PermissiveObject
    from ..generic.system import make_generic_system
    from ..sim.driver import run_system

    system_type = system_type_for(objects, programs)
    system = make_generic_system(system_type, programs, PermissiveObject)
    result = run_system(system, policy, system_type, max_steps=max_steps)
    certificate = certify(
        result.behavior, system_type, construct_witness=False
    )
    return certificate.cycle


def explore_program_set(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
    seeds: int = 8,
    max_steps: int = 4000,
) -> Optional[Tuple[TransactionName, List[TransactionName]]]:
    """Bounded dynamic exploration: random runs without concurrency
    control, certified after the fact.  Returns the first serialization
    graph cycle found, or ``None`` when every seeded run stays acyclic.
    """
    from ..sim.policies import RandomPolicy

    for seed in range(seeds):
        cycle = _run_once(objects, programs, RandomPolicy(seed), max_steps)
        if cycle is not None:
            return cycle
    return None


def validate_counterexample(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
    counterexample: Counterexample,
    explore_seeds: int = 8,
    max_steps: int = 4000,
) -> ValidationResult:
    """Machine-check a counterexample against the dynamic certifier.

    First a directed run: :class:`DirectedPolicy` steers the permissive
    system over the implicated templates toward the counterexample's
    schedule, and the resulting behavior is handed to ``certify`` —
    witnessed iff the certifier reports a cycle.  If direction misses
    (value-dependent conflicts can be schedule-sensitive), bounded
    random exploration of the same restricted templates is the
    fallback.
    """
    restricted = _restrict_programs(programs, counterexample)
    runs = 1
    cycle = _run_once(
        objects, restricted, DirectedPolicy(counterexample), max_steps
    )
    if cycle is not None:
        return ValidationResult(True, "directed", runs, cycle)
    from ..sim.policies import RandomPolicy

    for seed in range(explore_seeds):
        runs += 1
        cycle = _run_once(objects, restricted, RandomPolicy(seed), max_steps)
        if cycle is not None:
            return ValidationResult(True, "explored", runs, cycle)
    return ValidationResult(False, None, runs)


# ---------------------------------------------------------------------------
# 6. The analyzer entry point
# ---------------------------------------------------------------------------


@dataclass
class RobustnessReport:
    """The verdict and its evidence."""

    verdict: str
    groups: Tuple[StaticGroup, ...]
    counterexamples: Tuple[Counterexample, ...]
    validations: Tuple[ValidationResult, ...]
    truncated: bool
    summary: ProgramSetSummary

    @property
    def robust(self) -> bool:
        return self.verdict == ROBUST

    @property
    def witnessed(self) -> bool:
        """Did the validation bridge confirm at least one counterexample?"""
        return any(validation.witnessed for validation in self.validations)

    @property
    def classifications(self) -> Tuple[str, ...]:
        return tuple(cx.classification for cx in self.counterexamples)

    def explain(self) -> str:
        lines = [f"{self.verdict}"]
        if self.truncated:
            lines[0] += " (enumeration truncated — verdict advisory)"
        for group in self.groups:
            conflict_edges = [e for e in group.edges if e.kind == CONFLICT]
            lines.append(
                f"group under {group.parent}: {len(group.members)} members, "
                f"{len(conflict_edges)} potential conflict edge(s)"
            )
        for index, cx in enumerate(self.counterexamples):
            lines.append(cx.sketch(self.summary))
            if index < len(self.validations):
                validation = self.validations[index]
                if validation.witnessed:
                    lines.append(
                        f"  validated: concrete cyclic history via "
                        f"{validation.method} run ({validation.runs} run(s))"
                    )
                else:
                    lines.append(
                        f"  validation missed after {validation.runs} "
                        "bounded run(s)"
                    )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "robust": self.robust,
            "truncated": self.truncated,
            "groups": [group.to_dict() for group in self.groups],
            "counterexamples": [cx.to_dict() for cx in self.counterexamples],
            "validations": [v.to_dict() for v in self.validations],
        }


def analyze_robustness(
    objects: Mapping[ObjectName, Any],
    programs: Mapping[TransactionName, TransactionProgram],
    validate: bool = False,
    explore_seeds: int = 8,
    max_steps: int = 4000,
    cache: Optional[ConflictCache] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RobustnessReport:
    """Decide whether a program set is robust (no reachable execution
    has a cyclic serialization graph).

    ``validate=True`` machine-checks every NOT-ROBUST verdict against
    the dynamic certifier through the validation bridge; ``validate=
    False`` is the static-only path (the default — analysis stays pure
    and fast).  The two lanes must agree on the verdict itself; only
    the evidence differs, which is what the A/B discipline (lint rule
    R001) keeps tested both ways.
    """
    if cache is None:
        cache = ConflictCache()
    if metrics is not None:
        metrics.inc("robustness.analyses")
    summary = summarize_programs(objects, programs)
    probes = _build_probes(objects, summary, cache)
    groups = build_static_graph(summary, probes)
    if metrics is not None:
        metrics.inc("robustness.groups", len(groups))
    truncated = any(probe.truncated for probe in probes.values())
    counterexamples: List[Counterexample] = []
    for group in groups:
        counterexample, group_truncated = _find_counterexample(
            summary, group, metrics
        )
        truncated = truncated or group_truncated
        if counterexample is not None:
            counterexamples.append(counterexample)
            if metrics is not None:
                metrics.inc("robustness.counterexamples")
    verdict = NOT_ROBUST if counterexamples else ROBUST
    if metrics is not None and verdict == NOT_ROBUST:
        metrics.inc("robustness.not_robust")
    validations: List[ValidationResult] = []
    if validate and counterexamples:
        for counterexample in counterexamples:
            validation = validate_counterexample(
                objects,
                programs,
                counterexample,
                explore_seeds=explore_seeds,
                max_steps=max_steps,
            )
            validations.append(validation)
            if metrics is not None:
                if validation.method == "directed":
                    metrics.inc("robustness.validation.directed")
                elif validation.method == "explored":
                    metrics.inc("robustness.validation.explored")
                else:
                    metrics.inc("robustness.validation.missed")
    return RobustnessReport(
        verdict=verdict,
        groups=groups,
        counterexamples=tuple(counterexamples),
        validations=tuple(validations),
        truncated=truncated,
        summary=summary,
    )
