"""Static analysis for the reproduction itself (``repro lint``).

The correctness of the reproduction rests on invariants the test suite
only samples.  This package proves them at lint time instead:

* :mod:`repro.analysis.linter` — an AST lint engine with a rule
  registry and project-specific rules (R001–R004): A/B engine flags
  keep both paths alive, library-code hygiene, no quadratic patterns in
  ``core/`` hot paths, automaton handlers guard before deriving state;
* :mod:`repro.analysis.spec_check` — a spec-soundness checker that
  exhaustively verifies, over bounded op/value domains, that every
  registered commutativity specification is symmetric, that read-only
  operations never conflict (the exact assumption the indexed
  ``conflict_pairs`` fast path relies on), and that ``conflicts``
  agrees with the definitional tables of :mod:`repro.spec.commutativity`;
* :mod:`repro.analysis.drift` — drift detectors keeping
  ``docs/OBSERVABILITY.md`` in sync with the metric names the source
  actually emits, and ``EXPERIMENTS.md`` in sync with
  ``benchmarks/bench_*.py``, in both directions;
* :mod:`repro.analysis.robustness` — the static robustness analyzer:
  program-level serialization graphs over the :mod:`repro.sim.programs`
  templates, dangerous-structure detection (lost update, write skew,
  fractured read), and a validation bridge that machine-checks every
  NOT-ROBUST verdict against the dynamic certifier (``repro
  robustness``).

The lint engines run via ``repro lint [--json] [--rules ...]`` and the
``make lint`` target; see ``docs/STATIC_ANALYSIS.md`` for the rule
catalogue, the robustness verdict semantics, and suppression syntax.
"""

from .linter import Finding, LintContext, LintEngine, ModuleUnit, Rule, lint_paths
from .rules import all_rules, rule_by_id
from .spec_check import SpecProblem, SpecReport, check_all_builtin_specs, check_spec
from .drift import (
    DriftProblem,
    check_all_drift,
    check_benchmark_drift,
    check_metrics_drift,
    documented_metric_names,
    source_metric_names,
)
from .robustness import (
    NOT_ROBUST,
    ROBUST,
    RobustnessReport,
    analyze_robustness,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintEngine",
    "ModuleUnit",
    "Rule",
    "lint_paths",
    "all_rules",
    "rule_by_id",
    "SpecProblem",
    "SpecReport",
    "check_all_builtin_specs",
    "check_spec",
    "DriftProblem",
    "check_all_drift",
    "check_benchmark_drift",
    "check_metrics_drift",
    "documented_metric_names",
    "source_metric_names",
    "ROBUST",
    "NOT_ROBUST",
    "RobustnessReport",
    "analyze_robustness",
]
