"""R004 — automaton action handlers guard before deriving state.

The I/O-automaton contract (:mod:`repro.automata.base`) is that
``effect(state, action)`` is *functional*: it dispatches on the action,
derives a **new** state, and never mutates its argument — the
exploration utilities (schedule replay, enabled-action enumeration)
branch on shared states and would corrupt each other otherwise.  For
every ``effect``/``step`` method with the ``(self, state, action)``
shape this rule enforces:

* **precondition first** — the handler inspects the action (an
  ``isinstance``/``match`` dispatch, a signature predicate such as
  ``is_input``/``is_action``/``enabled``, or delegation to a
  sub-automaton's ``effect``) before returning a derived state;
* **no in-place mutation** — no assignment to an attribute or item of
  the state parameter, and no call of a known mutating method
  (``append``, ``add``, ``update``, ...) on it.

Abstract declarations (docstring-only, ``...``, ``pass`` or a lone
``raise``) are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..linter import Finding, LintContext, ModuleUnit, Rule

__all__ = ["AutomatonPreconditionRule"]

#: Handler names the rule applies to.
_HANDLER_NAMES = ("effect", "step")

#: Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Calls that count as consulting the action's precondition.
_GUARD_CALLS = frozenset({"isinstance", "is_input", "is_output", "is_action", "enabled"})


def _is_trivial_body(body: List[ast.stmt]) -> bool:
    """Docstring-only / ``...`` / ``pass`` / lone ``raise`` bodies."""
    statements = list(body)
    if (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]
    if not statements:
        return True
    if len(statements) == 1:
        only = statements[0]
        if isinstance(only, (ast.Pass, ast.Raise)):
            return True
        if isinstance(only, ast.Expr) and isinstance(only.value, ast.Constant):
            return only.value.value is Ellipsis
    return False


def _handler_params(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``(state, action)`` parameter names of a matching handler, or None."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if node.name not in _HANDLER_NAMES:
        return None
    positional = node.args.posonlyargs + node.args.args
    if len(positional) < 3:
        return None
    return positional[1].arg, positional[2].arg


def _mentions(expression: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name) and node.id == name
        for node in ast.walk(expression)
    )


def _has_action_guard(function: ast.AST, action: str) -> bool:
    """Does the handler dispatch on (or delegate for) the action?"""
    for node in ast.walk(function):
        if isinstance(node, (ast.If, ast.IfExp)) and _mentions(node.test, action):
            return True
        if isinstance(node, ast.Match) and _mentions(node.subject, action):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _GUARD_CALLS and any(
                _mentions(arg, action) for arg in node.args
            ):
                return True
            if name in _HANDLER_NAMES and isinstance(func, ast.Attribute):
                return True  # delegation to a sub-automaton handler
    return False


def _root_name(node: ast.expr) -> Optional[str]:
    """The name at the root of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _state_mutations(function: ast.AST, state: str) -> Iterator[ast.AST]:
    """Statements that mutate the ``state`` parameter in place."""
    for node in ast.walk(function):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and _root_name(target) == state
                ):
                    yield node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and _root_name(node.func.value) == state
        ):
            yield node


class AutomatonPreconditionRule(Rule):
    """R004: handlers check the action and never mutate the state in place."""

    rule_id = "R004"
    title = "automaton handlers guard before deriving state"
    tags = ("precondition",)

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Check every ``effect``/``step`` handler defined in this module."""
        for node in ast.walk(unit.tree):
            params = _handler_params(node)
            if params is None:
                continue
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if _is_trivial_body(node.body):
                continue
            state, action = params
            if not _has_action_guard(node, action):
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    node.lineno,
                    f"{node.name}() derives a new state without checking "
                    f"its precondition on '{action}' first (dispatch with "
                    "isinstance/match or a signature predicate)",
                )
            for mutation in _state_mutations(node, state):
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    mutation.lineno,
                    f"{node.name}() mutates parameter '{state}' in place — "
                    "effects are functional and must return a new state",
                )
