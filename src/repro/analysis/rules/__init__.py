"""The project-specific lint rule registry.

Rules are instantiated fresh per :func:`all_rules` call so engines never
share mutable state.  The catalogue (ids, what each rule proves, and the
suppression tags) is documented in ``docs/STATIC_ANALYSIS.md``; adding a
rule means adding a module here, registering its class in
``_RULE_CLASSES``, and documenting it there.
"""

from __future__ import annotations

from typing import List, Sequence, Type

from ..linter import Rule
from .ab_flags import ABFlagRule
from .hygiene import HygieneRule
from .quadratic import QuadraticPatternRule
from .automaton import AutomatonPreconditionRule
from .programs import ProgramRegistryRule

__all__ = [
    "ABFlagRule",
    "HygieneRule",
    "QuadraticPatternRule",
    "AutomatonPreconditionRule",
    "ProgramRegistryRule",
    "all_rules",
    "rule_by_id",
]

_RULE_CLASSES: Sequence[Type[Rule]] = (
    ABFlagRule,
    HygieneRule,
    QuadraticPatternRule,
    AutomatonPreconditionRule,
    ProgramRegistryRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [cls() for cls in _RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """Instantiate the rule with the given id (case-insensitive).

    Raises ``KeyError`` with the known ids when the id is unknown.
    """
    wanted = rule_id.upper()
    for cls in _RULE_CLASSES:
        if cls.rule_id.upper() == wanted:
            return cls()
    known = ", ".join(cls.rule_id for cls in _RULE_CLASSES)
    raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
