"""R002 — library-code hygiene: no prints, bare excepts, mutable defaults.

Library modules must not write to stdout (``print`` belongs to the CLI
layer), must not swallow arbitrary exceptions with a bare ``except:``
(``KeyboardInterrupt``/``SystemExit`` included), and must not use
mutable default argument values (the classic shared-state footgun; the
meta tests require determinism, and a mutated default is cross-call
state).  The CLI modules are exempt from the print check by name.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..linter import Finding, LintContext, ModuleUnit, Rule

__all__ = ["HygieneRule"]

#: Calls producing a fresh mutable object — disallowed as defaults.
_MUTABLE_FACTORIES = ("list", "dict", "set", "bytearray")


def _mutable_default(default: Optional[ast.expr]) -> Optional[str]:
    """A description of the mutable default, or None when it is fine."""
    if default is None:
        return None
    if isinstance(default, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(default, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(default, (ast.Set, ast.SetComp)):
        return "set"
    if (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in _MUTABLE_FACTORIES
    ):
        return default.func.id
    return None


class HygieneRule(Rule):
    """R002: no ``print``, bare ``except:``, or mutable default arguments."""

    rule_id = "R002"
    title = "library-code hygiene"
    tags = ("hygiene", "print")

    #: Module basenames allowed to print (the user-facing CLI layer).
    print_allowed: Tuple[str, ...] = ("cli.py", "__main__.py")

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Scan one module for the three hygiene violations."""
        allow_print = unit.path.name in self.print_allowed
        for node in ast.walk(unit.tree):
            if (
                not allow_print
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    node.lineno,
                    "print() in library code — return or log instead "
                    "(only the CLI layer talks to stdout)",
                )
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    node.lineno,
                    "bare 'except:' swallows SystemExit/KeyboardInterrupt — "
                    "name the exceptions you can handle",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                defaults = list(args.defaults) + [
                    default for default in args.kw_defaults if default is not None
                ]
                for default in defaults:
                    kind = _mutable_default(default)
                    if kind is not None:
                        name = getattr(node, "name", "<lambda>")
                        yield Finding(
                            self.rule_id,
                            unit.display_path,
                            default.lineno,
                            f"mutable default argument ({kind}) in {name}() "
                            "— use None and create it in the body",
                        )
