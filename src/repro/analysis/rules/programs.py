"""R005 — transaction programs flow through the program registry.

The :mod:`repro.sim.programs` DSL derives a system type's access
registry from the program structure itself (``system_type_for`` /
``collect_programs``), which is what keeps the static robustness
analyzer, the program automata, and the certifier looking at the *same*
access footprint.  A module that builds :class:`TransactionProgram`
values but registers accesses by hand (``register_access``) — or never
routes the programs through the registry helpers at all — reopens the
drift the DSL closed: the analyzer would certify one program while the
simulator runs another.

Two checks:

1. **No hand-built registries next to programs** — a single function
   that both constructs a program (``TransactionProgram``/``seq``/
   ``par``/``access_sequence``) and calls ``register_access`` is mixing
   the declarative and imperative styles; derive the registry instead.
2. **Programs reach the registry** — a module that constructs programs
   must reference ``system_type_for`` or ``collect_programs`` somewhere
   (defining them counts: the DSL module is its own registry).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..linter import Finding, LintContext, ModuleUnit, Rule

__all__ = ["ProgramRegistryRule"]

#: Call targets that construct a transaction program.
_CONSTRUCTORS = frozenset(
    {"TransactionProgram", "seq", "par", "access_sequence"}
)

#: Helpers that derive the access registry from program structure.
_REGISTRY_HELPERS = frozenset({"system_type_for", "collect_programs"})

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_name(node: ast.Call) -> str:
    target = node.func
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


def _module_identifiers(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, _FunctionNode):
            names.add(node.name)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
    return names


class ProgramRegistryRule(Rule):
    """R005: program construction derives its registry, never hand-builds it."""

    rule_id = "R005"
    title = "Transaction programs must flow through the program registry"
    tags = ("programs",)

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Flag hand-built access registries next to program construction."""
        constructs_anywhere = False
        first_construction = 0
        for node in ast.walk(unit.tree):
            if not isinstance(node, _FunctionNode):
                continue
            constructs = None
            registers = None
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    name = _call_name(inner)
                    if name in _CONSTRUCTORS and constructs is None:
                        constructs = inner
                    elif name == "register_access" and registers is None:
                        registers = inner
            if constructs is not None:
                constructs_anywhere = True
                if not first_construction:
                    first_construction = node.lineno
            if constructs is not None and registers is not None:
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    registers.lineno,
                    f"{node.name}() builds a TransactionProgram and also "
                    "calls register_access() — derive the registry with "
                    "system_type_for()/collect_programs() instead of "
                    "hand-building it",
                )
        if constructs_anywhere:
            identifiers = _module_identifiers(unit.tree)
            if not identifiers & _REGISTRY_HELPERS:
                yield Finding(
                    self.rule_id,
                    unit.display_path,
                    first_construction,
                    "module constructs TransactionPrograms but never "
                    "routes them through system_type_for()/"
                    "collect_programs() — the access registry and the "
                    "programs can drift apart",
                )
