"""R003 — no quadratic membership patterns in hot paths.

The certifier's hot paths (``repro.core``, ``repro.stream``) were made
sub-quadratic on
purpose (PR 3's history index); this rule keeps accidental quadratic
patterns from creeping back.  Inside any ``for``/``while`` loop in a
hot-path module it flags:

* membership tests against a list-producing expression — ``x in [...]``,
  ``x in list(...)``, ``x in sorted(...)``, ``x in [.. for ..]`` — which
  re-scan O(n) per iteration (use a set/dict built once outside);
* ``.index()`` calls, which are a linear scan per iteration.

Deliberately quadratic code (bounded domains, diagnostics) is tagged
``# lint: allow-quadratic`` on the offending line *or* on the header
line of the enclosing loop.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from ..linter import Finding, LintContext, ModuleUnit, Rule

__all__ = ["QuadraticPatternRule"]

#: Builtins whose call result is a freshly-built list.
_LIST_BUILTINS = ("list", "sorted")


def _is_list_expression(node: ast.expr) -> bool:
    """Is this expression guaranteed to evaluate to a (fresh) list?"""
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _LIST_BUILTINS
    )


class QuadraticPatternRule(Rule):
    """R003: no per-iteration linear scans inside hot-path loops."""

    rule_id = "R003"
    title = "no quadratic patterns in core/stream hot paths"
    tags = ("quadratic",)

    #: Path components marking a module as hot-path.  ``columnar.py``
    #: is listed by file name as well as via its ``core`` package, so
    #: the engine stays gated even if it ever moves out of core.
    hot_parts: Tuple[str, ...] = ("core", "stream", "distributed", "columnar.py")

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Scan hot-path modules for quadratic loop bodies."""
        if not any(part in unit.path.parts for part in self.hot_parts):
            return
        yield from self._scan(unit, unit.tree, loop_headers=[])

    def _scan(
        self, unit: ModuleUnit, node: ast.AST, loop_headers: List[int]
    ) -> Iterator[Finding]:
        """Depth-first walk tracking the enclosing loop header lines."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                yield from self._scan(unit, child, loop_headers + [child.lineno])
                continue
            if loop_headers and not self._headers_allow(unit, loop_headers):
                yield from self._check_node(unit, child)
            yield from self._scan(unit, child, loop_headers)

    def _headers_allow(self, unit: ModuleUnit, loop_headers: List[int]) -> bool:
        tags = self.suppression_tags()
        return any(unit.line_allows(line, tags) for line in loop_headers)

    def _check_node(self, unit: ModuleUnit, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            for comparator in node.comparators:
                if _is_list_expression(comparator):
                    yield Finding(
                        self.rule_id,
                        unit.display_path,
                        node.lineno,
                        "membership test against a list inside a loop — "
                        "build a set once outside the loop "
                        "(or tag '# lint: allow-quadratic')",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "index"
        ):
            yield Finding(
                self.rule_id,
                unit.display_path,
                node.lineno,
                ".index() inside a loop is a linear scan per iteration — "
                "precompute a position map "
                "(or tag '# lint: allow-quadratic')",
            )
