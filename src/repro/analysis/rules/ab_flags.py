"""R001 — A/B engine flags must keep both code paths alive.

The ``indexed=`` (naive vs history-index certification) and
``incremental=`` (naive DFS vs Pearce–Kelly cycle check) keyword flags
exist so every optimised engine retains its executable baseline.  The
rule enforces two properties for every function that *declares* such a
flag with a boolean default:

1. **Both branches reachable** — the flag is actually consulted: the
   defining module contains a conditional whose test reads the flag (a
   plain name or a stored ``self.<flag>`` attribute), or the declaring
   function forwards the flag as a same-named keyword argument to the
   layer below (pure delegation).  A declared-but-never-branching flag
   means one engine silently died.
2. **Both values exercised by tests** — somewhere under the tests root
   the flag is passed as both ``<flag>=True`` and ``<flag>=False``; an
   A/B flag only one side of which is tested is not an A/B flag.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..linter import Finding, LintContext, ModuleUnit, Rule

__all__ = ["ABFlagRule", "AB_FLAGS"]

#: The keyword flags that select between A/B engine implementations.
AB_FLAGS: Tuple[str, ...] = (
    "indexed",
    "incremental",
    "compaction",
    "columnar",
    "validate",
)

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _declared_flags(node: ast.AST) -> List[Tuple[str, ast.arg]]:
    """A/B flags declared by ``node`` with a boolean-constant default."""
    if not isinstance(node, _FunctionNode):
        return []
    args = node.args
    declared: List[Tuple[str, ast.arg]] = []
    positional = args.posonlyargs + args.args
    pos_defaults = args.defaults
    offset = len(positional) - len(pos_defaults)
    for index, arg in enumerate(positional):
        if arg.arg not in AB_FLAGS or index < offset:
            continue
        default = pos_defaults[index - offset]
        if isinstance(default, ast.Constant) and isinstance(default.value, bool):
            declared.append((arg.arg, arg))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            arg.arg in AB_FLAGS
            and isinstance(default, ast.Constant)
            and isinstance(default.value, bool)
        ):
            declared.append((arg.arg, arg))
    return declared


def _reads_flag(expression: ast.AST, flag: str) -> bool:
    """True when the expression subtree reads ``flag`` (name or attribute)."""
    for node in ast.walk(expression):
        if isinstance(node, ast.Name) and node.id == flag:
            return True
        if isinstance(node, ast.Attribute) and node.attr == flag:
            return True
    return False


def _module_branches_on(tree: ast.Module, flag: str) -> bool:
    """Does any conditional test in the module consult the flag?"""
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.IfExp, ast.While)):
            if _reads_flag(node.test, flag):
                return True
    return False


def _function_forwards(function: ast.AST, flag: str) -> bool:
    """Does the function forward the flag as a same-named keyword?"""
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == flag and _reads_flag(keyword.value, flag):
                    return True
    return False


class ABFlagRule(Rule):
    """R001: every A/B flag branches somewhere and is tested both ways."""

    rule_id = "R001"
    title = "A/B engine flags must keep both paths alive"
    tags = ("ab-flag",)

    def check_module(
        self, unit: ModuleUnit, context: LintContext
    ) -> Iterator[Finding]:
        """Check every function declaring an A/B flag in this module."""
        coverage = context.test_flag_values(AB_FLAGS)
        reported_coverage: Set[str] = set()
        for node in ast.walk(unit.tree):
            for flag, arg in _declared_flags(node):
                assert isinstance(node, _FunctionNode)
                if not (
                    _module_branches_on(unit.tree, flag)
                    or _function_forwards(node, flag)
                ):
                    yield Finding(
                        self.rule_id,
                        unit.display_path,
                        node.lineno,
                        f"A/B flag '{flag}=' of {node.name}() is never "
                        "consulted by a conditional or forwarded — one "
                        "engine path is dead",
                    )
                missing = {True, False} - coverage.get(flag, set())
                if missing and flag not in reported_coverage:
                    reported_coverage.add(flag)
                    values = " and ".join(
                        f"{flag}={value}" for value in sorted(missing, key=str)
                    )
                    yield Finding(
                        self.rule_id,
                        unit.display_path,
                        node.lineno,
                        f"A/B flag '{flag}=' of {node.name}() is not "
                        f"exercised with {values} anywhere in the test "
                        "suite",
                    )
