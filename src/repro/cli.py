"""Command-line interface: record runs, audit recorded behaviors, trace.

Subcommands::

    python -m repro demo   [--algorithm moss|undo] [--seed N]
    python -m repro record [--algorithm moss|undo] [--seed N] -o run.json
    python -m repro record --runs 8 --jobs 4 -o corpus.json
    python -m repro audit  run.json [--dot graph.dot] [--oracle]
    python -m repro audit  corpus-*.json --jobs 4
    python -m repro trace  [--seed N] --out trace.jsonl
    python -m repro stream [--sessions N] [--workers K] [--no-compaction]
    python -m repro metrics snapshot.json [--serve PORT]
    python -m repro explain run.json [--json out.json] [--dot graph.dot]
    python -m repro lint   [--json] [--rules R001 spec drift]
    python -m repro robustness [--json] [--explain] [scenario ...]

``record`` simulates a nested-transaction workload and writes the
(behavior, system type) pair as JSON; with ``--runs N`` it records a
whole seeded corpus (one file per seed), fanned out over ``--jobs``
worker processes.  ``audit`` re-checks any such file with the
serialization-graph certifier, optionally cross-examining with the
brute-force oracle and exporting the graph as Graphviz DOT; given
several files it batch-certifies them as a corpus, sharded over
``--jobs`` workers (see :mod:`repro.parallel`).  The audit exit status
is 0 when every case is certified, 2 when any is not.

``trace`` runs a fully instrumented workload + certification, writing a
JSONL span trace plus a metrics snapshot (see ``docs/OBSERVABILITY.md``
for the schema); ``demo``/``record``/``audit`` accept ``--metrics-json``
for the snapshot alone, and ``demo`` additionally ``--stats-json`` for
the raw run counters.

``stream`` drives generated commit-as-you-go streams through the
:mod:`repro.stream` asyncio feed service — concurrent sessions sharded
over certifier workers with bounded queues and prefix compaction on by
default (``--no-compaction`` selects the baseline engine).  With
``--metrics-json`` the run reports p50/p95/p99 feed→verdict latency;
``--flight PATH`` attaches a violation flight recorder (post-mortem
JSONL on cycle latch / ARV violation); ``--export-jsonl PATH`` runs the
periodic metrics snapshot exporter alongside the service.

``metrics`` renders a ``--metrics-json`` snapshot in the Prometheus
text exposition format — one-shot to stdout (or ``-o``), or served at
``/metrics`` over :mod:`http.server` with ``--serve PORT`` (the file is
re-read per scrape, so a live run's exporter output stays fresh).

``explain`` maps a rejected case's SG cycle back to concrete
conflicting operation pairs (see :mod:`repro.core.explain`): a text
provenance report, optionally ``--json`` structured output and an
annotated ``--dot`` rendering.  Exit status 2 when a cycle was found
and explained, 0 when the behavior's graph is acyclic.

``lint`` runs the project static analysis (:mod:`repro.analysis`): the
AST rules R001–R005, the spec-soundness checker and the docs drift
detectors.  Exit status is 0 when clean, 1 when any problem is found,
2 on a usage error; ``--json`` emits one machine-readable report (see
``docs/STATIC_ANALYSIS.md``).

``robustness`` runs the static robustness analyzer
(:mod:`repro.analysis.robustness`) over the shipped program-scenario
catalogue (optionally plus ``--generated N`` workload program sets),
checking every verdict against its recorded ROBUST/NOT-ROBUST
expectation and — unless ``--no-validate`` — machine-checking each
NOT-ROBUST verdict by driving a concrete cyclic history through the
certifier.  Exit status 0 on full agreement, 1 on drift.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.correctness import certify
from .core.oracle import oracle_serially_correct
from .core.serde import dump_case, load_case
from .generic.system import make_generic_system
from .locking.moss import MossRWLockingObject
from .obs import MetricsHooks, MetricsRegistry
from .report import certificate_report, serialization_graph_to_dot
from .sim.driver import run_system
from .sim.faults import AbortInjector
from .sim.policies import EagerInformPolicy, RandomPolicy
from .sim.workload import CounterKind, RWKind, WorkloadConfig, generate_workload
from .undo.logging import UndoLoggingObject

__all__ = ["main"]


def _make_registry(args: argparse.Namespace) -> Optional[MetricsRegistry]:
    """A metrics registry when any metrics output was requested."""
    if getattr(args, "metrics_json", None):
        return MetricsRegistry()
    return None


def _write_metrics(registry: Optional[MetricsRegistry],
                   args: argparse.Namespace) -> None:
    path = getattr(args, "metrics_json", None)
    if registry is not None and path:
        registry.write_json(path)
        print(f"metrics snapshot written to {path}")


def _build_run(args: argparse.Namespace, hooks=None):
    if args.algorithm == "moss":
        kind, factory = RWKind(), MossRWLockingObject
    elif args.algorithm == "read-update":
        from .locking.read_update import ReadUpdateLockingObject

        kind, factory = CounterKind(), ReadUpdateLockingObject
    else:
        kind, factory = CounterKind(), UndoLoggingObject
    config = WorkloadConfig(
        seed=args.seed,
        top_level=args.transactions,
        objects=args.objects,
        max_depth=args.depth,
        kind=kind,
    )
    system_type, programs = generate_workload(config)
    system = make_generic_system(system_type, programs, factory, hooks=hooks)
    policy = EagerInformPolicy(seed=args.seed)
    if args.abort_rate > 0:
        policy = AbortInjector(
            RandomPolicy(args.seed), abort_rate=args.abort_rate, seed=args.seed
        )
    result = run_system(
        system,
        policy,
        system_type,
        max_steps=args.max_steps,
        resolve_deadlocks=True,
        hooks=hooks,
    )
    return result, system_type


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm",
        choices=("moss", "undo", "read-update"),
        default="moss",
        help="concurrency control algorithm (default: moss)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--transactions", type=int, default=4,
                        help="top-level transactions (default: 4)")
    parser.add_argument("--objects", type=int, default=3)
    parser.add_argument("--depth", type=int, default=2)
    parser.add_argument("--abort-rate", type=float, default=0.0,
                        help="per-step abort injection probability")
    parser.add_argument("--max-steps", type=int, default=10_000)


def _cmd_demo(args: argparse.Namespace) -> int:
    registry = _make_registry(args)
    hooks = MetricsHooks(registry) if registry is not None else None
    result, system_type = _build_run(args, hooks=hooks)
    print(f"run: {result.stats.summary()}\n")
    if args.stats_json:
        Path(args.stats_json).write_text(
            json.dumps(result.stats.to_dict(), indent=2) + "\n"
        )
        print(f"run stats written to {args.stats_json}")
    if args.tree:
        from .core.names import ROOT
        from .sim.analysis import analyze_trace

        analysis = analyze_trace(result.behavior, system_type)
        print("transaction tree:")
        for line in analysis.tree_lines(ROOT, indent="  "):
            print(line)
        latency = analysis.mean_access_latency()
        if latency is not None:
            print(f"mean access latency: {latency:.1f} events\n")
        else:
            print()
    certificate = certify(result.behavior, system_type, metrics=registry)
    print(certificate_report(certificate, result.behavior, system_type,
                             witness_preview=args.witness))
    _write_metrics(registry, args)
    return 0 if certificate.certified else 2


def _corpus_paths(output: str, seeds: Sequence[int]) -> list:
    base = Path(output)
    return [base.with_name(f"{base.stem}-s{seed}{base.suffix}") for seed in seeds]


def _cmd_record(args: argparse.Namespace) -> int:
    registry = _make_registry(args)
    if args.runs > 1:
        from .parallel import record_corpus

        seeds = range(args.seed, args.seed + args.runs)
        paths = _corpus_paths(args.output, seeds)
        recorded = record_corpus(
            seeds,
            paths,
            algorithm=args.algorithm,
            top_level=args.transactions,
            objects=args.objects,
            max_depth=args.depth,
            abort_rate=args.abort_rate,
            max_steps=args.max_steps,
            jobs=args.jobs,
        )
        for path, events in recorded:
            print(f"recorded {events} events to {path}")
        if registry is not None:
            registry.set_gauge("parallel.jobs", min(args.jobs, len(paths)))
            registry.inc("parallel.cases", len(paths))
        _write_metrics(registry, args)
        return 0
    hooks = MetricsHooks(registry) if registry is not None else None
    result, system_type = _build_run(args, hooks=hooks)
    text = dump_case(result.behavior, system_type)
    Path(args.output).write_text(text)
    print(f"recorded {len(result.behavior)} events to {args.output}")
    print(f"run: {result.stats.summary()}")
    _write_metrics(registry, args)
    return 0


def _load_cases(paths: Sequence[str]):
    cases = []
    for name in paths:
        path = Path(name)
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return None
        try:
            behavior, system_type = load_case(text)
        except (ValueError, KeyError) as exc:
            print(f"{path} is not a valid repro case: {exc}", file=sys.stderr)
            return None
        cases.append((str(path), behavior, system_type))
    return cases


def _cmd_audit(args: argparse.Namespace) -> int:
    cases = _load_cases(args.cases)
    if cases is None:
        return 1
    registry = _make_registry(args)
    if args.engine == "online":
        from .core.online import OnlineCertifier

        all_certified = True
        for label, behavior, system_type in cases:
            verdict = OnlineCertifier(
                system_type,
                metrics=registry,
                incremental=args.cycle_check == "incremental",
            ).feed_all(behavior)
            prefix = f"{label}: " if len(cases) > 1 else ""
            print(
                f"{prefix}CERTIFIED (online engine)"
                if verdict.certified
                else f"{prefix}NOT certified (online engine):"
            )
            for violation in verdict.arv_violations:
                print(f"  {violation}")
            if verdict.cycle is not None:
                parent, nodes = verdict.cycle
                print(f"  SG cycle under {parent}: "
                      + " -> ".join(str(n) for n in nodes))
            all_certified = all_certified and verdict.certified
        _write_metrics(registry, args)
        return 0 if all_certified else 2
    if len(cases) > 1:
        from .parallel import certify_corpus

        verdicts = certify_corpus(
            cases, jobs=args.jobs, validate_input=True, metrics=registry
        )
        for verdict in verdicts:
            print(verdict)
        certified = sum(1 for verdict in verdicts if verdict.certified)
        print(f"\n{certified}/{len(verdicts)} cases certified "
              f"(jobs={min(args.jobs, len(cases))})")
        _write_metrics(registry, args)
        return 0 if certified == len(verdicts) else 2
    _, behavior, system_type = cases[0]
    certificate = certify(behavior, system_type, validate_input=True,
                          metrics=registry)
    print(certificate_report(certificate, behavior, system_type,
                             witness_preview=args.witness))
    if args.dot:
        Path(args.dot).write_text(
            serialization_graph_to_dot(certificate.graph)
        )
        print(f"\nserialization graph written to {args.dot}")
    if args.oracle and not certificate.certified:
        verdict = oracle_serially_correct(behavior, system_type,
                                          max_orders=args.oracle_budget)
        print(
            f"\nbrute-force oracle ({verdict.orders_tried} orders"
            f"{', truncated' if verdict.truncated else ''}): "
            + ("serially correct despite rejection (sufficiency gap)"
               if verdict else "no serial witness found")
        )
    _write_metrics(registry, args)
    return 0 if certificate.certified else 2


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import JSONLFileSink, RingBufferSink, Tracer, span_coverage

    registry = MetricsRegistry()
    ring = RingBufferSink()
    tracer = Tracer(ring, JSONLFileSink(args.out), metrics=registry)
    hooks = MetricsHooks(registry, tracer)
    with tracer.span("trace", seed=args.seed, algorithm=args.algorithm):
        with tracer.span("simulate"):
            result, system_type = _build_run(args, hooks=hooks)
        certificate = certify(
            result.behavior, system_type, tracer=tracer, metrics=registry
        )
        if args.online:
            from .core.online import OnlineCertifier

            online = OnlineCertifier(
                system_type, tracer=tracer, metrics=registry
            )
            with tracer.span("online.feed_all", events=len(result.behavior)):
                online_verdict = online.feed_all(result.behavior)
            if online_verdict.certified != certificate.certified:
                print("WARNING: online and batch verdicts disagree",
                      file=sys.stderr)
    coverage = span_coverage(ring.spans(), "certify")
    registry.set_gauge(
        "trace.certify_coverage", round(coverage, 4) if coverage is not None else 0
    )
    tracer.close()
    metrics_path = args.metrics_json or f"{args.out}.metrics.json"
    registry.write_json(metrics_path)
    print(f"run: {result.stats.summary()}")
    print(
        "CERTIFIED" if certificate.certified else "NOT certified",
        f"({len(result.behavior)} events)",
    )
    print(f"trace: {len(ring)} spans written to {args.out}")
    print(f"metrics snapshot written to {metrics_path}")
    if coverage is not None:
        print(f"certify phase coverage: {coverage:.1%} of certify wall time")
    return 0 if certificate.certified else 2


def _cmd_stream(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import MetricsRegistry as Registry
    from .stream import (
        StreamConfig,
        StreamService,
        StreamWorkload,
        commit_as_you_go,
    )

    config = StreamConfig(
        workers=args.workers,
        queue_size=args.queue_size,
        compaction=not args.no_compaction,
        compaction_interval=args.interval,
    )
    registry = (
        MetricsRegistry()
        if args.metrics_json or args.flight or args.export_jsonl
        else None
    )

    async def run() -> list:
        from .obs import FlightRecorder, SnapshotExporter

        service = StreamService(config, metrics=registry)
        await service.start()
        exporter = None
        if args.export_jsonl:
            assert registry is not None
            exporter = SnapshotExporter(
                registry, args.export_jsonl, interval=args.export_interval
            )
            await exporter.start()

        async def drive(index: int):
            workload = StreamWorkload(
                top_level=args.transactions,
                accesses=args.accesses,
                window=args.window,
                seed=args.seed + index,
            )
            system_type, actions = commit_as_you_go(workload)
            flight = (
                FlightRecorder(args.flight, metrics=registry)
                if args.flight
                else None
            )
            session = await service.open_session(
                f"session-{index}", system_type, metrics=Registry(),
                flight=flight,
            )
            await session.feed_all(actions)
            return await session.close()

        try:
            return await asyncio.gather(
                *(drive(index) for index in range(args.sessions))
            )
        finally:
            await service.close()
            if exporter is not None:
                await exporter.close()

    results = asyncio.run(run())
    all_certified = True
    for result in results:
        verdict = result.verdict
        status = "CERTIFIED" if verdict.certified else "NOT certified"
        stats = result.compaction_stats
        print(
            f"{result.name}: {status} [{result.actions} events] "
            f"evicted {stats['evicted_rows']} rows / "
            f"{stats['evicted_subtrees']} subtrees, "
            f"live {stats['live_tracked_ops']} ops"
        )
        all_certified = all_certified and verdict.certified
    if registry is not None:
        snapshot = registry.snapshot()
        latency = snapshot["histograms"].get("stream.latency.feed_to_verdict")
        if latency and latency["count"]:
            print(
                f"feed->verdict latency over {latency['count']} events: "
                f"p50={latency['p50'] * 1e6:.0f}us "
                f"p95={latency['p95'] * 1e6:.0f}us "
                f"p99={latency['p99'] * 1e6:.0f}us"
            )
    if args.flight:
        print(f"post-mortems appended to {args.flight}")
    if args.export_jsonl:
        print(f"metrics snapshots exported to {args.export_jsonl}")
    _write_metrics(registry, args)
    return 0 if all_certified else 2


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import to_prometheus

    path = Path(args.snapshot)

    def render() -> str:
        text = path.read_text()
        try:
            snapshot = json.loads(text)
        except json.JSONDecodeError:
            # an exporter JSONL file: the last record is the freshest
            lines = [line for line in text.splitlines() if line.strip()]
            if not lines:
                raise ValueError("empty snapshot file")
            snapshot = json.loads(lines[-1])
        if isinstance(snapshot, dict) and "snapshot" in snapshot:
            snapshot = snapshot["snapshot"]
        if not isinstance(snapshot, dict):
            raise ValueError("not a metrics snapshot")
        return to_prometheus(snapshot, namespace=args.namespace)

    if args.serve is None:
        try:
            text = render()
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot render {path}: {exc}", file=sys.stderr)
            return 1
        if args.output:
            Path(args.output).write_text(text)
            print(f"prometheus exposition written to {args.output}")
        else:
            print(text, end="")
        return 0

    from http.server import BaseHTTPRequestHandler, HTTPServer

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path not in ("/metrics", "/"):
                self.send_error(404)
                return
            try:
                body = render().encode("utf-8")
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *log_args: object) -> None:
            pass  # scrapes are not news

    server = HTTPServer((args.bind, args.serve), _MetricsHandler)
    print(
        f"serving {path} at http://{args.bind}:{args.serve}/metrics "
        "(Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .core.explain import explain_behavior
    from .report import explanation_report

    cases = _load_cases([args.case])
    if cases is None:
        return 1
    label, behavior, system_type = cases[0]
    explained = explain_behavior(
        behavior, system_type, max_witnesses=args.max_witnesses
    )
    if explained is None:
        print(f"{label}: serialization graph is acyclic; nothing to explain")
        return 0
    explanation, graph = explained
    print(explanation_report(explanation))
    if args.json:
        Path(args.json).write_text(
            json.dumps(explanation.to_dict(), indent=2, default=str) + "\n"
        )
        print(f"structured explanation written to {args.json}")
    if args.dot:
        Path(args.dot).write_text(
            serialization_graph_to_dot(graph, explanation=explanation)
        )
        print(f"annotated serialization graph written to {args.dot}")
    return 2


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .core.oracle import oracle_serially_correct
    from .scenarios import SCENARIOS, build_scenario

    names = [args.name] if args.name else list(SCENARIOS)
    for name in names:
        behavior, system_type, expectation = build_scenario(name)
        certificate = certify(behavior, system_type, construct_witness=False)
        oracle = bool(
            oracle_serially_correct(behavior, system_type, max_orders=2000)
        )
        status = "certified" if certificate.certified else "rejected"
        truth = "correct" if oracle else "incorrect"
        marker = "OK" if (
            certificate.certified == expectation.certified
            and oracle == expectation.serially_correct
        ) else "UNEXPECTED"
        print(f"{name:16s} {status:9s} / {truth:9s}  [{marker}]  {expectation.reason}")
    if not args.name:
        from .distributed import build_dist_scenario, dist_scenario_names

        print()
        print("distributed scenarios (run with: repro distsim --scenario NAME):")
        for name in dist_scenario_names():
            _, _, expectation = build_dist_scenario(name)
            local = "local-ok" if expectation.locally_certified else "local-NO"
            glob = "global-ok" if expectation.globally_certified else "global-NO"
            print(f"{name:24s} {local} / {glob}  {expectation.reason}")

        from .scenarios import PROGRAM_SCENARIOS

        print()
        print("program scenarios (run with: repro robustness [NAME]):")
        for name, (_, robustness) in PROGRAM_SCENARIOS.items():
            verdict = "ROBUST" if robustness.robust else "NOT-ROBUST"
            shape = f" [{robustness.classification}]" if robustness.classification else ""
            print(f"{name:24s} {verdict:10s}{shape}  {robustness.reason}")
    return 0


def _cmd_distsim(args: argparse.Namespace) -> int:
    from .core.online import OnlineCertifier
    from .distributed import (
        build_dist_scenario,
        certify_distributed,
        certify_sites,
        dist_scenario_names,
        divergence_config,
        replica_divergence,
        run_distributed,
    )
    from .obs import FlightRecorder

    registry = (
        MetricsRegistry() if args.metrics_json or args.flight else None
    )
    flight = (
        FlightRecorder(args.flight, metrics=registry) if args.flight else None
    )

    def feed_flight(tag, site_histories):
        # replay each site's history through an online certifier so
        # post-mortems carry the originating site id
        if flight is None:
            return
        for site in sorted(site_histories):
            behavior, system_type = site_histories[site]
            online = OnlineCertifier(
                system_type,
                flight=flight,
                session=tag,
                site=f"s{site}",
            )
            online.feed_all(behavior)

    if args.scenario:
        histories, placement, expectation = build_dist_scenario(args.scenario)
        certificate = certify_sites(
            histories,
            metrics=registry,
            divergent_replicas=replica_divergence(histories, placement),
        )
        print(f"scenario {args.scenario}: {expectation.reason}")
        print(certificate.summary())
        feed_flight(f"distsim-{args.scenario}", histories)
        matches = (
            certificate.locally_certified == expectation.locally_certified
            and certificate.globally_certified == expectation.globally_certified
        )
        if not matches:
            print("UNEXPECTED: verdicts differ from the documented expectation")
        _write_metrics(registry, args)
        return 0 if certificate.globally_certified and matches else 2

    if args.sweep:
        divergent = []
        rejected = []
        for seed in range(args.sweep):
            config = divergence_config(
                seed, sites=args.sites, pairs=args.pairs, crash=args.crash
            )
            run = run_distributed(config, metrics=registry)
            certificate = certify_distributed(run, metrics=registry)
            if certificate.divergent:
                divergent.append(seed)
            if not certificate.globally_certified:
                rejected.append(seed)
        print(
            f"{args.sweep} seeds: {len(rejected)} globally rejected, "
            f"{len(divergent)} divergent (every local SG acyclic, merged "
            f"SG cyclic)"
        )
        if divergent:
            shown = ", ".join(str(seed) for seed in divergent[:10])
            more = "..." if len(divergent) > 10 else ""
            print(f"divergent seeds: {shown}{more}")
        _write_metrics(registry, args)
        return 0

    config = divergence_config(
        args.seed, sites=args.sites, pairs=args.pairs, crash=args.crash
    )
    run = run_distributed(config, metrics=registry)
    certificate = certify_distributed(run, metrics=registry)
    outcomes = ", ".join(
        f"{name}={outcome}" for name, outcome in sorted(run.outcomes.items())
    )
    print(
        f"seed {args.seed}: {config.sites} sites, "
        f"{len(config.transactions)} transactions, "
        f"{run.routing.routed_accesses()} routed accesses, "
        f"{len(run.doomed)} doomed"
    )
    print(f"outcomes: {outcomes}")
    for name, reason in sorted(run.doomed.items()):
        print(f"  doomed {name}: {reason}")
    print(certificate.summary())
    feed_flight(
        f"distsim-seed{args.seed}",
        {
            site: (site_run.behavior, site_run.system_type)
            for site, site_run in run.site_runs.items()
        },
    )
    if args.flight:
        print(f"post-mortems appended to {args.flight}")
    _write_metrics(registry, args)
    return 0 if certificate.globally_certified else 2


class _LintSelectionError(ValueError):
    """An unknown ``--rules`` token (reported as a usage error, exit 2)."""


def _lint_selection(tokens: Sequence[str]):
    """Split ``--rules`` tokens into (ast rule ids, run_spec, run_drift)."""
    from .analysis.rules import all_rules

    known_ids = {rule.rule_id for rule in all_rules()}
    if not tokens:
        return sorted(known_ids), True, True
    rule_ids, run_spec, run_drift = [], False, False
    for token in tokens:
        for piece in token.split(","):
            piece = piece.strip()
            if not piece:
                continue
            upper = piece.upper()
            if upper in known_ids:
                rule_ids.append(upper)
            elif piece.lower() == "spec":
                run_spec = True
            elif piece.lower() == "drift":
                run_drift = True
            else:
                raise _LintSelectionError(
                    f"unknown lint rule '{piece}' (known: "
                    f"{', '.join(sorted(known_ids))}, spec, drift)"
                )
    return rule_ids, run_spec, run_drift


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        check_all_builtin_specs,
        check_all_drift,
        lint_paths,
    )
    from .analysis.rules import rule_by_id

    # argparse's greedy nargs lets `--rules R002 path/to/mod.py` bind the
    # path as a rules token; reclaim tokens that name existing files/dirs.
    rule_tokens, extra_paths = [], []
    for token in args.rules or []:
        if ("/" in token or token.endswith(".py")) and Path(token).exists():
            extra_paths.append(token)
        else:
            rule_tokens.append(token)
    try:
        rule_ids, run_spec, run_drift = _lint_selection(rule_tokens)
    except _LintSelectionError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    repo_root = (
        Path(args.root).resolve()
        if args.root
        else Path(__file__).resolve().parents[2]
    )
    findings = []
    if rule_ids:
        rules = [rule_by_id(rule_id) for rule_id in rule_ids]
        tests_root = repo_root / "tests"
        explicit = [Path(path) for path in (*args.paths, *extra_paths)]
        targets = explicit or [repo_root / "src" / "repro"]
        for target in targets:
            findings.extend(lint_paths(target, rules, tests_root=tests_root))
    spec_reports = check_all_builtin_specs() if run_spec else []
    spec_problems = [
        problem for report in spec_reports for problem in report.problems
    ]
    drift_problems = check_all_drift(repo_root) if run_drift else []
    total = len(findings) + len(spec_problems) + len(drift_problems)
    if args.json:
        print(
            json.dumps(
                {
                    "ok": total == 0,
                    "problems": total,
                    "findings": [finding.to_dict() for finding in findings],
                    "spec_reports": [
                        report.to_dict() for report in spec_reports
                    ],
                    "drift": [
                        problem.to_dict() for problem in drift_problems
                    ],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding)
        for problem in spec_problems:
            print(problem)
        for problem in drift_problems:
            print(problem)
        if run_spec:
            certified = sum(1 for report in spec_reports if report.ok)
            print(
                f"spec-check: {certified}/{len(spec_reports)} specs certified"
            )
        print("repro lint: clean" if total == 0 else
              f"repro lint: {total} problem(s)")
    return 0 if total == 0 else 1


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .analysis.robustness import analyze_robustness
    from .scenarios import PROGRAM_SCENARIOS, build_program_scenario

    validate = not args.no_validate
    try:
        names = list(args.names) if args.names else list(PROGRAM_SCENARIOS)
        for name in names:
            if name not in PROGRAM_SCENARIOS:
                raise KeyError(name)
    except KeyError as exc:
        print(
            f"repro robustness: unknown program scenario {exc.args[0]!r}; "
            f"available: {', '.join(PROGRAM_SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    entries = []
    mismatches = 0
    for name in names:
        objects, programs, expectation = build_program_scenario(name)
        report = analyze_robustness(
            objects, programs, validate=validate and not expectation.robust
        )
        verdict_match = report.robust == expectation.robust
        class_match = (
            not expectation.classification
            or expectation.classification in report.classifications
        )
        witnessed = report.witnessed if report.validations else None
        matched = verdict_match and class_match and witnessed is not False
        if not matched:
            mismatches += 1
        entries.append((name, expectation, report, matched))
    generated = []
    if args.generated:
        from .sim.workload import WorkloadConfig, generate_program_set

        for offset in range(args.generated):
            config = WorkloadConfig(
                objects=2, top_level=3, max_calls=2, seed=args.seed + offset
            )
            objects, programs = generate_program_set(config)
            report = analyze_robustness(objects, programs, validate=False)
            generated.append((config.seed, report))
    if args.json:
        payload = {
            "ok": mismatches == 0,
            "scenarios": [
                {
                    "name": name,
                    "expected": {
                        "robust": expectation.robust,
                        "classification": expectation.classification,
                    },
                    "matched": matched,
                    "report": report.to_dict(),
                }
                for name, expectation, report, matched in entries
            ],
            "generated": [
                {"seed": seed, "report": report.to_dict()}
                for seed, report in generated
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, expectation, report, matched in entries:
            expected = "ROBUST" if expectation.robust else "NOT-ROBUST"
            marker = "OK" if matched else "UNEXPECTED"
            detail = expectation.classification or expectation.reason
            print(
                f"{name:24s} {report.verdict:10s} (expected {expected:10s}) "
                f"[{marker}]  {detail}"
            )
            if args.explain:
                for line in report.explain().splitlines()[1:]:
                    print(f"    {line}")
        for seed, report in generated:
            print(f"generated seed={seed:<6d} {report.verdict}")
    return 0 if mismatches == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serialization graphs for nested transactions "
                    "(Fekete–Lynch–Weihl, PODS 1990)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="simulate a workload and certify it")
    _add_run_options(demo)
    demo.add_argument("--witness", type=int, default=0,
                      help="preview this many witness events")
    demo.add_argument("--tree", action="store_true",
                      help="print the transaction tree with outcomes/latencies")
    demo.add_argument("--stats-json", metavar="PATH",
                      help="write the run statistics as JSON")
    demo.add_argument("--metrics-json", metavar="PATH",
                      help="write a metrics snapshot as JSON")
    demo.set_defaults(func=_cmd_demo)

    record = subparsers.add_parser("record", help="simulate and save a run as JSON")
    _add_run_options(record)
    record.add_argument("-o", "--output", required=True, help="output JSON path")
    record.add_argument("--runs", type=int, default=1,
                        help="record a corpus of N seeded runs (seed, seed+1, "
                             "...), one '<output>-s<seed>.json' file each")
    record.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --runs > 1 (default: 1)")
    record.add_argument("--metrics-json", metavar="PATH",
                        help="write a metrics snapshot as JSON")
    record.set_defaults(func=_cmd_record)

    trace = subparsers.add_parser(
        "trace",
        help="simulate + certify a workload with full tracing/metrics",
    )
    _add_run_options(trace)
    trace.add_argument("--out", required=True, metavar="PATH",
                       help="JSONL span-trace output path")
    trace.add_argument("--metrics-json", metavar="PATH",
                       help="metrics snapshot path (default: OUT.metrics.json)")
    trace.add_argument("--online", action="store_true",
                       help="additionally stream through the online certifier")
    trace.set_defaults(func=_cmd_trace)

    audit = subparsers.add_parser("audit", help="certify recorded runs")
    audit.add_argument("cases", nargs="+", metavar="case",
                       help="JSON file(s) produced by 'record'; several files "
                            "are batch-certified as a corpus")
    audit.add_argument("--jobs", type=int, default=1,
                       help="worker processes for multi-case audits "
                            "(default: 1)")
    audit.add_argument("--dot", help="write the serialization graph as DOT "
                                     "(single case only)")
    audit.add_argument("--oracle", action="store_true",
                       help="on rejection, search for a serial witness anyway")
    audit.add_argument("--oracle-budget", type=int, default=5000)
    audit.add_argument("--witness", type=int, default=0,
                       help="preview this many witness events")
    audit.add_argument("--engine", choices=("batch", "online"), default="batch",
                       help="batch (full certificate + witness) or online "
                            "(incremental verdict)")
    audit.add_argument("--cycle-check", choices=("incremental", "naive"),
                       default="incremental",
                       help="online engine's acyclicity check: Pearce-Kelly "
                            "incremental order maintenance (default) or a "
                            "full DFS per new edge (the A/B baseline)")
    audit.add_argument("--metrics-json", metavar="PATH",
                       help="write a metrics snapshot as JSON")
    audit.set_defaults(func=_cmd_audit)

    stream = subparsers.add_parser(
        "stream",
        help="run concurrent commit-as-you-go streams through the "
             "bounded-memory feed service",
        description="Certify generated commit-as-you-go streams through "
                    "the repro.stream asyncio service (compaction on by "
                    "default). Exit status 0 when every session "
                    "certifies, 2 otherwise.",
    )
    stream.add_argument("--sessions", type=int, default=2,
                        help="concurrent sessions (default: 2)")
    stream.add_argument("--workers", type=int, default=2,
                        help="certifier workers sessions are sharded over")
    stream.add_argument("--queue-size", type=int, default=256,
                        help="per-worker queue bound (the backpressure point)")
    stream.add_argument("--transactions", type=int, default=200,
                        help="top-level transactions per session stream")
    stream.add_argument("--accesses", type=int, default=4,
                        help="accesses per top-level transaction")
    stream.add_argument("--window", type=int, default=8,
                        help="interleaved transactions per stream")
    stream.add_argument("--interval", type=int, default=64,
                        help="compaction sweep interval in events")
    stream.add_argument("--no-compaction", action="store_true",
                        help="run the uncompacted baseline engine instead")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--metrics-json", metavar="PATH",
                        help="write the service metrics snapshot as JSON")
    stream.add_argument("--flight", metavar="PATH",
                        help="attach a violation flight recorder; post-mortem "
                             "records (recent actions, metrics, cycle "
                             "witness) append to this JSONL file")
    stream.add_argument("--export-jsonl", metavar="PATH",
                        help="run the periodic metrics snapshot exporter "
                             "alongside the service, appending to this "
                             "JSONL file")
    stream.add_argument("--export-interval", type=float, default=1.0,
                        help="snapshot exporter period in seconds "
                             "(default: 1.0)")
    stream.set_defaults(func=_cmd_stream)

    metrics = subparsers.add_parser(
        "metrics",
        help="render a metrics snapshot in the Prometheus text format",
        description="One-shot: print the exposition (or write it with -o). "
                    "With --serve, expose /metrics over http.server, "
                    "re-reading the snapshot file per scrape.",
    )
    metrics.add_argument("snapshot", metavar="SNAPSHOT",
                         help="a --metrics-json snapshot, or a snapshot "
                              "exporter JSONL file (last record wins)")
    metrics.add_argument("-o", "--output", metavar="PATH",
                         help="write the exposition here instead of stdout")
    metrics.add_argument("--namespace", default="repro",
                         help="metric name prefix (default: repro)")
    metrics.add_argument("--serve", type=int, metavar="PORT",
                         help="serve /metrics on this port instead of "
                              "rendering once")
    metrics.add_argument("--bind", default="127.0.0.1",
                         help="address to bind --serve to "
                              "(default: 127.0.0.1)")
    metrics.set_defaults(func=_cmd_metrics)

    explain = subparsers.add_parser(
        "explain",
        help="map a rejected case's SG cycle back to the conflicting "
             "operation pairs",
        description="Build SG(beta) for a recorded case, find a cycle and "
                    "explain every edge with concrete operation-pair "
                    "witnesses. Exit status 2 when a cycle was explained, "
                    "0 when the graph is acyclic.",
    )
    explain.add_argument("case", metavar="case",
                         help="a JSON file produced by 'record'")
    explain.add_argument("--json", metavar="PATH",
                         help="write the structured explanation as JSON")
    explain.add_argument("--dot", metavar="PATH",
                         help="write the witness-annotated serialization "
                              "graph as DOT")
    explain.add_argument("--max-witnesses", type=int, default=0,
                         help="cap conflict witnesses per object per edge "
                              "(0 = unbounded)")
    explain.set_defaults(func=_cmd_explain)

    scenarios = subparsers.add_parser(
        "scenarios", help="judge the canonical anomaly scenarios"
    )
    scenarios.add_argument("name", nargs="?", help="a single scenario to judge")
    scenarios.set_defaults(func=_cmd_scenarios)

    distsim = subparsers.add_parser(
        "distsim",
        help="simulate a replicated multi-site workload and certify it "
             "locally and globally",
        description="Route a partition-prone replicated workload onto "
                    "per-site generic controllers, certify each site "
                    "with the single-site machinery, then merge the "
                    "per-site serialization graphs and certify "
                    "globally. Exit status 2 when the global verdict "
                    "rejects (including local/global divergence), 0 "
                    "otherwise.",
    )
    distsim.add_argument("--scenario", metavar="NAME",
                         help="run a hand-built distributed scenario "
                              "instead of the seeded simulator (see "
                              "'repro scenarios' for names)")
    distsim.add_argument("--seed", type=int, default=0,
                         help="simulator seed (default: 0)")
    distsim.add_argument("--sites", type=int, default=2,
                         help="number of sites (default: 2)")
    distsim.add_argument("--pairs", type=int, default=2,
                         help="cross-reading transaction pairs "
                              "(default: 2)")
    distsim.add_argument("--crash", action="store_true",
                         help="also crash and recover site 2 mid-window")
    distsim.add_argument("--sweep", type=int, metavar="N",
                         help="run seeds 0..N-1 and report how many "
                              "runs diverge (local pass, global fail)")
    distsim.add_argument("--metrics-json", metavar="PATH",
                         help="write the distributed.* metrics snapshot "
                              "as JSON")
    distsim.add_argument("--flight", metavar="PATH",
                         help="replay site histories through online "
                              "certifiers with a flight recorder; "
                              "post-mortems record the originating "
                              "site id")
    distsim.set_defaults(func=_cmd_distsim)

    lint = subparsers.add_parser(
        "lint",
        help="run the project static analysis (AST rules, spec "
             "soundness, docs drift)",
        description="Exit status: 0 clean, 1 problems found, 2 usage "
                    "error. See docs/STATIC_ANALYSIS.md.",
    )
    lint.add_argument("paths", nargs="*", metavar="path",
                      help="files/directories for the AST rules "
                           "(default: src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="emit one machine-readable JSON report on stdout")
    lint.add_argument("--rules", nargs="*", metavar="RULE",
                      help="run only these engines: rule ids (R001...), "
                           "'spec', 'drift'; comma- or space-separated "
                           "(default: everything)")
    lint.add_argument("--root", metavar="PATH",
                      help="repository root for tests/docs discovery "
                           "(default: inferred from the package location)")
    lint.set_defaults(func=_cmd_lint)

    robustness = subparsers.add_parser(
        "robustness",
        help="static robustness analysis of the program-scenario "
             "catalogue (and generated program sets)",
        description="Exit status: 0 when every scenario's verdict "
                    "matches its shipped expectation, 1 on drift, 2 on "
                    "usage error. See docs/STATIC_ANALYSIS.md.",
    )
    robustness.add_argument("names", nargs="*", metavar="scenario",
                            help="program scenarios to analyse "
                                 "(default: the whole catalogue)")
    robustness.add_argument("--json", action="store_true",
                            help="emit one machine-readable JSON report")
    robustness.add_argument("--explain", action="store_true",
                            help="print counterexample sketches for "
                                 "NOT-ROBUST verdicts")
    robustness.add_argument("--no-validate", action="store_true",
                            help="skip the dynamic validation bridge "
                                 "(static verdicts only)")
    robustness.add_argument("--generated", type=int, default=0, metavar="N",
                            help="additionally analyse N generated "
                                 "program sets (static only)")
    robustness.add_argument("--seed", type=int, default=0,
                            help="base seed for --generated")
    robustness.set_defaults(func=_cmd_robustness)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse ``argv`` (or ``sys.argv``) and run the subcommand."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
