"""Tests for the brute-force serial-correctness oracle."""

from repro import certify, enumerate_sibling_orders, oracle_serially_correct

from conftest import (
    BehaviorBuilder,
    T,
    blind_write_cycle_behavior,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)


class TestOracle:
    def test_accepts_serial(self):
        behavior, system = serial_two_txn_behavior()
        result = oracle_serially_correct(behavior, system)
        assert result
        assert result.witness is not None
        assert result.orders_tried >= 1

    def test_rejects_lost_update(self):
        behavior, system = lost_update_behavior()
        result = oracle_serially_correct(behavior, system)
        assert not result
        assert not result.truncated

    def test_accepts_blind_write_cycle(self):
        # the E4 separation: SG rejects, oracle accepts
        behavior, system = blind_write_cycle_behavior()
        assert not certify(behavior, system).certified
        assert oracle_serially_correct(behavior, system)

    def test_rejects_dirty_read(self):
        behavior, system = dirty_read_behavior()
        assert not oracle_serially_correct(behavior, system)

    def test_certified_implies_oracle_accepts(self):
        for factory in (serial_two_txn_behavior,):
            behavior, system = factory()
            if certify(behavior, system).certified:
                assert oracle_serially_correct(behavior, system)

    def test_truncation_reported(self):
        behavior, system = lost_update_behavior()
        result = oracle_serially_correct(behavior, system, max_orders=1)
        assert not result
        assert result.truncated

    def test_write_skew_needs_order_search(self):
        # r1(x) r2(y) w1(y) w2(x): conflicts x: r1 before w2 (t1->t2),
        # y: r2 before w1 (t2->t1) -- a cycle; and indeed not serializable
        # in the strict sense here because each read must precede the other's
        # write.  Values: both read 0, writes blind.  Any serial order makes
        # one read see the other's write -- reads returned 0, so the witness
        # fails; the oracle must reject.
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.read(t1, "rx", "x", 0)
        b.read(t2, "ry", "y", 0)
        b.write(t1, "wy", "y", 1)
        b.write(t2, "wx", "x", 1)
        b.commit(t1)
        b.commit(t2)
        behavior = b.build()
        assert not certify(behavior, system).certified
        assert not oracle_serially_correct(behavior, system)


class TestEnumerateOrders:
    def test_counts_permutations(self):
        behavior, _ = lost_update_behavior()
        orders = list(enumerate_sibling_orders(behavior))
        # visible groups: T0 -> {t1, t2} (2!), t1 -> {r, w} (2!), t2 -> {r, w} (2!)
        assert len(orders) == 8

    def test_limit(self):
        behavior, _ = lost_update_behavior()
        assert len(list(enumerate_sibling_orders(behavior, limit=3))) == 3

    def test_empty_behavior_single_order(self):
        assert len(list(enumerate_sibling_orders(()))) == 1
