"""System-level property tests: random configurations, one big invariant.

Whatever the workload shape, data type, algorithm, scheduling policy,
fault rate or stopping point, the behavior of a generic system built
from verified objects must satisfy: simple-behavior constraints, the
Theorem 8/19 hypotheses, witness validation, and suitability of the
derived order.  This is the paper's whole point compressed into one
hypothesis property.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ROOT,
    AbortInjector,
    BankAccountKind,
    CounterKind,
    EagerInformPolicy,
    MapKind,
    MossRWLockingObject,
    QueueKind,
    RandomPolicy,
    ReadUpdateLockingObject,
    RoundRobinPolicy,
    RWKind,
    SetKind,
    UndoLoggingObject,
    WorkloadConfig,
    build_serialization_graph,
    certify,
    check_simple_behavior,
    generate_workload,
    is_suitable,
    make_generic_system,
    run_system,
    serial_projection,
)

ALGORITHMS = [
    ("moss", MossRWLockingObject, [RWKind()]),
    (
        "undo",
        UndoLoggingObject,
        [CounterKind(), SetKind(), BankAccountKind(), QueueKind(), RWKind(),
         MapKind()],
    ),
    ("read-update", ReadUpdateLockingObject, [CounterKind(), SetKind()]),
]


def build_and_run(seed: int, algo_index: int, policy_index: int, abort_rate: float,
                  max_steps: int):
    name, factory, kinds = ALGORITHMS[algo_index % len(ALGORITHMS)]
    kind = kinds[seed % len(kinds)]
    config = WorkloadConfig(
        seed=seed,
        top_level=3 + seed % 3,
        objects=2 + seed % 2,
        max_depth=1 + seed % 3,
        kind=kind,
    )
    system_type, programs = generate_workload(config)
    system = make_generic_system(system_type, programs, factory)
    policies = [
        EagerInformPolicy(seed=seed),
        RandomPolicy(seed),
        RoundRobinPolicy(),
    ]
    policy = policies[policy_index % len(policies)]
    if abort_rate > 0:
        policy = AbortInjector(policy, abort_rate=abort_rate, seed=seed)
    result = run_system(
        system, policy, system_type, max_steps=max_steps, resolve_deadlocks=True
    )
    return result, system_type


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 5000),
    algo=st.integers(0, 2),
    policy=st.integers(0, 2),
    abort_rate=st.sampled_from([0.0, 0.0, 0.1, 0.4]),
    max_steps=st.sampled_from([50, 200, 5000]),
)
def test_grand_invariant(seed, algo, policy, abort_rate, max_steps):
    result, system_type = build_and_run(seed, algo, policy, abort_rate, max_steps)
    serial = serial_projection(result.behavior)
    # 1. simple-behavior constraints
    assert check_simple_behavior(serial, system_type) == []
    # 2. the Theorem 8/19 certificate, witness included
    certificate = certify(result.behavior, system_type)
    assert certificate.certified, certificate.explain()
    assert not certificate.witness_problems, certificate.witness_problems
    # 3. the derived order is suitable (Theorem 2 hypothesis 1+2)
    if certificate.order is not None:
        assert is_suitable(certificate.order, serial, ROOT)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 5000), cut_fraction=st.floats(0.1, 0.9))
def test_any_prefix_of_a_moss_run_is_certified(seed, cut_fraction):
    """Theorem 17 quantifies over *all* finite behaviors — so any prefix
    of a run (a behavior the system could have stopped at) must certify."""
    result, system_type = build_and_run(seed, 0, 0, 0.0, 5000)
    cut = int(len(result.behavior) * cut_fraction)
    certificate = certify(result.behavior[:cut], system_type)
    assert certificate.certified, (cut, certificate.explain())
