"""Tests for the static robustness analyzer (``repro.analysis.robustness``).

Covers the summary extractor, the sound may-conflict probe, the static
serialization graph, dangerous-structure detection and classification,
the validation bridge (both the directed policy and the exploratory
fallback), the program-scenario catalogue, the CLI — and the soundness
gate: across a 200-seed generated corpus, no statically-ROBUST program
set ever yields a cyclic serialization graph under bounded dynamic
exploration, and at least 90% of NOT-ROBUST verdicts are witnessed by a
concrete cyclic history.
"""

import json

import pytest

from repro.analysis.robustness import (
    FRACTURED_READ,
    GENERAL,
    LOST_UPDATE,
    NOT_ROBUST,
    ROBUST,
    WRITE_SKEW,
    ConflictProbe,
    DirectedPolicy,
    analyze_robustness,
    build_static_graph,
    explore_program_set,
    summarize_programs,
    validate_counterexample,
)
from repro.cli import main
from repro.core.history import ConflictCache
from repro.core.names import ROOT, ObjectName
from repro.core.rw_semantics import ReadOp, RWSpec, WriteOp
from repro.core.serialization_graph import CONFLICT, PRECEDES
from repro.obs import MetricsRegistry
from repro.scenarios import (
    PROGRAM_SCENARIOS,
    build_program_scenario,
    program_system_type,
)
from repro.sim.programs import (
    AccessCall,
    SubtransactionCall,
    par,
    read,
    seq,
    sub,
    write,
)
from repro.sim.workload import (
    CounterKind,
    WorkloadConfig,
    generate_program_set,
)
from repro.spec.builtin import CounterInc, CounterRead, CounterType

from conftest import T

X = ObjectName("x")
Y = ObjectName("y")


def rw_objects():
    return {X: RWSpec(initial=0), Y: RWSpec(initial=0)}


def two_template_root(left, right):
    return {ROOT: par(sub(left, "t1"), sub(right, "t2"))}


class TestSummaryExtractor:
    def test_footprints_and_read_only(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(Y), read(X))
        )
        summary = summarize_programs(rw_objects(), programs)
        t1 = [a.name for a in summary.subtree_accesses(T("t1"))]
        assert t1 == [T("t1", "read_x"), T("t1", "write_x")]
        assert summary.accesses[T("t1", "read_x")].read_only
        assert not summary.accesses[T("t1", "write_x")].read_only
        assert summary.accesses[T("t2", "read_y")].obj == Y

    def test_sequential_order_gives_must_precede(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        summary = summarize_programs(rw_objects(), programs)
        assert summary.must_precede(T("t1", "read_x"), T("t1", "write_x"))
        assert not summary.must_precede(T("t1", "write_x"), T("t1", "read_x"))
        # across parallel templates: no order either way
        assert not summary.must_precede(T("t1", "read_x"), T("t2", "read_x"))

    def test_parallel_program_gives_no_order(self):
        programs = {ROOT: par(sub(par(read(X), write(X, 1)), "t1"))}
        summary = summarize_programs(rw_objects(), programs)
        assert not summary.must_precede(T("t1", "read_x"), T("t1", "write_x"))

    def test_alternative_assumptions_and_trigger_order(self):
        program = seq(
            read(X, "primary"),
            AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
        )
        programs = {ROOT: par(sub(program, "t1"))}
        summary = summarize_programs(rw_objects(), programs)
        fallback = summary.accesses[T("t1", "fallback")]
        assert fallback.assumptions == frozenset({T("t1", "primary")})
        assert summary.accesses[T("t1", "primary")].assumptions == frozenset()
        # the alternative waits for its trigger even in a parallel program
        parallel = {
            ROOT: par(
                sub(
                    par(
                        read(X, "primary"),
                        AccessCall(
                            "fallback", X, ReadOp(), after_abort_of="primary"
                        ),
                    ),
                    "t1",
                )
            )
        }
        summary = summarize_programs(rw_objects(), parallel)
        assert summary.must_precede(T("t1", "primary"), T("t1", "fallback"))

    def test_alternative_is_inactive_without_its_assumed_abort(self):
        program = seq(
            read(X, "primary"),
            AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
        )
        programs = {ROOT: par(sub(program, "t1"))}
        summary = summarize_programs(rw_objects(), programs)
        fallback = summary.accesses[T("t1", "fallback")]
        assert not fallback.active_under(frozenset())
        assert fallback.active_under(frozenset({T("t1", "primary")}))
        # an access below an assumed-aborted subtree is never visible
        primary = summary.accesses[T("t1", "primary")]
        assert not primary.active_under(frozenset({T("t1", "primary")}))


class TestConflictProbe:
    def test_rw_spec_short_circuits_on_the_writer_marker(self):
        probe = ConflictProbe(
            RWSpec(initial=0), [ReadOp(), WriteOp(1)], ConflictCache()
        )
        assert probe.iff_writer
        assert not probe.may_conflict(ReadOp(), ReadOp())
        assert probe.may_conflict(ReadOp(), WriteOp(1))

    def test_counter_increments_proven_commuting(self):
        spec = CounterType()
        probe = ConflictProbe(
            spec, [CounterInc(1), CounterInc(2), CounterRead()], ConflictCache()
        )
        assert not probe.truncated
        assert not probe.may_conflict(CounterInc(1), CounterInc(2))
        assert probe.may_conflict(CounterRead(), CounterInc(1))
        assert not probe.may_conflict(CounterRead(), CounterRead())

    def test_truncation_degrades_to_conflicting(self):
        spec = CounterType()
        ops = [CounterInc(i) for i in range(1, 14)]  # > _MAX_PROBE_OPS
        probe = ConflictProbe(spec, ops, ConflictCache())
        assert probe.truncated
        assert probe.may_conflict(CounterInc(1), CounterInc(2))
        # ...but never for read-only pairs (the S002 guarantee)
        assert not probe.may_conflict(CounterRead(), CounterRead())

    def test_spec_without_apply_degrades_to_conflicting(self):
        class Opaque:
            pass

        probe = ConflictProbe(Opaque(), [CounterInc(1)], ConflictCache())
        assert probe.truncated
        assert probe.may_conflict(CounterInc(1), CounterInc(1))


class TestStaticGraph:
    def test_lost_update_edges(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        summary = summarize_programs(rw_objects(), programs)
        probe = ConflictProbe(
            RWSpec(initial=0), [ReadOp(), WriteOp(1), WriteOp(2)], ConflictCache()
        )
        groups = build_static_graph(summary, {X: probe})
        root_group = next(g for g in groups if g.parent == ROOT)
        conflict = [e for e in root_group.edges if e.kind == CONFLICT]
        directions = {(e.source, e.target) for e in conflict}
        assert directions == {(T("t1"), T("t2")), (T("t2"), T("t1"))}
        # witnesses never pair two reads
        for edge in conflict:
            for witness in edge.witnesses:
                assert not (
                    summary.accesses[witness.source].read_only
                    and summary.accesses[witness.target].read_only
                )

    def test_sequential_root_forces_precedes(self):
        programs = {
            ROOT: seq(
                sub(seq(read(X), write(X, 1)), "t1"),
                sub(seq(read(X), write(X, 2)), "t2"),
            )
        }
        summary = summarize_programs(rw_objects(), programs)
        probe = ConflictProbe(
            RWSpec(initial=0), [ReadOp(), WriteOp(1), WriteOp(2)], ConflictCache()
        )
        groups = build_static_graph(summary, {X: probe})
        root_group = next(g for g in groups if g.parent == ROOT)
        # only forward edges exist, and the precedes edge is forced
        assert all(e.source == T("t1") and e.target == T("t2")
                   for e in root_group.edges)
        assert any(e.kind == PRECEDES and e.forced for e in root_group.edges)


class TestDetector:
    def test_lost_update_classified(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert report.verdict == NOT_ROBUST
        assert LOST_UPDATE in report.classifications
        (cx,) = [c for c in report.counterexamples if c.parent == ROOT]
        assert len(cx.edges) == 2
        assert cx.schedule.index(T("t2", "read_x")) < cx.schedule.index(
            T("t1", "write_x")
        )

    def test_write_skew_classified(self):
        programs = two_template_root(
            seq(read(X), write(Y, 1)), seq(read(Y), write(X, 1))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert WRITE_SKEW in report.classifications

    def test_fractured_read_classified(self):
        programs = two_template_root(
            seq(write(X, 1), write(Y, 1)), seq(read(X), read(Y))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert FRACTURED_READ in report.classifications

    def test_sequential_chain_is_robust(self):
        programs = {
            ROOT: seq(
                sub(seq(read(X), write(X, 1)), "t1"),
                sub(seq(read(X), write(X, 2)), "t2"),
            )
        }
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert report.verdict == ROBUST

    def test_single_object_blind_writes_are_robust(self):
        # two single blind writes on one object: the potential graph has
        # edges both ways, but any actual run commits one write first —
        # the constraint check kills the unrealizable two-cycle
        programs = two_template_root(seq(write(X, 1)), seq(write(X, 2)))
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert report.verdict == ROBUST

    def test_opposite_order_blind_writes_are_dangerous(self):
        # the program-level analogue of the 'blind-writes' behavior
        # scenario: opposite-order write pairs close an SG cycle (even
        # though the execution is serially correct — the sufficiency gap)
        programs = two_template_root(
            seq(write(X, 1), write(Y, 1)), seq(write(Y, 2), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=True)
        assert report.verdict == NOT_ROBUST
        assert GENERAL in report.classifications
        assert report.witnessed

    def test_alternative_counterexample_carries_assumed_aborts(self):
        objects, programs, _ = build_program_scenario("fallback-retry")
        report = analyze_robustness(objects, programs, validate=False)
        assert report.verdict == NOT_ROBUST
        cx = next(c for c in report.counterexamples if c.assumed_aborts)
        assert T("t1", "direct") in cx.assumed_aborts

    def test_nested_group_detected(self):
        objects, programs, _ = build_program_scenario("nested-write-skew")
        report = analyze_robustness(objects, programs, validate=False)
        assert report.verdict == NOT_ROBUST
        assert any(c.parent == T("t1") for c in report.counterexamples)

    def test_metrics_are_emitted(self):
        registry = MetricsRegistry()
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        analyze_robustness(
            rw_objects(), programs, validate=True, metrics=registry
        )
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["robustness.analyses"] == 1
        assert counters["robustness.not_robust"] == 1
        assert counters["robustness.validation.directed"] >= 1


class TestValidationBridge:
    def test_directed_policy_realizes_the_lost_update(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=True)
        assert report.witnessed
        assert any(v.method == "directed" for v in report.validations)

    def test_fallback_retry_needs_the_assumed_abort(self):
        objects, programs, _ = build_program_scenario("fallback-retry")
        report = analyze_robustness(objects, programs, validate=True)
        assert report.witnessed

    def test_validate_false_runs_no_dynamic_checks(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        assert report.verdict == NOT_ROBUST
        assert report.validations == ()

    def test_robust_set_never_explores_into_a_cycle(self):
        objects, programs, _ = build_program_scenario("serial-chain")
        assert explore_program_set(objects, programs, seeds=4) is None

    def test_directed_policy_is_a_scheduling_policy(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        policy = DirectedPolicy(report.counterexamples[0])
        assert policy.choose([]) is None


class TestCatalogue:
    @pytest.mark.parametrize("name", list(PROGRAM_SCENARIOS))
    def test_every_scenario_matches_its_expectation(self, name):
        objects, programs, expectation = build_program_scenario(name)
        report = analyze_robustness(
            objects, programs, validate=not expectation.robust
        )
        assert report.robust == expectation.robust, report.explain()
        if expectation.classification:
            assert expectation.classification in report.classifications
        if not expectation.robust:
            assert report.witnessed, report.explain()

    def test_program_system_type_registers_accesses(self):
        system_type = program_system_type("program-lost-update")
        assert system_type.is_access(T("t1", "read_x"))

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build_program_scenario("no-such-scenario")


class TestReportOutput:
    def test_to_dict_round_trips_through_json(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=True)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["verdict"] == NOT_ROBUST
        assert payload["robust"] is False
        assert payload["counterexamples"][0]["classification"] == LOST_UPDATE
        assert payload["validations"][0]["witnessed"] is True

    def test_explain_mentions_the_schedule(self):
        programs = two_template_root(
            seq(read(X), write(X, 1)), seq(read(X), write(X, 2))
        )
        report = analyze_robustness(rw_objects(), programs, validate=False)
        text = report.explain()
        assert "directed schedule" in text
        assert "lost-update" in text


class TestSoundnessGate:
    """The acceptance bar: static ROBUST is dynamically safe, static
    NOT-ROBUST is dynamically witnessed."""

    def test_corpus_soundness_and_witness_rate(self):
        robust = not_robust = witnessed = 0
        for seed in range(200):
            config = WorkloadConfig(
                objects=2, top_level=3, max_calls=2, seed=seed
            )
            objects, programs = generate_program_set(config)
            report = analyze_robustness(objects, programs, validate=False)
            if report.robust:
                robust += 1
                cycle = explore_program_set(
                    objects, programs, seeds=3, max_steps=3000
                )
                assert cycle is None, (
                    f"seed {seed}: judged ROBUST but exploration found "
                    f"cycle {cycle}"
                )
            else:
                not_robust += 1
                validation = validate_counterexample(
                    objects, programs, report.counterexamples[0],
                    explore_seeds=6,
                )
                witnessed += validation.witnessed
        assert robust + not_robust == 200
        assert robust > 0 and not_robust > 0  # the corpus exercises both
        assert witnessed >= 0.9 * not_robust, (
            f"only {witnessed}/{not_robust} NOT-ROBUST verdicts witnessed"
        )

    def test_counter_kind_corpus_is_sound(self):
        for seed in range(40):
            config = WorkloadConfig(
                objects=2, top_level=3, max_calls=2,
                kind=CounterKind(), seed=seed,
            )
            objects, programs = generate_program_set(config)
            report = analyze_robustness(objects, programs, validate=False)
            if report.robust:
                assert explore_program_set(objects, programs, seeds=3) is None
            else:
                validation = validate_counterexample(
                    objects, programs, report.counterexamples[0],
                    explore_seeds=6,
                )
                assert validation.witnessed


class TestRobustnessCLI:
    def test_catalogue_run_exits_zero(self, capsys):
        assert main(["robustness", "--no-validate"]) == 0
        out = capsys.readouterr().out
        assert "serial-chain" in out
        assert "[OK]" in out and "UNEXPECTED" not in out

    def test_json_output_parses(self, capsys):
        assert main(["robustness", "--json", "--no-validate",
                     "program-lost-update"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        report = payload["scenarios"][0]["report"]
        assert report["verdict"] == NOT_ROBUST

    def test_validated_single_scenario(self, capsys):
        assert main(["robustness", "program-write-skew", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "write-skew" in out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["robustness", "nope"]) == 2

    def test_generated_sets_are_reported(self, capsys):
        assert main(["robustness", "--no-validate", "--generated", "2",
                     "serial-chain"]) == 0
        out = capsys.readouterr().out
        assert "generated seed=0" in out
