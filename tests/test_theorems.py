"""Integration tests: the paper's theorems validated end-to-end.

These are the executable analogues of the paper's main results:

* Theorem 17 — every finite behavior of a generic system built from Moss
  locking objects is serially correct for T0;
* Theorem 25 — likewise for undo logging objects over arbitrary types;
* Theorem 8's proof internals — the topologically sorted sibling order is
  suitable, and the constructive witness validates;
* agreement with the classical theory on depth-1 (flat) behaviors;
* agreement with the brute-force oracle on small instances.
"""

import pytest

from repro import (
    ROOT,
    AbortInjector,
    BankAccountKind,
    CounterKind,
    MapKind,
    EagerInformPolicy,
    MossRWLockingObject,
    QueueKind,
    RandomPolicy,
    RegisterKind,
    RoundRobinPolicy,
    RWKind,
    SetKind,
    UndoLoggingObject,
    WorkloadConfig,
    build_serialization_graph,
    certify,
    classical_edges,
    generate_workload,
    history_to_nested_behavior,
    is_conflict_serializable,
    is_suitable,
    make_generic_system,
    oracle_serially_correct,
    run_system,
    run_strict_2pl,
    serial_projection,
)
from repro.classical.two_phase_locking import FlatScript
from repro.sim.policies import SchedulingPolicy


def moss_run(seed, policy=None, **config_kw):
    defaults = dict(seed=seed, top_level=4, objects=3)
    defaults.update(config_kw)
    system_type, programs = generate_workload(WorkloadConfig(**defaults))
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    policy = policy or EagerInformPolicy(seed=seed)
    return run_system(system, policy, system_type, max_steps=6000), system_type


def undo_run(seed, kind, policy=None, **config_kw):
    defaults = dict(seed=seed, top_level=4, objects=2, kind=kind)
    defaults.update(config_kw)
    system_type, programs = generate_workload(WorkloadConfig(**defaults))
    system = make_generic_system(system_type, programs, UndoLoggingObject)
    policy = policy or EagerInformPolicy(seed=seed)
    return run_system(system, policy, system_type, max_steps=6000), system_type


class TestTheorem17:
    @pytest.mark.parametrize("seed", range(8))
    def test_moss_eager_informs(self, seed):
        result, system_type = moss_run(seed)
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    @pytest.mark.parametrize("seed", range(8))
    def test_moss_random_policy(self, seed):
        result, system_type = moss_run(seed, policy=RandomPolicy(seed))
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    @pytest.mark.parametrize("seed", range(4))
    def test_moss_with_aborts(self, seed):
        policy = AbortInjector(RandomPolicy(seed), abort_rate=0.25, seed=seed)
        result, system_type = moss_run(seed, policy=policy)
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    def test_moss_deep_nesting(self):
        result, system_type = moss_run(
            99, max_depth=3, subtransaction_probability=0.6, top_level=3
        )
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    def test_moss_prefixes_also_certified(self):
        # serial correctness holds for every finite behavior, hence for
        # every prefix of a run
        result, system_type = moss_run(5)
        behavior = result.behavior
        for cut in range(0, len(behavior) + 1, 7):
            certificate = certify(behavior[:cut], system_type)
            assert certificate.certified, (cut, certificate.explain())


class TestTheorem25:
    @pytest.mark.parametrize(
        "kind",
        [CounterKind(), SetKind(), BankAccountKind(), QueueKind(), RegisterKind(),
         MapKind()],
        ids=["counter", "set", "bank", "queue", "register", "map"],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_undo_types(self, kind, seed):
        result, system_type = undo_run(seed, kind)
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems

    @pytest.mark.parametrize("seed", range(4))
    def test_undo_with_aborts(self, seed):
        policy = AbortInjector(RandomPolicy(seed), abort_rate=0.25, seed=seed)
        result, system_type = undo_run(seed, CounterKind(), policy=policy)
        certificate = certify(result.behavior, system_type)
        assert certificate.certified, certificate.explain()
        assert not certificate.witness_problems


class TestTheorem8Internals:
    def test_derived_order_is_suitable(self):
        result, system_type = moss_run(11)
        serial = serial_projection(result.behavior)
        graph = build_serialization_graph(serial, system_type)
        order = graph.to_sibling_order()
        assert is_suitable(order, serial, ROOT)

    def test_certificate_carries_acyclic_graph(self):
        result, system_type = moss_run(12)
        certificate = certify(result.behavior, system_type)
        assert certificate.graph.is_acyclic()
        assert certificate.order is not None


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_certified_small_runs_accepted_by_oracle(self, seed):
        result, system_type = moss_run(seed, top_level=3, objects=2, max_calls=2)
        certificate = certify(result.behavior, system_type)
        assert certificate.certified
        assert oracle_serially_correct(
            result.behavior, system_type, max_orders=5000
        )


class TestClassicalAgreement:
    """E5: on depth-1 trees the nested construction matches classical SGT."""

    @pytest.mark.parametrize("seed", range(10))
    def test_edges_agree_on_2pl_histories(self, seed):
        import random

        rng = random.Random(seed)
        scripts = [
            FlatScript.random(f"T{i}", objects=3, length=3, rng=rng)
            for i in range(4)
        ]
        history, _ = run_strict_2pl(scripts, seed=seed)
        behavior, system_type = history_to_nested_behavior(history)
        graph = build_serialization_graph(behavior, system_type)
        # compare only the top-level sibling edges: the nested graph also
        # orders each flat transaction's *own* accesses (SG(beta, Ti)),
        # which the classical graph has no counterpart for
        nested_conflicts = {
            (edge.source.path[0], edge.target.path[0])
            for edge in graph.edges()
            if edge.kind == "conflict" and edge.parent == ROOT
        }
        assert nested_conflicts == classical_edges(history)

    @pytest.mark.parametrize("seed", range(10))
    def test_2pl_histories_certified(self, seed):
        import random

        rng = random.Random(seed)
        scripts = [
            FlatScript.random(f"T{i}", objects=3, length=3, rng=rng)
            for i in range(4)
        ]
        history, _ = run_strict_2pl(scripts, seed=seed)
        assert is_conflict_serializable(history)
        behavior, system_type = history_to_nested_behavior(history)
        certificate = certify(behavior, system_type)
        assert certificate.certified, certificate.explain()

    @pytest.mark.parametrize("seed", range(12))
    def test_cyclic_agreement_on_random_histories(self, seed):
        # the nested conflict subgraph is cyclic exactly when the classical
        # graph is (precedes edges may only add order, and random histories
        # here have no reports before requests)
        from repro.classical.histories import random_history

        history = random_history(4, 2, 3, seed=seed, write_probability=0.7)
        behavior, system_type = history_to_nested_behavior(history)
        graph = build_serialization_graph(behavior, system_type)
        conflict_only = {
            (edge.source, edge.target)
            for edge in graph.edges()
            if edge.kind == "conflict"
        }
        from repro import Digraph

        digraph = Digraph()
        for src, dst in conflict_only:
            digraph.add_edge(src, dst)
        assert digraph.is_acyclic() == is_conflict_serializable(history)
