"""Unit tests for the undo logging object automaton U_X (Section 6.2)."""

import pytest

from repro import (
    Access,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    Operation,
    RequestCommit,
    SystemType,
    UndoLoggingObject,
)
from repro.spec.builtin import (
    OK,
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Deposit,
    Withdraw,
)

from conftest import T


C = ObjectName("c")


def setup(spec, *accesses):
    system = SystemType({C: spec})
    for name, operation in accesses:
        system.register_access(name, Access(C, operation))
    return system, UndoLoggingObject(C, system)


class TestBasics:
    def test_initial_state_empty(self):
        _, obj = setup(CounterType())
        state = obj.initial_state()
        assert state.operations == ()
        assert state.created == frozenset()

    def test_rejects_spec_without_protocol(self):
        class Bogus:
            pass

        system = SystemType({C: Bogus()})
        with pytest.raises(TypeError):
            UndoLoggingObject(C, system)

    def test_forced_value_from_log(self):
        inc, read = T("t1", "i"), T("t2", "r")
        _, obj = setup(CounterType(initial=10), (inc, CounterInc(5)), (read, CounterRead()))
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, Create(read))
        # read conflicts with the uncommitted increment: blocked
        assert not obj.enabled(state, RequestCommit(read, 15))
        # once t1's chain is committed, the read proceeds and sees 15
        state = obj.effect(state, InformCommit(C, inc))
        state = obj.effect(state, InformCommit(C, T("t1")))
        assert obj.enabled(state, RequestCommit(read, 15))
        assert not obj.enabled(state, RequestCommit(read, 10))


class TestCommutativityPrecondition:
    def test_commuting_ops_proceed_concurrently(self):
        i1, i2 = T("t1", "i"), T("t2", "i")
        _, obj = setup(CounterType(), (i1, CounterInc(1)), (i2, CounterInc(2)))
        state = obj.initial_state()
        state = obj.effect(state, Create(i1))
        state = obj.effect(state, RequestCommit(i1, OK))
        state = obj.effect(state, Create(i2))
        # increments commute: no blocking despite t1 being uncommitted
        assert obj.enabled(state, RequestCommit(i2, OK))

    def test_conflicting_op_blocked_until_commit(self):
        inc, read = T("t1", "i"), T("t2", "r")
        _, obj = setup(CounterType(), (inc, CounterInc(1)), (read, CounterRead()))
        state = obj.initial_state()
        state = obj.effect(state, Create(inc))
        state = obj.effect(state, RequestCommit(inc, OK))
        state = obj.effect(state, Create(read))
        assert read in set(obj.blocked_accesses(state))
        state = obj.effect(state, InformCommit(C, inc))
        state = obj.effect(state, InformCommit(C, T("t1")))
        assert read not in set(obj.blocked_accesses(state))

    def test_sibling_subtransactions_of_common_ancestor(self):
        # accesses under a common uncommitted ancestor: only the part of the
        # chain outside ancestors(T) matters
        i1, i2 = T("t", "u1", "i"), T("t", "u2", "i")
        read = T("t", "u2", "r")
        _, obj = setup(
            CounterType(),
            (i1, CounterInc(1)),
            (read, CounterRead()),
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(i1))
        state = obj.effect(state, RequestCommit(i1, OK))
        # u1 committed (but t has not): u1's op visible to u2's read
        state = obj.effect(state, InformCommit(C, i1))
        state = obj.effect(state, InformCommit(C, T("t", "u1")))
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 1))

    def test_successful_withdrawals_commute(self):
        # Weihl's example: two concurrent successful withdrawals
        w1, w2 = T("t1", "w"), T("t2", "w")
        _, obj = setup(
            BankAccountType(initial=100), (w1, Withdraw(30)), (w2, Withdraw(30))
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(w1))
        state = obj.effect(state, RequestCommit(w1, OK))
        state = obj.effect(state, Create(w2))
        assert obj.enabled(state, RequestCommit(w2, OK))

    def test_deposit_conflicts_with_pending_withdrawal(self):
        w, d = T("t1", "w"), T("t2", "d")
        _, obj = setup(
            BankAccountType(initial=100), (w, Withdraw(30)), (d, Deposit(10))
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(w))
        state = obj.effect(state, RequestCommit(w, OK))
        state = obj.effect(state, Create(d))
        assert not obj.enabled(state, RequestCommit(d, OK))


class TestUndo:
    def test_inform_abort_excises_descendants(self):
        i1, i2 = T("t1", "i"), T("t2", "i")
        read = T("t3", "r")
        _, obj = setup(
            CounterType(),
            (i1, CounterInc(1)),
            (i2, CounterInc(2)),
            (read, CounterRead()),
        )
        state = obj.initial_state()
        for access in (i1, i2):
            state = obj.effect(state, Create(access))
            state = obj.effect(state, RequestCommit(access, OK))
        assert [op.transaction for op in state.operations] == [i1, i2]
        state = obj.effect(state, InformAbort(C, T("t1")))
        assert [op.transaction for op in state.operations] == [i2]
        # commit t2's chain; the read sees only t2's increment
        state = obj.effect(state, InformCommit(C, i2))
        state = obj.effect(state, InformCommit(C, T("t2")))
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 2))

    def test_abort_then_fresh_value(self):
        w = T("t1", "w")
        read = T("t2", "r")
        _, obj = setup(
            BankAccountType(initial=50), (w, Withdraw(20)), (read, BalanceRead())
        )
        state = obj.initial_state()
        state = obj.effect(state, Create(w))
        state = obj.effect(state, RequestCommit(w, OK))
        state = obj.effect(state, InformAbort(C, T("t1")))
        state = obj.effect(state, Create(read))
        assert obj.enabled(state, RequestCommit(read, 50))

    def test_lemma20_log_contents(self):
        # the log is operations(beta) minus aborted descendants
        i1, i2 = T("t1", "i"), T("t2", "i")
        _, obj = setup(CounterType(), (i1, CounterInc(1)), (i2, CounterInc(2)))
        state = obj.initial_state()
        for access in (i1, i2):
            state = obj.effect(state, Create(access))
            state = obj.effect(state, RequestCommit(access, OK))
        state = obj.effect(state, InformAbort(C, T("t2")))
        assert state.operations == (Operation(i1, OK),)


class TestBookkeeping:
    def test_no_duplicate_response(self):
        i1 = T("t1", "i")
        _, obj = setup(CounterType(), (i1, CounterInc(1)))
        state = obj.initial_state()
        state = obj.effect(state, Create(i1))
        state = obj.effect(state, RequestCommit(i1, OK))
        assert not obj.enabled(state, RequestCommit(i1, OK))

    def test_enabled_outputs_sound(self):
        i1, read = T("t1", "i"), T("t2", "r")
        _, obj = setup(CounterType(), (i1, CounterInc(1)), (read, CounterRead()))
        state = obj.initial_state()
        state = obj.effect(state, Create(i1))
        state = obj.effect(state, Create(read))
        outputs = list(obj.enabled_outputs(state))
        for action in outputs:
            assert obj.enabled(state, action)
        # both are enabled initially (empty log)
        assert RequestCommit(i1, OK) in outputs
        assert RequestCommit(read, 0) in outputs

    def test_inform_commit_recorded(self):
        _, obj = setup(CounterType())
        state = obj.effect(obj.initial_state(), InformCommit(C, T("t")))
        assert T("t") in state.committed
