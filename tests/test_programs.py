"""Tests for the transaction-program DSL and the ProgramTransaction automaton."""

import pytest

from repro import (
    Create,
    ObjectName,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    TransactionProgram,
)
from repro.sim.programs import (
    AccessCall,
    ProgramTransaction,
    SubtransactionCall,
    collect_programs,
    op,
    par,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from repro.core.rw_semantics import ReadOp, RWSpec, WriteOp

from conftest import T


X = ObjectName("x")


class TestDSL:
    def test_read_write_helpers(self):
        call = read(X)
        assert isinstance(call.op, ReadOp)
        call = write(X, 5, component="w")
        assert call.component == "w"
        assert call.op == WriteOp(5)

    def test_seq_renames_duplicates(self):
        program = seq(read(X), read(X))
        names = [c.component for c in program.calls]
        assert len(set(names)) == 2
        assert program.sequential

    def test_par(self):
        program = par(read(X), write(X, 1))
        assert not program.sequential

    def test_duplicate_components_rejected(self):
        with pytest.raises(ValueError):
            TransactionProgram((read(X, "a"), write(X, 1, "a")))

    def test_result_value_constant_and_callable(self):
        program = seq(read(X, "a"), result="fixed")
        assert program.result_value({}) == "fixed"
        program = seq(read(X, "a"), result=lambda o: o["a"][1])
        assert program.result_value({"a": ("commit", 42)}) == 42

    def test_system_type_for_registers_nested_accesses(self):
        inner = seq(read(X, "r"))
        outer = seq(sub(inner, "child"), write(X, 9, "w"))
        system = system_type_for({X: RWSpec()}, {T("t"): outer})
        assert system.is_access(T("t", "child", "r"))
        assert system.is_access(T("t", "w"))
        assert not system.is_access(T("t", "child"))

    def test_collect_programs_flattens(self):
        inner = seq(read(X, "r"))
        outer = seq(sub(inner, "child"))
        flat = collect_programs({T("t"): outer})
        assert set(flat) == {T("t"), T("t", "child")}


class TestProgramTransaction:
    def _automaton(self, program, name=None):
        return ProgramTransaction(name or T("t"), program)

    def test_waits_for_create(self):
        automaton = self._automaton(seq(read(X, "a")))
        state = automaton.initial_state()
        assert list(automaton.enabled_outputs(state)) == []
        state = automaton.effect(state, Create(T("t")))
        assert list(automaton.enabled_outputs(state)) == [
            RequestCreate(T("t", "a"))
        ]

    def test_sequential_waits_for_report(self):
        automaton = self._automaton(seq(read(X, "a"), read(X, "b")))
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "a")))
        assert list(automaton.enabled_outputs(state)) == []
        state = automaton.effect(state, ReportCommit(T("t", "a"), 0))
        assert list(automaton.enabled_outputs(state)) == [
            RequestCreate(T("t", "b"))
        ]

    def test_parallel_requests_all(self):
        automaton = self._automaton(par(read(X, "a"), read(X, "b")))
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        outputs = set(automaton.enabled_outputs(state))
        assert outputs == {RequestCreate(T("t", "a")), RequestCreate(T("t", "b"))}

    def test_commit_after_all_reports(self):
        automaton = self._automaton(par(read(X, "a"), read(X, "b"), result="v"))
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "a")))
        state = automaton.effect(state, RequestCreate(T("t", "b")))
        state = automaton.effect(state, ReportCommit(T("t", "a"), 0))
        assert not any(
            isinstance(a, RequestCommit) for a in automaton.enabled_outputs(state)
        )
        state = automaton.effect(state, ReportAbort(T("t", "b")))
        assert RequestCommit(T("t"), "v") in set(automaton.enabled_outputs(state))

    def test_abort_outcome_feeds_result(self):
        program = par(
            read(X, "a"),
            result=lambda outcomes: "aborted" if outcomes["a"] == ("abort",) else "ok",
        )
        automaton = self._automaton(program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "a")))
        state = automaton.effect(state, ReportAbort(T("t", "a")))
        assert RequestCommit(T("t"), "aborted") in set(
            automaton.enabled_outputs(state)
        )

    def test_no_duplicate_requests(self):
        automaton = self._automaton(par(read(X, "a")))
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "a")))
        assert RequestCreate(T("t", "a")) not in set(
            automaton.enabled_outputs(state)
        )

    def test_root_starts_created_and_never_commits(self):
        automaton = ProgramTransaction(T(), par(sub(seq(read(X, "r")), "t1")))
        state = automaton.initial_state()
        assert state.created
        outputs = set(automaton.enabled_outputs(state))
        assert outputs == {RequestCreate(T("t1"))}
        state = automaton.effect(state, RequestCreate(T("t1")))
        state = automaton.effect(state, ReportCommit(T("t1"), "ok"))
        assert not any(
            isinstance(a, RequestCommit) for a in automaton.enabled_outputs(state)
        )

    def test_signature(self):
        automaton = self._automaton(seq(read(X, "a")))
        assert automaton.is_input(Create(T("t")))
        assert automaton.is_input(ReportCommit(T("t", "a"), 0))
        assert automaton.is_output(RequestCreate(T("t", "a")))
        assert automaton.is_output(RequestCommit(T("t"), 1))
        # children not in the program are not in the signature
        assert not automaton.is_input(ReportCommit(T("t", "zzz"), 0))

    def test_duplicate_report_ignored(self):
        automaton = self._automaton(par(read(X, "a")))
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "a")))
        state = automaton.effect(state, ReportCommit(T("t", "a"), 1))
        state2 = automaton.effect(state, ReportCommit(T("t", "a"), 2))
        assert state2.outcome_map() == state.outcome_map()


class TestAlternativeCalls:
    """The retry pattern: a call issued only after another call aborts."""

    def _program(self, sequential=False):
        primary = read(X, "primary")
        fallback = AccessCall("fallback", X, ReadOp(), after_abort_of="primary")
        return TransactionProgram((primary, fallback), sequential=sequential)

    def test_alternative_must_follow_trigger(self):
        with pytest.raises(ValueError):
            TransactionProgram(
                (
                    AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
                    read(X, "primary"),
                )
            )

    def test_alternative_not_requested_initially(self):
        automaton = ProgramTransaction(T("t"), self._program())
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "primary")) in outputs
        assert RequestCreate(T("t", "fallback")) not in outputs

    def test_alternative_triggered_by_abort(self):
        from repro import ReportAbort

        automaton = ProgramTransaction(T("t"), self._program())
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, ReportAbort(T("t", "primary")))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "fallback")) in outputs
        # not ready to commit until the fallback reports
        assert not any(isinstance(a, RequestCommit) for a in outputs)
        state = automaton.effect(state, RequestCreate(T("t", "fallback")))
        state = automaton.effect(state, ReportCommit(T("t", "fallback"), 0))
        assert any(
            isinstance(a, RequestCommit) for a in automaton.enabled_outputs(state)
        )

    def test_alternative_skipped_on_commit(self):
        automaton = ProgramTransaction(T("t"), self._program())
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, ReportCommit(T("t", "primary"), 0))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "fallback")) not in outputs
        assert any(isinstance(a, RequestCommit) for a in outputs)

    def test_sequential_successor_waits_for_active_alternative(self):
        from repro import ReportAbort

        program = TransactionProgram(
            (
                read(X, "primary"),
                AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
                read(X, "final"),
            ),
            sequential=True,
        )
        automaton = ProgramTransaction(T("t"), program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, ReportAbort(T("t", "primary")))
        outputs = set(automaton.enabled_outputs(state))
        # the fallback goes next; 'final' waits for it
        assert RequestCreate(T("t", "fallback")) in outputs
        assert RequestCreate(T("t", "final")) not in outputs
        state = automaton.effect(state, RequestCreate(T("t", "fallback")))
        state = automaton.effect(state, ReportCommit(T("t", "fallback"), 0))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "final")) in outputs

    def test_sequential_successor_skips_inactive_alternative(self):
        program = TransactionProgram(
            (
                read(X, "primary"),
                AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
                read(X, "final"),
            ),
            sequential=True,
        )
        automaton = ProgramTransaction(T("t"), program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, ReportCommit(T("t", "primary"), 0))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "final")) in outputs
        assert RequestCreate(T("t", "fallback")) not in outputs

    def test_parallel_alternative_waits_for_sibling(self):
        """In a parallel program the alternative still gates on its
        trigger: unrelated siblings launch immediately, the alternative
        does not."""
        program = TransactionProgram(
            (
                read(X, "primary"),
                read(X, "other"),
                AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
            ),
            sequential=False,
        )
        automaton = ProgramTransaction(T("t"), program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "primary")) in outputs
        assert RequestCreate(T("t", "other")) in outputs
        assert RequestCreate(T("t", "fallback")) not in outputs

    def test_parallel_alternative_taken_on_sibling_abort(self):
        from repro import ReportAbort

        program = TransactionProgram(
            (
                read(X, "primary"),
                read(X, "other"),
                AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
            ),
            sequential=False,
        )
        automaton = ProgramTransaction(T("t"), program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, RequestCreate(T("t", "other")))
        state = automaton.effect(state, ReportAbort(T("t", "primary")))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "fallback")) in outputs
        # commit still waits on 'other' and the fallback
        assert not any(isinstance(a, RequestCommit) for a in outputs)
        state = automaton.effect(state, RequestCreate(T("t", "fallback")))
        state = automaton.effect(state, ReportCommit(T("t", "other"), 0))
        state = automaton.effect(state, ReportCommit(T("t", "fallback"), 0))
        assert any(
            isinstance(a, RequestCommit) for a in automaton.enabled_outputs(state)
        )

    def test_parallel_alternative_skipped_on_sibling_commit(self):
        program = TransactionProgram(
            (
                read(X, "primary"),
                read(X, "other"),
                AccessCall("fallback", X, ReadOp(), after_abort_of="primary"),
            ),
            sequential=False,
        )
        automaton = ProgramTransaction(T("t"), program)
        state = automaton.effect(automaton.initial_state(), Create(T("t")))
        state = automaton.effect(state, RequestCreate(T("t", "primary")))
        state = automaton.effect(state, RequestCreate(T("t", "other")))
        state = automaton.effect(state, ReportCommit(T("t", "primary"), 0))
        outputs = set(automaton.enabled_outputs(state))
        assert RequestCreate(T("t", "fallback")) not in outputs
        state = automaton.effect(state, ReportCommit(T("t", "other"), 0))
        outputs = set(automaton.enabled_outputs(state))
        # the inactive alternative never blocks the commit
        assert RequestCreate(T("t", "fallback")) not in outputs
        assert any(isinstance(a, RequestCommit) for a in outputs)

    def test_end_to_end_retry_run_certifies(self):
        """Whole-system test: a transfer whose debit is aborted retries
        against a fallback account, and the run still certifies."""
        from repro import (
            Abort,
            EagerInformPolicy,
            ObjectName,
            UndoLoggingObject,
            certify,
            make_generic_system,
            run_system,
        )
        from repro.core import ROOT
        from repro.sim.policies import SchedulingPolicy
        from repro.spec.builtin import BankAccountType, Withdraw

        primary_acct, backup_acct = ObjectName("primary"), ObjectName("backup")
        transfer = TransactionProgram(
            (
                SubtransactionCall(
                    "debit", seq(op(primary_acct, Withdraw(10), "w"))
                ),
                SubtransactionCall(
                    "debit_backup",
                    seq(op(backup_acct, Withdraw(10), "w")),
                    after_abort_of="debit",
                ),
            ),
            sequential=True,
        )
        programs = {ROOT: TransactionProgram((sub(transfer, "t"),))}
        system_type = system_type_for(
            {primary_acct: BankAccountType(100), backup_acct: BankAccountType(100)},
            programs,
        )
        system = make_generic_system(system_type, programs, UndoLoggingObject)

        class AbortDebitOnce(SchedulingPolicy):
            """Abort the primary debit the first time it can be aborted."""

            def __init__(self):
                self.base = EagerInformPolicy(seed=0)
                self.done = False

            def offer_aborts(self, aborts):
                self._aborts = [
                    a for a in aborts if a.transaction == T("t", "debit")
                ]

            def choose(self, enabled):
                if not self.done and getattr(self, "_aborts", None):
                    self.done = True
                    return self._aborts[0]
                return self.base.choose(enabled)

        result = run_system(
            system, AbortDebitOnce(), system_type, max_steps=4000,
            resolve_deadlocks=True,
        )
        assert result.stats.quiescent
        behavior = result.behavior
        assert Abort(T("t", "debit")) in behavior
        # the fallback debit ran and the transfer committed
        from repro import Commit

        assert Commit(T("t", "debit_backup")) in behavior
        assert Commit(T("t")) in behavior
        assert certify(behavior, system_type).certified
