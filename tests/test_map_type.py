"""Tests for MapType — a user-style data type built on the framework."""

import pytest

from repro import (
    Access,
    Create,
    InformCommit,
    ObjectName,
    RequestCommit,
    SystemType,
    UndoLoggingObject,
)
from repro.spec.builtin import MISSING, OK, MapGet, MapPut, MapRemove, MapType
from repro.spec.commutativity import exhaustive_prefixes
from repro.spec.forward import forward_commutes

from conftest import T


class TestSemantics:
    def test_apply(self):
        m = MapType()
        state, value = m.apply(m.initial, MapPut("a", 1))
        assert value == OK
        state, value = m.apply(state, MapGet("a"))
        assert value == 1
        state, value = m.apply(state, MapRemove("a"))
        assert value == OK
        _, value = m.apply(state, MapGet("a"))
        assert value == MISSING

    def test_initial_contents(self):
        m = MapType(initial={"a": 1})
        assert m.result_of((), MapGet("a")) == 1

    def test_states_are_canonical(self):
        m = MapType()
        s1 = m.replay([(MapPut("a", 1), OK), (MapPut("b", 2), OK)])
        s2 = m.replay([(MapPut("b", 2), OK), (MapPut("a", 1), OK)])
        assert s1 == s2

    def test_foreign_op_rejected(self):
        with pytest.raises(TypeError):
            MapType().apply((), "bogus")

    def test_read_only_flag(self):
        m = MapType()
        assert m.is_read_only(MapGet("a"))
        assert not m.is_read_only(MapPut("a", 1))


class TestCommutativityTable:
    def test_table_matches_definition(self):
        """The same definitional verification every built-in type gets."""
        from test_commutativity import check_type

        check_type(
            MapType(),
            [MapPut("a", 1), MapPut("a", 2), MapPut("b", 1), MapGet("a"),
             MapRemove("a")],
            max_length=2,
        )

    def test_distinct_keys_commute(self):
        m = MapType()
        assert m.commutes_backward(MapPut("a", 1), OK, MapPut("b", 9), OK)
        assert m.commutes_backward(MapGet("a"), MISSING, MapRemove("b"), OK)

    def test_same_key_conflicts(self):
        m = MapType()
        assert not m.commutes_backward(MapPut("a", 1), OK, MapPut("a", 2), OK)
        assert m.commutes_backward(MapPut("a", 1), OK, MapPut("a", 1), OK)
        assert not m.commutes_backward(MapGet("a"), 1, MapPut("a", 1), OK)
        assert not m.commutes_backward(MapRemove("a"), OK, MapPut("a", 1), OK)
        assert m.commutes_backward(MapRemove("a"), OK, MapRemove("a"), OK)


class TestUnderUndoLogging:
    def test_distinct_key_puts_run_concurrently(self):
        obj = ObjectName("m")
        system = SystemType({obj: MapType()})
        p1, p2 = T("t1", "p"), T("t2", "p")
        system.register_access(p1, Access(obj, MapPut("a", 1)))
        system.register_access(p2, Access(obj, MapPut("b", 2)))
        undo = UndoLoggingObject(obj, system)
        state = undo.initial_state()
        state = undo.effect(state, Create(p1))
        state = undo.effect(state, RequestCommit(p1, OK))
        state = undo.effect(state, Create(p2))
        assert undo.enabled(state, RequestCommit(p2, OK))

    def test_same_key_get_blocks_on_pending_put(self):
        obj = ObjectName("m")
        system = SystemType({obj: MapType()})
        put, get = T("t1", "p"), T("t2", "g")
        system.register_access(put, Access(obj, MapPut("a", 1)))
        system.register_access(get, Access(obj, MapGet("a")))
        undo = UndoLoggingObject(obj, system)
        state = undo.initial_state()
        state = undo.effect(state, Create(put))
        state = undo.effect(state, RequestCommit(put, OK))
        state = undo.effect(state, Create(get))
        assert not undo.enabled(state, RequestCommit(get, 1))
        state = undo.effect(state, InformCommit(obj, put))
        state = undo.effect(state, InformCommit(obj, T("t1")))
        assert undo.enabled(state, RequestCommit(get, 1))

    def test_end_to_end_certified(self):
        from repro import (
            EagerInformPolicy,
            certify,
            make_generic_system,
            run_system,
        )
        from repro.core import ROOT
        from repro.sim.programs import TransactionProgram, op, seq, sub, system_type_for

        obj = ObjectName("m")
        programs = {
            ROOT: TransactionProgram(
                (
                    sub(seq(op(obj, MapPut("a", 1), "pa")), "t1"),
                    sub(seq(op(obj, MapPut("b", 2), "pb")), "t2"),
                    sub(seq(op(obj, MapGet("c"), "gc")), "t3"),
                ),
                sequential=False,
            )
        }
        system_type = system_type_for({obj: MapType()}, programs)
        system = make_generic_system(system_type, programs, UndoLoggingObject)
        result = run_system(
            system, EagerInformPolicy(seed=1), system_type, resolve_deadlocks=True
        )
        certificate = certify(result.behavior, system_type)
        assert certificate.certified
        assert result.stats.top_level_committed == 3
