"""Tests for the multiversion timestamp ordering extension."""

import pytest

from repro import (
    OK,
    Access,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    ReadOp,
    RequestCommit,
    RWSpec,
    SystemType,
    WriteOp,
    certify,
    oracle_serially_correct,
)
from repro.extensions.mvto import MVTORWObject
from repro.spec.builtin import CounterType

from conftest import T

X = ObjectName("x")


def setup(*accesses):
    system = SystemType({X: RWSpec(initial=0)})
    for name, operation in accesses:
        system.register_access(name, Access(X, operation))
    return system, MVTORWObject(X, system)


def commit_chain(obj, state, access):
    """Deliver INFORM_COMMITs for the access and its proper ancestors."""
    for ancestor in access.ancestors():
        if not ancestor.is_root:
            state = obj.effect(state, InformCommit(X, ancestor))
    return state


class TestBasics:
    def test_requires_rwspec(self):
        system = SystemType({X: CounterType()})
        with pytest.raises(TypeError):
            MVTORWObject(X, system)

    def test_initial_read(self):
        reader = T("t0", "r")
        _, obj = setup((reader, ReadOp()))
        state = obj.effect(obj.initial_state(), Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 0))

    def test_write_then_committed_read(self):
        writer, reader = T("t0", "w"), T("t1", "r")
        _, obj = setup((writer, WriteOp(9)), (reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, Create(reader))
        # writer chain not yet committed: the read waits
        assert not obj.enabled(state, RequestCommit(reader, 9))
        assert reader in set(obj.blocked_accesses(state))
        state = commit_chain(obj, state, writer)
        assert obj.enabled(state, RequestCommit(reader, 9))


class TestTimestampOrdering:
    def test_early_reader_sees_old_version(self):
        """The multiversion signature move: a low-timestamp reader running
        *after* a high-timestamp writer still reads the old version."""
        writer, reader = T("t1", "w"), T("t0", "r")  # ts(t0) < ts(t1)
        _, obj = setup((writer, WriteOp(9)), (reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = commit_chain(obj, state, writer)
        state = obj.effect(state, Create(reader))
        # event order says 9; timestamp order says the initial 0
        assert obj.enabled(state, RequestCommit(reader, 0))
        assert not obj.enabled(state, RequestCommit(reader, 9))

    def test_late_write_refused_after_later_read(self):
        """MVTO write rule: t0's write is refused once t1 read version 0."""
        reader, writer = T("t1", "r"), T("t0", "w")
        _, obj = setup((reader, ReadOp()), (writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))  # reads initial
        state = obj.effect(state, Create(writer))
        assert not obj.enabled(state, RequestCommit(writer, OK))
        assert writer in set(obj.blocked_accesses(state))

    def test_write_allowed_when_reader_is_earlier(self):
        reader, writer = T("t0", "r"), T("t1", "w")
        _, obj = setup((reader, ReadOp()), (writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))
        state = obj.effect(state, Create(writer))
        assert obj.enabled(state, RequestCommit(writer, OK))

    def test_own_write_visible_to_own_read(self):
        writer, reader = T("t0", "w"), T("t0", "r")
        _, obj = setup((writer, WriteOp(4)), (reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, InformCommit(X, writer))  # access committed
        state = obj.effect(state, Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 4))


class TestAborts:
    def test_abort_removes_versions(self):
        writer, reader = T("t0", "w"), T("t1", "r")
        _, obj = setup((writer, WriteOp(9)), (reader, ReadOp()))
        state = obj.initial_state()
        state = obj.effect(state, Create(writer))
        state = obj.effect(state, RequestCommit(writer, OK))
        state = obj.effect(state, InformAbort(X, T("t0")))
        state = obj.effect(state, Create(reader))
        assert obj.enabled(state, RequestCommit(reader, 0))

    def test_abort_removes_reads(self):
        reader, writer = T("t1", "r"), T("t0", "w")
        _, obj = setup((reader, ReadOp()), (writer, WriteOp(5)))
        state = obj.initial_state()
        state = obj.effect(state, Create(reader))
        state = obj.effect(state, RequestCommit(reader, 0))
        state = obj.effect(state, InformAbort(X, T("t1")))
        state = obj.effect(state, Create(writer))
        # the blocking read is gone: the write proceeds
        assert obj.enabled(state, RequestCommit(writer, OK))


class TestBoundary:
    def test_stale_read_run_is_correct_but_rejected(self):
        """The E10 phenomenon in miniature: a full MVTO run that is
        serially correct (oracle) but rejected by the SG test (stale-read
        ARV failure against event order)."""
        from repro import (
            Commit,
            ReportCommit,
            RequestCreate,
        )

        system, obj = setup()
        behavior = []

        def top(name):
            t = T(name)
            behavior.extend([RequestCreate(t), Create(t)])
            return t

        def ceremony(parent, comp, operation, value):
            access = parent.child(comp)
            system.register_access(access, Access(X, operation))
            behavior.extend(
                [
                    RequestCreate(access),
                    Create(access),
                    RequestCommit(access, value),
                    Commit(access),
                    ReportCommit(access, value),
                ]
            )

        def commit(t):
            behavior.extend(
                [RequestCommit(t, "done"), Commit(t), ReportCommit(t, "done")]
            )

        t0, t1 = top("t0"), top("t1")
        ceremony(t1, "w", WriteOp(9), OK)   # high-ts writer goes first
        commit(t1)
        ceremony(t0, "r", ReadOp(), 0)      # low-ts reader reads OLD version
        commit(t0)
        case = tuple(behavior)
        certificate = certify(case, system)
        assert not certificate.certified      # event-order ARV fails
        assert oracle_serially_correct(case, system)  # but ts-order works
