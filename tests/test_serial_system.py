"""Tests for the composed serial system and behavior enumeration."""

import pytest

from repro import (
    Commit,
    ObjectName,
    ReadOp,
    RequestCommit,
    RWSpec,
    certify,
    enumerate_serial_behaviors,
    make_serial_system,
    serial_projection,
    validate_serial_behavior,
)
from repro.core.names import ROOT, TransactionName
from repro.serial.system import serial_object_for
from repro.sim.programs import (
    TransactionProgram,
    par,
    read,
    seq,
    sub,
    system_type_for,
    write,
)
from repro.spec.builtin import CounterInc, CounterType

from conftest import T


X = ObjectName("x")


def tiny_system(sequential=False):
    t1 = seq(write(X, 1, "w"), result="one")
    t2 = seq(read(X, "r"), result="two")
    root = TransactionProgram((sub(t1, "t1"), sub(t2, "t2")), sequential=sequential)
    programs = {ROOT: root}
    system_type = system_type_for({X: RWSpec(initial=0)}, programs)
    return system_type, programs


class TestSerialObjectFactory:
    def test_rw_spec_builds_rw_object(self):
        from repro import SerialRWObject

        system_type, _ = tiny_system()
        assert isinstance(serial_object_for(X, system_type), SerialRWObject)

    def test_datatype_builds_typed_object(self):
        from repro import SerialTypedObject

        programs = {ROOT: TransactionProgram(())}
        system_type = system_type_for({X: CounterType()}, programs)
        assert isinstance(serial_object_for(X, system_type), SerialTypedObject)

    def test_unknown_spec_rejected(self):
        from repro import SystemType

        system_type = SystemType({X: object()})
        with pytest.raises(TypeError):
            serial_object_for(X, system_type)


class TestEnumeration:
    def test_all_enumerated_behaviors_validate(self):
        system_type, programs = tiny_system()
        system = make_serial_system(system_type, programs)
        count = 0
        for behavior in enumerate_serial_behaviors(system, max_steps=10,
                                                   max_behaviors=400):
            count += 1
            assert validate_serial_behavior(behavior, system_type) == [], behavior
        assert count > 10

    def test_complete_behaviors_run_both_transactions(self):
        system_type, programs = tiny_system()
        system = make_serial_system(system_type, programs)
        complete = [
            behavior
            for behavior in enumerate_serial_behaviors(
                system, max_steps=40, max_behaviors=30_000
            )
            if Commit(T("t1")) in behavior and Commit(T("t2")) in behavior
        ]
        assert complete
        # in every complete serial behavior, siblings ran without overlap:
        # the read either sees 0 (t2 first) or 1 (t1 first)
        values = set()
        for behavior in complete:
            for action in behavior:
                if (
                    isinstance(action, RequestCommit)
                    and action.transaction == T("t2", "r")
                ):
                    values.add(action.value)
        assert values <= {0, 1}
        assert len(values) == 2  # both serial orders occur in the enumeration

    def test_serial_behaviors_are_certified(self):
        system_type, programs = tiny_system()
        system = make_serial_system(system_type, programs)
        checked = 0
        for behavior in enumerate_serial_behaviors(
            system, max_steps=24, max_behaviors=3000
        ):
            if len(behavior) % 6 == 0:  # sample some prefixes
                certificate = certify(behavior, system_type)
                assert certificate.certified, certificate.explain()
                checked += 1
        assert checked > 5

    def test_enumeration_yields_prefix_closed_set(self):
        system_type, programs = tiny_system()
        system = make_serial_system(system_type, programs)
        behaviors = set(
            enumerate_serial_behaviors(system, max_steps=8, max_behaviors=2000)
        )
        for behavior in behaviors:
            if behavior:
                assert behavior[:-1] in behaviors
