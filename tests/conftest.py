"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import pytest

from repro import (
    OK,
    Abort,
    Access,
    Commit,
    Create,
    ObjectName,
    ReadOp,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    RWSpec,
    SystemType,
    TransactionName,
    WriteOp,
)


def T(*path: str) -> TransactionName:
    """Shorthand transaction name constructor."""
    return TransactionName(tuple(path))


def rw_system(*objects: str, initial: Any = 0) -> SystemType:
    """A system type with the given read/write objects."""
    return SystemType({ObjectName(name): RWSpec(initial=initial) for name in objects})


class BehaviorBuilder:
    """Builds hand-crafted simple behaviors with the full action ceremony.

    Each helper appends the appropriate serial actions and registers
    access names in the system type as it goes, so that tests can write
    scenarios at the level the paper discusses them.
    """

    def __init__(self, system_type: SystemType) -> None:
        self.system_type = system_type
        self.actions: List[Any] = []

    # -- raw -------------------------------------------------------------

    def emit(self, *actions: Any) -> "BehaviorBuilder":
        self.actions.extend(actions)
        return self

    # -- transactions ------------------------------------------------------

    def begin(self, transaction: TransactionName) -> TransactionName:
        """REQUEST_CREATE + CREATE for a (non-access) transaction."""
        self.actions += [RequestCreate(transaction), Create(transaction)]
        return transaction

    def begin_top(self, name: str) -> TransactionName:
        return self.begin(T(name))

    def commit(self, transaction: TransactionName, value: Any = "done") -> None:
        """REQUEST_COMMIT + COMMIT + REPORT_COMMIT."""
        self.actions += [
            RequestCommit(transaction, value),
            Commit(transaction),
            ReportCommit(transaction, value),
        ]

    def abort(self, transaction: TransactionName, report: bool = True) -> None:
        self.actions.append(Abort(transaction))
        if report:
            self.actions.append(ReportAbort(transaction))

    # -- accesses ---------------------------------------------------------

    def access(
        self,
        parent: TransactionName,
        component: str,
        obj: str,
        operation: Any,
        value: Any,
        commit: bool = True,
    ) -> TransactionName:
        """The full access ceremony; with ``commit=False`` stops after the
        REQUEST_COMMIT (access invoked and answered but not yet committed)."""
        access = parent.child(component)
        self.system_type.register_access(access, Access(ObjectName(obj), operation))
        self.actions += [
            RequestCreate(access),
            Create(access),
            RequestCommit(access, value),
        ]
        if commit:
            self.actions += [Commit(access), ReportCommit(access, value)]
        return access

    def read(
        self, parent: TransactionName, component: str, obj: str, value: Any, **kw: Any
    ) -> TransactionName:
        return self.access(parent, component, obj, ReadOp(), value, **kw)

    def write(
        self, parent: TransactionName, component: str, obj: str, data: Any, **kw: Any
    ) -> TransactionName:
        return self.access(parent, component, obj, WriteOp(data), OK, **kw)

    def build(self) -> Tuple[Any, ...]:
        return tuple(self.actions)


@pytest.fixture
def xy_system() -> SystemType:
    return rw_system("x", "y")


@pytest.fixture
def builder(xy_system: SystemType) -> BehaviorBuilder:
    return BehaviorBuilder(xy_system)


# The canonical anomaly behaviors live in the public scenario library
# (repro.scenarios); these wrappers keep the historic two-value signature
# the tests use.


def _scenario(name: str) -> Tuple[Tuple[Any, ...], SystemType]:
    from repro.scenarios import build_scenario

    behavior, system_type, _ = build_scenario(name)
    return behavior, system_type


def lost_update_behavior() -> Tuple[Tuple[Any, ...], SystemType]:
    """Two committed top-level txns racing read-then-write on x: SG cycle."""
    return _scenario("lost-update")


def blind_write_cycle_behavior() -> Tuple[Tuple[Any, ...], SystemType]:
    """Blind writes in opposite orders on x and y: SG cyclic yet serially
    correct (the sufficiency-not-necessity example, experiment E4)."""
    return _scenario("blind-writes")


def dirty_read_behavior() -> Tuple[Tuple[Any, ...], SystemType]:
    """A committed reader observed an aborted writer's value: ARV violation."""
    return _scenario("dirty-read")


def serial_two_txn_behavior() -> Tuple[Tuple[Any, ...], SystemType]:
    """A genuinely serial two-transaction behavior (always certifiable)."""
    return _scenario("serial")
