"""Tests for the classical (flat) baseline: histories, SGT, strict 2PL."""

import random

from repro.classical.histories import (
    FlatAbort,
    FlatCommit,
    FlatRead,
    FlatWrite,
    committed_projection,
    history_to_nested_behavior,
    random_history,
)
from repro.classical.sgt import (
    classical_edges,
    classical_serialization_graph,
    is_conflict_serializable,
)
from repro.classical.two_phase_locking import FlatScript, run_strict_2pl


class TestHistories:
    def test_committed_projection(self):
        history = (
            FlatWrite("T1", "x", 1),
            FlatWrite("T2", "x", 2),
            FlatCommit("T1"),
            FlatAbort("T2"),
        )
        assert committed_projection(history) == (FlatWrite("T1", "x", 1),)

    def test_random_history_deterministic(self):
        assert random_history(3, 2, 4, seed=7) == random_history(3, 2, 4, seed=7)

    def test_random_history_step_counts(self):
        history = random_history(3, 2, 4, seed=1)
        data_steps = [s for s in history if isinstance(s, (FlatRead, FlatWrite))]
        assert len(data_steps) == 12
        commits = [s for s in history if isinstance(s, FlatCommit)]
        assert len(commits) == 3


class TestClassicalSGT:
    def test_serializable_history(self):
        history = (
            FlatWrite("T1", "x", 1),
            FlatCommit("T1"),
            FlatRead("T2", "x"),
            FlatCommit("T2"),
        )
        assert is_conflict_serializable(history)
        assert classical_edges(history) == {("T1", "T2")}

    def test_nonserializable_lost_update(self):
        history = (
            FlatRead("T1", "x"),
            FlatRead("T2", "x"),
            FlatWrite("T1", "x", 1),
            FlatWrite("T2", "x", 2),
            FlatCommit("T1"),
            FlatCommit("T2"),
        )
        assert not is_conflict_serializable(history)

    def test_reads_do_not_conflict(self):
        history = (
            FlatRead("T1", "x"),
            FlatRead("T2", "x"),
            FlatCommit("T1"),
            FlatCommit("T2"),
        )
        assert classical_edges(history) == set()

    def test_aborted_transactions_excluded(self):
        history = (
            FlatWrite("T1", "x", 1),
            FlatWrite("T2", "x", 2),
            FlatAbort("T1"),
            FlatCommit("T2"),
        )
        assert classical_edges(history) == set()
        assert is_conflict_serializable(history)


class TestStrict2PL:
    def test_output_always_serializable(self):
        rng = random.Random(0)
        for trial in range(10):
            scripts = [
                FlatScript.random(f"T{i}", objects=3, length=4, rng=rng)
                for i in range(4)
            ]
            history, aborts = run_strict_2pl(scripts, seed=trial)
            assert is_conflict_serializable(history)

    def test_all_transactions_eventually_commit(self):
        rng = random.Random(5)
        scripts = [
            FlatScript.random(f"T{i}", objects=2, length=3, rng=rng)
            for i in range(3)
        ]
        history, _ = run_strict_2pl(scripts, seed=5)
        commits = {s.txn for s in history if isinstance(s, FlatCommit)}
        # every original transaction commits under its own or a retry name
        for i in range(3):
            assert any(name.startswith(f"T{i}") for name in commits)

    def test_deadlock_resolution(self):
        # classic deadlock: T1 locks x then wants y; T2 locks y then wants x
        scripts = [
            FlatScript("T1", [("w", "x", 1), ("w", "y", 1)]),
            FlatScript("T2", [("w", "y", 2), ("w", "x", 2)]),
        ]
        # try several seeds; at least one interleaving must deadlock and
        # still terminate with both transactions (or retries) committed
        for seed in range(10):
            history, aborts = run_strict_2pl(scripts, seed=seed)
            assert is_conflict_serializable(history)
            commits = {s.txn for s in history if isinstance(s, FlatCommit)}
            assert any(n.startswith("T1") for n in commits)
            assert any(n.startswith("T2") for n in commits)


class TestNestedTranslation:
    def test_translation_registers_accesses(self):
        history = (
            FlatWrite("T1", "x", 1),
            FlatCommit("T1"),
            FlatRead("T2", "x"),
            FlatCommit("T2"),
        )
        behavior, system_type = history_to_nested_behavior(history)
        assert len(system_type.all_accesses()) == 2
        from repro import check_simple_behavior, serial_projection

        assert check_simple_behavior(serial_projection(behavior), system_type) == []

    def test_translation_read_values_follow_update_in_place(self):
        from repro import RequestCommit

        history = (
            FlatWrite("T1", "x", 42),
            FlatCommit("T1"),
            FlatRead("T2", "x"),
            FlatCommit("T2"),
        )
        behavior, system_type = history_to_nested_behavior(history)
        reads = [
            a
            for a in behavior
            if isinstance(a, RequestCommit)
            and system_type.is_access(a.transaction)
            and a.transaction.path[0] == "T2"
        ]
        assert reads[0].value == 42
