"""Tests for read/write semantics: final-value operators and RWSpec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import OK, ObjectName, ReadOp, RWSpec, WriteOp
from repro.core.rw_semantics import (
    clean_final_value,
    clean_last_write,
    final_value,
    is_read_access,
    is_write_access,
    last_write,
    write_sequence,
)

from conftest import BehaviorBuilder, T, rw_system


class TestAccessKinds:
    def test_kinds(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        reader = b.read(t, "r", "x", 0)
        writer = b.write(t, "w", "x", 1)
        assert is_read_access(reader, system)
        assert not is_write_access(reader, system)
        assert is_write_access(writer, system)
        assert not is_read_access(T("t"), system)  # non-access


class TestFinalValue:
    def _behavior(self):
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w1", "x", 1)
        b.write(t, "w2", "x", 2)
        b.write(t, "wy", "y", 9)
        b.read(t, "r", "x", 2)
        return b.build(), system, t

    def test_write_sequence_orders_and_filters(self):
        behavior, system, t = self._behavior()
        writes = write_sequence(behavior, ObjectName("x"), system)
        assert [w.transaction for w in writes] == [t.child("w1"), t.child("w2")]

    def test_last_write(self):
        behavior, system, t = self._behavior()
        assert last_write(behavior, ObjectName("x"), system) == t.child("w2")
        assert last_write((), ObjectName("x"), system) is None

    def test_final_value(self):
        behavior, system, _ = self._behavior()
        assert final_value(behavior, ObjectName("x"), system) == 2
        assert final_value(behavior, ObjectName("y"), system) == 9
        assert final_value((), ObjectName("x"), system) == 0  # initial

    def test_clean_variants_exclude_orphans(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 5)
        b.write(t2, "w", "x", 7)
        b.abort(t2)
        behavior = b.build()
        assert final_value(behavior, ObjectName("x"), system) == 7
        assert clean_final_value(behavior, ObjectName("x"), system) == 5
        assert clean_last_write(behavior, ObjectName("x"), system) == t1.child("w")

    def test_clean_final_value_initial_when_all_aborted(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 5)
        b.abort(t1)
        assert clean_final_value(b.build(), ObjectName("x"), system) == 0


class TestRWSpec:
    def test_replay_legal(self):
        spec = RWSpec(initial=0)
        pairs = ((WriteOp(3), OK), (ReadOp(), 3), (WriteOp(4), OK), (ReadOp(), 4))
        assert spec.replay(pairs) == 4
        assert spec.is_legal(pairs)

    def test_read_must_return_latest(self):
        spec = RWSpec(initial=0)
        assert not spec.is_legal(((WriteOp(3), OK), (ReadOp(), 0)))
        assert spec.is_legal(((ReadOp(), 0),))

    def test_write_must_return_ok(self):
        spec = RWSpec(initial=0)
        assert not spec.is_legal(((WriteOp(3), "nope"),))

    def test_result_of(self):
        spec = RWSpec(initial=0)
        assert spec.result_of((), ReadOp()) == 0
        assert spec.result_of(((WriteOp(8), OK),), ReadOp()) == 8
        assert spec.result_of((), WriteOp(1)) == OK

    def test_rejects_foreign_ops(self):
        spec = RWSpec(initial=0)
        with pytest.raises(TypeError):
            spec.replay((("bogus", 1),))

    def test_conflicts_matrix(self):
        spec = RWSpec()
        read, write = ReadOp(), WriteOp(1)
        assert not spec.conflicts(read, 0, read, 0)
        assert spec.conflicts(read, 0, write, OK)
        assert spec.conflicts(write, OK, read, 0)
        assert spec.conflicts(write, OK, write, OK)

    @given(st.lists(st.integers(0, 5), max_size=8))
    def test_lemma3_final_value_characterises_state(self, writes):
        """Lemma 3: the replayed state equals final-value of the sequence."""
        spec = RWSpec(initial=0)
        pairs = tuple((WriteOp(v), OK) for v in writes)
        expected = writes[-1] if writes else 0
        assert spec.replay(pairs) == expected

    @given(st.lists(st.integers(0, 3), max_size=6), st.integers(0, 3))
    def test_lemma4_extension(self, writes, extra):
        """Lemma 4: the unique legal read value is the final value."""
        spec = RWSpec(initial=0)
        pairs = tuple((WriteOp(v), OK) for v in writes)
        final = writes[-1] if writes else 0
        assert spec.is_legal(pairs + ((ReadOp(), final),))
        if extra != final:
            assert not spec.is_legal(pairs + ((ReadOp(), extra),))
