"""Tests for the completion order — the proof step of Propositions 16/24."""

import pytest

from repro import (
    AbortInjector,
    EagerInformPolicy,
    MossRWLockingObject,
    RandomPolicy,
    ReadUpdateLockingObject,
    UndoLoggingObject,
    CounterKind,
    SetKind,
    WorkloadConfig,
    build_serialization_graph,
    generate_workload,
    make_generic_system,
    run_system,
    serial_projection,
)
from repro.core.completion_order import (
    completion_holds,
    completion_positions,
    edges_respect_completion_order,
)

from conftest import BehaviorBuilder, T, lost_update_behavior, rw_system


class TestRelation:
    def test_positions(self):
        from repro import Abort, Commit, RequestCreate

        behavior = (
            RequestCreate(T("a")),
            RequestCreate(T("b")),
            Abort(T("a")),
            Commit(T("b")),
        )
        positions = completion_positions(behavior)
        assert positions[T("a")] == 2
        assert positions[T("b")] == 3

    def test_holds_semantics(self):
        positions = {T("a"): 1, T("b"): 5}
        assert completion_holds(positions, T("a"), T("b"))
        assert not completion_holds(positions, T("b"), T("a"))
        # completed-vs-never-completed
        assert completion_holds(positions, T("a"), T("c"))
        assert not completion_holds(positions, T("c"), T("a"))
        # non-siblings never related
        assert not completion_holds(positions, T("a"), T("a", "x"))

    def test_cycle_violates_completion_order(self):
        behavior, system_type = lost_update_behavior()
        graph = build_serialization_graph(behavior, system_type)
        offending = edges_respect_completion_order(behavior, graph)
        assert offending  # a cyclic graph cannot sit inside a partial order


def _run(factory, seed, kind=None, abort_rate=0.0):
    config_kw = dict(seed=seed, top_level=5, objects=3, max_depth=2)
    if kind is not None:
        config_kw["kind"] = kind
    system_type, programs = generate_workload(WorkloadConfig(**config_kw))
    system = make_generic_system(system_type, programs, factory)
    policy = (
        AbortInjector(RandomPolicy(seed), abort_rate=abort_rate, seed=seed)
        if abort_rate
        else EagerInformPolicy(seed=seed)
    )
    result = run_system(
        system, policy, system_type, max_steps=8000, resolve_deadlocks=True
    )
    return serial_projection(result.behavior), system_type


class TestProposition16:
    @pytest.mark.parametrize("seed", range(5))
    def test_moss_edges_in_completion_order(self, seed):
        serial, system_type = _run(MossRWLockingObject, seed)
        graph = build_serialization_graph(serial, system_type)
        assert edges_respect_completion_order(serial, graph) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_moss_with_aborts(self, seed):
        serial, system_type = _run(MossRWLockingObject, seed, abort_rate=0.2)
        graph = build_serialization_graph(serial, system_type)
        assert edges_respect_completion_order(serial, graph) == []


class TestProposition24:
    @pytest.mark.parametrize("seed", range(5))
    def test_undo_edges_in_completion_order(self, seed):
        serial, system_type = _run(UndoLoggingObject, seed, kind=CounterKind())
        graph = build_serialization_graph(serial, system_type)
        assert edges_respect_completion_order(serial, graph) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_read_update_edges_in_completion_order(self, seed):
        # the general locking automaton satisfies the same argument
        serial, system_type = _run(ReadUpdateLockingObject, seed, kind=SetKind())
        graph = build_serialization_graph(serial, system_type)
        assert edges_respect_completion_order(serial, graph) == []
