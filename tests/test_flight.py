"""Tests for the violation flight recorder and its certifier wiring."""

import asyncio

import pytest

from repro import OnlineCertifier, certify
from repro.obs import FlightRecorder, MetricsRegistry, load_postmortems
from repro.stream import StreamConfig, certify_stream

from conftest import BehaviorBuilder, rw_system
from test_online import random_contended_behavior


def rejected_case(max_seed=100):
    """The first random contended behavior whose certification latches
    an SG cycle."""
    for seed in range(max_seed):
        behavior, system = random_contended_behavior(seed)
        certificate = certify(behavior, system, construct_witness=False)
        if not certificate.certified and certificate.cycle is not None:
            return behavior, system
    raise AssertionError("no rejected seed found")


def arv_case():
    """A stale read: ARV violation without any SG cycle."""
    system = rw_system("x")
    b = BehaviorBuilder(system)
    t1 = b.begin_top("t1")
    b.write(t1, "w", "x", 7)
    b.commit(t1)
    t2 = b.begin_top("t2")
    b.read(t2, "r", "x", 0)
    b.commit(t2)
    return b.build(), system


class TestRecorder:
    def test_window_is_bounded_and_oldest_first(self, tmp_path):
        recorder = FlightRecorder(tmp_path / "pm.jsonl", capacity=3)
        for position in range(5):
            recorder.record(position, f"a{position}")
        assert len(recorder) == 3
        assert recorder.window() == ((2, "a2"), (3, "a3"), (4, "a4"))

    def test_dump_record_shape(self, tmp_path):
        path = tmp_path / "pm.jsonl"
        registry = MetricsRegistry()
        recorder = FlightRecorder(path, metrics=registry)
        recorder.record(0, "alpha")
        recorder.record(1, "beta")
        assert recorder.dump(
            "cycle",
            session="s1",
            cycle=("T0", ["T0/a", "T0/b", "T0/a"]),
            metrics_snapshot=registry.snapshot(),
            context={"note": "test"},
        )
        (record,) = load_postmortems(path)
        assert record["reason"] == "cycle"
        assert record["session"] == "s1"
        assert [entry["action"] for entry in record["window"]] == [
            "alpha", "beta",
        ]
        assert [entry["position"] for entry in record["window"]] == [0, 1]
        assert record["cycle"] == {
            "parent": "T0",
            "nodes": ["T0/a", "T0/b", "T0/a"],
        }
        assert record["context"] == {"note": "test"}
        assert "counters" in record["metrics"]
        assert registry.snapshot()["counters"]["online.flight.dumps"] == 1

    def test_dump_budget_enforced(self, tmp_path):
        path = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(path, max_dumps=2)
        assert recorder.dump("cycle")
        assert recorder.dump("cycle")
        assert not recorder.dump("cycle")
        assert len(load_postmortems(path)) == 2
        assert recorder.dumps == 2

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "pm.jsonl", capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path / "pm.jsonl", max_dumps=0)


class TestCertifierIntegration:
    def test_cycle_latch_dumps_postmortem(self, tmp_path):
        behavior, system = rejected_case()
        path = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(path)
        certifier = OnlineCertifier(system, flight=recorder, session="audit")
        verdict = certifier.feed_all(behavior)
        assert not verdict.certified and verdict.cycle is not None
        records = load_postmortems(path)
        cycle_records = [r for r in records if r["reason"] == "cycle"]
        assert len(cycle_records) == 1  # the latch is monotone: one dump
        record = cycle_records[0]
        assert record["session"] == "audit"
        parent, nodes = verdict.cycle
        assert record["cycle"] == {
            "parent": str(parent),
            "nodes": [str(node) for node in nodes],
        }
        assert record["window"], "the action window must not be empty"
        # the window holds consecutive recent actions; each entry matches
        # the behavior at its recorded stream position
        positions = [entry["position"] for entry in record["window"]]
        assert positions == list(range(positions[0], positions[0] + len(positions)))
        for entry in record["window"]:
            assert entry["action"] == str(behavior[entry["position"]])

    def test_arv_violation_dumps_postmortem(self, tmp_path):
        behavior, system = arv_case()
        path = tmp_path / "pm.jsonl"
        certifier = OnlineCertifier(
            system, flight=FlightRecorder(path), session="stale"
        )
        verdict = certifier.feed_all(behavior)
        assert verdict.arv_violations and verdict.cycle is None
        records = load_postmortems(path)
        assert records and records[0]["reason"] == "arv"
        assert records[0]["cycle"] is None
        context = records[0]["context"]
        assert context["object"] == "x"
        assert context["illegal"]  # names the newly illegal transactions

    def test_verdict_unchanged_by_flight_recorder(self, tmp_path):
        for case in (rejected_case(), arv_case()):
            behavior, system = case
            plain = OnlineCertifier(system).feed_all(behavior)
            recorded = OnlineCertifier(
                system, flight=FlightRecorder(tmp_path / "v.jsonl")
            ).feed_all(behavior)
            assert plain == recorded

    def test_no_dump_on_certified_behavior(self, tmp_path):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        b.commit(t)
        path = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(path)
        verdict = OnlineCertifier(system, flight=recorder).feed_all(b.build())
        assert verdict.certified
        assert recorder.dumps == 0
        assert not path.exists()


class TestStreamIntegration:
    def test_flight_recorder_through_certify_stream(self, tmp_path):
        behavior, system = rejected_case()
        path = tmp_path / "pm.jsonl"
        recorder = FlightRecorder(path)
        result = asyncio.run(
            certify_stream(
                "flight",
                system,
                behavior,
                config=StreamConfig(compaction=False),
                flight=recorder,
            )
        )
        assert not result.verdict.certified
        records = load_postmortems(path)
        assert any(record["reason"] == "cycle" for record in records)
        assert all(record["session"] == "flight" for record in records)
