"""Tests for ``repro.analysis``: lint rules, spec checker, drift, CLI.

The known-bad corpus lives in ``tests/analysis_fixtures/``; every rule
is exercised against it, and the whole engine is asserted *clean* on
``src/repro`` (the acceptance bar for ``make lint``).
"""

import importlib.util
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    check_all_builtin_specs,
    check_all_drift,
    lint_paths,
)
from repro.analysis.drift import (
    check_benchmark_drift,
    check_metrics_drift,
    documented_metric_names,
    source_metric_names,
)
from repro.analysis.linter import LintContext, Finding
from repro.analysis.rules import all_rules, rule_by_id
from repro.analysis.spec_check import SpecDomain, builtin_spec_domains, check_spec
from repro.cli import main
from repro.spec.builtin import CounterInc, CounterRead

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "analysis_fixtures"
REPO_ROOT = TESTS_DIR.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def lint_fixtures(*rule_ids, tests_root=TESTS_DIR):
    """Lint the fixture corpus with the given rules (default tests root)."""
    rules = [rule_by_id(rule_id) for rule_id in rule_ids]
    return lint_paths(FIXTURES, rules, tests_root=tests_root)


def _load_broken_specs():
    spec = importlib.util.spec_from_file_location(
        "analysis_fixtures.broken_spec", FIXTURES / "broken_spec.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLintFramework:
    def test_engine_is_clean_on_the_library_itself(self):
        findings = lint_paths(SRC_ROOT, all_rules(), tests_root=TESTS_DIR)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_unparsable_module_reports_e000(self):
        findings = lint_fixtures("R002")
        e000 = [f for f in findings if f.rule == "E000"]
        assert len(e000) == 1
        assert "bad_syntax.py" in e000[0].path
        assert "cannot parse" in e000[0].message

    def test_per_line_suppression(self):
        findings = lint_fixtures("R002")
        suppressed_line = next(
            number
            for number, text in enumerate(
                (FIXTURES / "bad_hygiene.py").read_text().splitlines(), start=1
            )
            if "allow-R002" in text
        )
        assert not any(
            f.line == suppressed_line and "bad_hygiene" in f.path
            for f in findings
        )

    def test_skip_file_opts_a_module_out(self, tmp_path):
        bad = tmp_path / "skipped.py"
        bad.write_text('# lint: skip-file\nprint("never linted")\n')
        assert lint_paths(bad, [rule_by_id("R002")]) == []

    def test_finding_rendering(self):
        finding = Finding("R999", "pkg/mod.py", 7, "something is off")
        assert str(finding) == "pkg/mod.py:7: R999 something is off"
        assert finding.to_dict() == {
            "rule": "R999",
            "path": "pkg/mod.py",
            "line": 7,
            "message": "something is off",
        }

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            rule_by_id("R042")


class TestR001ABFlags:
    def test_dead_flag_is_flagged_and_forwarding_is_not(self):
        findings = [
            f
            for f in lint_fixtures("R001")
            if f.rule == "R001" and "bad_flags" in f.path
        ]
        assert len(findings) == 1
        assert "certify_things" in findings[0].message
        assert "never consulted" in findings[0].message

    def test_missing_test_coverage_is_flagged(self, tmp_path):
        # An empty tests root: neither value of the flag is exercised.
        findings = [
            f
            for f in lint_fixtures("R001", tests_root=tmp_path)
            if "not exercised" in f.message
        ]
        assert findings, "expected a coverage finding with no tests"
        assert any("indexed=False and indexed=True" in f.message for f in findings)

    def test_real_suite_covers_both_values_of_both_flags(self):
        context = LintContext(root=SRC_ROOT, tests_root=TESTS_DIR)
        coverage = context.test_flag_values(("indexed", "incremental"))
        assert coverage["indexed"] == {True, False}
        # incremental=True only flows through a parametrized fixture;
        # the scanner must resolve fixture/parametrize bindings.
        assert coverage["incremental"] == {True, False}

    def test_robustness_validate_flag_is_an_ab_flag(self):
        # the static-only vs validated lanes of analyze_robustness are
        # under the same both-ways discipline as the engine flags
        from repro.analysis.rules.ab_flags import AB_FLAGS

        assert "validate" in AB_FLAGS
        context = LintContext(root=SRC_ROOT, tests_root=TESTS_DIR)
        coverage = context.test_flag_values(("validate",))
        assert coverage["validate"] == {True, False}


class TestR005ProgramRegistry:
    def test_hand_built_registry_is_flagged(self):
        findings = [
            f
            for f in lint_fixtures("R005")
            if f.rule == "R005" and "bad_programs" in f.path
        ]
        messages = [f.message for f in findings]
        assert sum("register_access" in m for m in messages) == 1
        assert sum("never routes" in m for m in messages) == 1

    def test_program_building_modules_are_clean(self):
        # the modules the rule exists for: generators and the catalogue
        rule = rule_by_id("R005")
        for module in ("sim/workload.py", "scenarios.py", "sim/programs.py"):
            findings = lint_paths(
                SRC_ROOT / module, [rule], tests_root=TESTS_DIR
            )
            assert findings == [], "\n".join(str(f) for f in findings)

    def test_module_with_registry_helper_passes(self, tmp_path):
        good = tmp_path / "good_programs.py"
        good.write_text(
            "from repro.sim.programs import seq, read, system_type_for\n"
            "def build(x):\n"
            "    program = seq(read(x))\n"
            "    return system_type_for({}, {}), program\n"
        )
        assert lint_paths(good, [rule_by_id("R005")]) == []


class TestR002Hygiene:
    def test_expected_findings(self):
        findings = [
            f
            for f in lint_fixtures("R002")
            if f.rule == "R002" and "bad_hygiene" in f.path
        ]
        messages = [f.message for f in findings]
        assert sum("print()" in m for m in messages) == 1
        assert sum("bare 'except:'" in m for m in messages) == 1
        assert sum("mutable default" in m for m in messages) == 3

    def test_cli_modules_may_print(self, tmp_path):
        cli = tmp_path / "cli.py"
        cli.write_text('print("user-facing output")\n')
        assert lint_paths(cli, [rule_by_id("R002")]) == []


class TestR003Quadratic:
    def test_expected_findings_and_suppressions(self):
        findings = [
            f
            for f in lint_fixtures("R003")
            if f.rule == "R003" and "bad_quadratic" in f.path
        ]
        messages = [f.message for f in findings]
        assert sum("membership test" in m for m in messages) == 2
        assert sum(".index()" in m for m in messages) == 1

    def test_only_hot_path_modules_are_checked(self, tmp_path):
        cold = tmp_path / "util" / "scan.py"
        cold.parent.mkdir()
        cold.write_text(
            textwrap.dedent(
                """
                def f(events, names):
                    out = []
                    for event in events:
                        if event in list(names):
                            out.append(event)
                    return out
                """
            )
        )
        assert lint_paths(cold, [rule_by_id("R003")]) == []
        hot = tmp_path / "core" / "scan.py"
        hot.parent.mkdir()
        hot.write_text(cold.read_text())
        assert len(lint_paths(hot, [rule_by_id("R003")])) == 1


class TestR004Automaton:
    def test_expected_findings(self):
        findings = [
            f
            for f in lint_fixtures("R004")
            if f.rule == "R004" and "bad_automaton" in f.path
        ]
        messages = [f.message for f in findings]
        assert sum("without checking" in m for m in messages) == 1
        assert sum("mutates parameter" in m for m in messages) == 2

    def test_well_behaved_and_abstract_handlers_pass(self):
        source = (FIXTURES / "bad_automaton.py").read_text().splitlines()
        findings = [
            f
            for f in lint_fixtures("R004")
            if f.rule == "R004" and "bad_automaton" in f.path
        ]
        bad_region = source.index("class WellBehavedAutomaton:") + 1
        assert all(f.line <= bad_region for f in findings)


class TestSpecSoundness:
    def test_every_builtin_spec_certifies(self):
        reports = check_all_builtin_specs()
        names = {report.spec for report in reports}
        assert {"register", "counter", "set", "bank-account", "queue",
                "map", "rw"} <= names
        for report in reports:
            assert report.ok, [str(p) for p in report.problems]
            assert report.pairs > 0 and report.prefixes > 0

    def test_read_read_fast_path_assumption_holds_for_every_spec(self):
        # _conflict_pairs_indexed never consults the spec for read/read
        # pairs; a spec violating the assumption surfaces as
        # 'read_only_conflict'/'read_only_claim'.
        for domain in builtin_spec_domains():
            report = check_spec(domain)
            assert not any(
                p.kind in ("read_only_conflict", "read_only_claim")
                for p in report.problems
            )

    def test_asymmetric_spec_is_rejected_as_s001(self):
        broken = _load_broken_specs()
        report = check_spec(
            SpecDomain(
                "asym",
                broken.AsymmetricSpec(initial=0),
                (CounterInc(1), CounterInc(0), CounterRead()),
            )
        )
        assert not report.ok
        assert {p.rule for p in report.problems} == {"S001"}
        assert all(p.kind == "symmetry" for p in report.problems)

    def test_lying_read_only_spec_is_rejected_as_s002(self):
        broken = _load_broken_specs()
        report = check_spec(
            SpecDomain(
                "lying",
                broken.LyingReadOnlySpec(initial=0),
                (CounterInc(1), CounterInc(0), CounterRead()),
            )
        )
        kinds = {p.kind for p in report.problems}
        assert "read_only_claim" in kinds
        assert "read_only_conflict" in kinds
        assert any(p.rule == "S002" for p in report.problems)

    def test_over_commuting_spec_is_rejected_as_s003(self):
        broken = _load_broken_specs()
        report = check_spec(
            SpecDomain(
                "over",
                broken.OverCommutingSpec(initial=0),
                (CounterInc(1), CounterInc(0), CounterRead()),
            )
        )
        assert not report.ok
        assert {p.rule for p in report.problems} == {"S003"}

    def test_report_serialization(self):
        report = check_spec(builtin_spec_domains()[0])
        payload = report.to_dict()
        assert payload["spec"] == "register"
        assert payload["ok"] is True
        assert payload["problems"] == []


class TestDrift:
    def test_repo_is_in_sync(self):
        problems = check_all_drift(REPO_ROOT)
        assert problems == [], [str(p) for p in problems]

    def test_undocumented_counter_is_detected(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(
            textwrap.dedent(
                """
                def run(metrics, fast):
                    metrics.inc("fake.counter")
                    metrics.inc("fast.path" if fast else "slow.path")
                    metrics.observe(f"span.{run.__name__}", 1.0)
                """
            )
        )
        doc = tmp_path / "docs" / "OBSERVABILITY.md"
        doc.parent.mkdir()
        doc.write_text(
            "## Metric names emitted by the instrumented library\n\n"
            "- `fast.path`, `slow.path`, `span.<name>`, `ghost.metric`.\n"
        )
        problems = check_metrics_drift(src, doc)
        details = [p.detail for p in problems]
        assert any("fake.counter" in d and "emitted" in d for d in details)
        assert any("ghost.metric" in d and "never emitted" in d for d in details)
        assert all(p.rule == "D001" for p in problems)
        assert len(problems) == 2  # fast/slow/span.<name> all match up

    def test_benchmark_references_both_directions(self, tmp_path):
        experiments = tmp_path / "EXPERIMENTS.md"
        experiments.write_text(
            "E1 is reproduced by `benchmarks/bench_present.py` and "
            "E2 by `benchmarks/bench_missing.py`.\n"
        )
        benchmarks = tmp_path / "benchmarks"
        benchmarks.mkdir()
        (benchmarks / "bench_present.py").write_text("")
        (benchmarks / "bench_orphan.py").write_text("")
        problems = check_benchmark_drift(experiments, benchmarks)
        kinds = {(p.rule, p.kind) for p in problems}
        assert kinds == {("D002", "missing_script"), ("D002", "orphan_script")}

    def test_documented_placeholder_tokens_become_prefixes(self, tmp_path):
        doc = tmp_path / "OBS.md"
        doc.write_text(
            "## Metric names emitted by the instrumented library\n"
            "`driver.action.<Kind>` and `exact.name` but not "
            "`repro.module.path`.\n\n## Next section\n`ignored.name`\n"
        )
        exact, prefixes = documented_metric_names(doc)
        assert exact == {"exact.name"}
        assert prefixes == {"driver.action."}

    def test_source_conditional_and_fstring_names(self, tmp_path):
        module = tmp_path / "m.py"
        module.write_text(
            'def f(m, ok, k):\n'
            '    m.inc("a.b" if ok else "a.c")\n'
            '    m.set_gauge(f"dyn.{k}", 1)\n'
        )
        exact, prefixes = source_metric_names(tmp_path)
        assert exact == {"a.b", "a.c"}
        assert prefixes == {"dyn."}


class TestLintCLI:
    def test_clean_repo_exits_zero_with_json(self, capsys):
        code = main(["lint", "--json", "--root", str(REPO_ROOT)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["problems"] == 0
        assert len(payload["spec_reports"]) == len(builtin_spec_domains())

    def test_fixture_corpus_exits_one_with_findings(self, capsys):
        code = main(
            [
                "lint",
                "--json",
                "--rules",
                "R001,R002,R003,R004",
                "--root",
                str(REPO_ROOT),
                str(FIXTURES),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False
        rules = {finding["rule"] for finding in payload["findings"]}
        assert {"R001", "R002", "R003", "R004", "E000"} <= rules
        assert payload["spec_reports"] == []  # engines not selected
        assert payload["drift"] == []

    def test_text_mode_summarises(self, capsys):
        code = main(["lint", "--rules", "spec", "--root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0
        assert "specs certified" in out
        assert "repro lint: clean" in out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        code = main(["lint", "--rules", "R999"])
        assert code == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_path_after_rules_is_treated_as_target(self, capsys):
        # argparse binds the trailing path to --rules; the CLI must
        # reclaim it as a lint target, per the documented invocation.
        bad = FIXTURES / "bad_hygiene.py"
        code = main(
            ["lint", "--json", "--rules", "R002", str(bad),
             "--root", str(REPO_ROOT)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["rule"] for f in payload["findings"]} == {"R002"}
        assert all(f["path"].endswith("bad_hygiene.py")
                   for f in payload["findings"])
