"""Tests for appropriate return values and the current/safe conditions."""

from repro import (
    OK,
    check_appropriate_return_values,
    check_current_and_safe,
    has_appropriate_return_values,
    has_appropriate_return_values_rw,
    is_current,
    is_safe,
    RequestCommit,
)

from conftest import (
    BehaviorBuilder,
    T,
    dirty_read_behavior,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)


def _read_positions(behavior, system):
    from repro.core.rw_semantics import is_read_access

    return [
        i
        for i, action in enumerate(behavior)
        if isinstance(action, RequestCommit)
        and is_read_access(action.transaction, system)
    ]


class TestAppropriateReturnValues:
    def test_serial_behavior_has_arv(self):
        behavior, system = serial_two_txn_behavior()
        assert has_appropriate_return_values(behavior, system)
        assert check_appropriate_return_values(behavior, system) == []

    def test_dirty_read_violates_arv(self):
        behavior, system = dirty_read_behavior()
        violations = check_appropriate_return_values(behavior, system)
        assert violations
        assert violations[0].transaction == T("t2", "r")

    def test_lost_update_has_arv(self):
        # Lost update is an ordering anomaly, not a return-value anomaly:
        # both reads saw the then-current value 0 (the writes come later in
        # the visible projection), so ARV holds and rejection must come
        # from the serialization graph instead.
        behavior, system = lost_update_behavior()
        assert has_appropriate_return_values(behavior, system)
        assert has_appropriate_return_values_rw(behavior, system)

    def test_wrong_write_value_violates_arv(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        from repro import WriteOp

        b.access(t, "w", "x", WriteOp(1), "WRONG")
        b.commit(t)
        assert not has_appropriate_return_values(b.build(), system)

    def test_uncommitted_access_ignored(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.read(t, "r", "x", 999, commit=False)  # wrong value but never visible
        behavior = b.build()
        assert has_appropriate_return_values(behavior, system)


class TestLemma5Agreement:
    def test_rw_and_general_agree_on_samples(self):
        for factory in (
            serial_two_txn_behavior,
            dirty_read_behavior,
            lost_update_behavior,
        ):
            behavior, system = factory()
            assert has_appropriate_return_values(
                behavior, system
            ) == has_appropriate_return_values_rw(behavior, system)


class TestCurrentAndSafe:
    def test_serial_reads_current_and_safe(self):
        behavior, system = serial_two_txn_behavior()
        for position in _read_positions(behavior, system):
            assert is_current(behavior, position, system)
            assert is_safe(behavior, position, system)
        assert check_current_and_safe(behavior, system) == []

    def test_dirty_read_not_safe(self):
        behavior, system = dirty_read_behavior()
        (position,) = _read_positions(behavior, system)
        # Current: it read the latest clean value at the time (the writer
        # had not yet aborted), so current holds but safe fails.
        assert is_current(behavior, position, system)
        assert not is_safe(behavior, position, system)
        violations = check_current_and_safe(behavior, system)
        assert any("not safe" in v.reason for v in violations)

    def test_stale_read_not_current(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 5)
        b.commit(t1)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 0)  # stale: clean final value is 5
        b.commit(t2)
        behavior = b.build()
        (position,) = _read_positions(behavior, system)
        assert not is_current(behavior, position, system)
        violations = check_current_and_safe(behavior, system)
        assert any("not current" in v.reason for v in violations)

    def test_read_after_abort_is_current(self):
        # Reading the pre-abort value after INFORM-style rollback: the
        # clean-final-value machinery must ignore the aborted write.
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 5)
        b.abort(t1)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 0)
        b.commit(t2)
        behavior = b.build()
        (position,) = _read_positions(behavior, system)
        assert is_current(behavior, position, system)
        assert is_safe(behavior, position, system)
        assert check_current_and_safe(behavior, system) == []

    def test_lemma6_implies_arv(self):
        # On a batch of hand-built behaviors: current+safe (plus OK writes)
        # implies appropriate return values, as Lemma 6 states.
        for factory in (serial_two_txn_behavior, lost_update_behavior):
            behavior, system = factory()
            if not check_current_and_safe(behavior, system):
                assert has_appropriate_return_values(behavior, system)
