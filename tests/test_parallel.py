"""Tests for the sharded parallel batch-certification engine (`repro.parallel`).

The headline property, mirrored from the acceptance criteria: the
verdicts of a corpus certification are identical whatever the shard
fan-out — ``jobs=1`` (inline, no pool) and ``jobs=4`` (a real
multiprocessing pool) agree case-for-case on hundreds of randomized
workloads, both certified and rejected ones.
"""

import json

import pytest

from repro import (
    CaseVerdict,
    MetricsRegistry,
    certify,
    certify_corpus,
    record_corpus,
    simulate_corpus,
)
from repro.cli import main
from repro.parallel import _shard

from test_core_properties import random_simple_behavior


@pytest.fixture(scope="module")
def random_corpus():
    """200+ seeded workloads, a mix of certified and rejected behaviors."""
    cases = []
    for seed in range(220):
        behavior, system_type = random_simple_behavior(seed, steps=25)
        cases.append((f"seed-{seed}", behavior, system_type))
    return cases


class TestShardEquivalence:
    def test_jobs1_vs_jobs4_on_200_seeded_workloads(self, random_corpus):
        serial = certify_corpus(random_corpus, jobs=1)
        parallel = certify_corpus(random_corpus, jobs=4)
        assert len(serial) == len(random_corpus) >= 200
        assert serial == parallel
        # the corpus must actually exercise both verdicts
        assert any(verdict.certified for verdict in serial)
        assert any(not verdict.certified for verdict in serial)

    def test_verdicts_match_direct_certify(self, random_corpus):
        sample = random_corpus[:20]
        verdicts = certify_corpus(sample, jobs=2)
        for (label, behavior, system_type), verdict in zip(sample, verdicts):
            certificate = certify(behavior, system_type, construct_witness=False)
            assert verdict.label == label
            assert verdict.certified == certificate.certified
            assert verdict.has_cycle == (certificate.cycle is not None)
            assert verdict.arv_violations == len(certificate.arv_violations)
            assert verdict.events == len(behavior)

    def test_results_are_in_input_order(self, random_corpus):
        sample = random_corpus[:13]
        verdicts = certify_corpus(sample, jobs=3)
        assert [verdict.label for verdict in verdicts] == [
            label for label, _, __ in sample
        ]

    def test_round_robin_shard_preserves_positions(self):
        sharded = _shard(list("abcdefg"), 3)
        assert [len(bucket) for bucket in sharded] == [3, 2, 2]
        flattened = sorted(entry for bucket in sharded for entry in bucket)
        assert flattened == list(enumerate("abcdefg"))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            certify_corpus([], jobs=0)

    def test_empty_corpus(self):
        assert certify_corpus([], jobs=4) == []


class TestMetrics:
    def test_shard_fanout_counters(self, random_corpus):
        registry = MetricsRegistry()
        verdicts = certify_corpus(random_corpus[:10], jobs=4, metrics=registry)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["parallel.jobs"] == 4
        assert snapshot["gauges"]["parallel.shards"] == 4
        assert snapshot["counters"]["parallel.cases"] == 10
        certified = sum(1 for verdict in verdicts if verdict.certified)
        assert snapshot["counters"].get("parallel.certified", 0) == certified
        assert snapshot["counters"].get("parallel.rejected", 0) == 10 - certified


class TestCorpusSimulation:
    def test_simulate_corpus_is_deterministic_and_parallel_invariant(self):
        inline = simulate_corpus(range(3), top_level=3, objects=2, jobs=1)
        pooled = simulate_corpus(range(3), top_level=3, objects=2, jobs=3)
        assert [behavior for behavior, _ in inline] == [
            behavior for behavior, _ in pooled
        ]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            simulate_corpus([0], algorithm="vaporware")

    def test_record_corpus_writes_loadable_cases(self, tmp_path):
        paths = [tmp_path / f"run-{seed}.json" for seed in (5, 6)]
        recorded = record_corpus([5, 6], paths, top_level=3, objects=2, jobs=2)
        assert [path for path, _ in recorded] == [str(path) for path in paths]
        from repro import load_case

        for path, events in recorded:
            behavior, system_type = load_case(json.dumps(json.loads(
                open(path).read()
            )))
            assert len(behavior) == events
            assert certify(behavior, system_type).certified

    def test_record_corpus_output_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            record_corpus([1, 2], [tmp_path / "only-one.json"])


class TestCLI:
    def test_record_runs_then_parallel_audit(self, tmp_path, capsys):
        output = tmp_path / "corpus.json"
        assert main([
            "record", "--runs", "3", "--jobs", "2", "--seed", "20",
            "--transactions", "3", "--objects", "2", "-o", str(output),
        ]) == 0
        files = sorted(tmp_path.glob("corpus-s*.json"))
        assert [path.name for path in files] == [
            "corpus-s20.json", "corpus-s21.json", "corpus-s22.json"
        ]
        metrics = tmp_path / "audit-metrics.json"
        code = main([
            "audit", *[str(path) for path in files],
            "--jobs", "3", "--metrics-json", str(metrics),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3/3 cases certified" in out
        snapshot = json.loads(metrics.read_text())
        assert snapshot["gauges"]["parallel.shards"] == 3

    def test_audit_online_engine_cycle_check_flag(self, tmp_path, capsys):
        output = tmp_path / "run.json"
        assert main([
            "record", "--seed", "3", "--transactions", "3", "--objects", "2",
            "-o", str(output),
        ]) == 0
        for flag in ("incremental", "naive"):
            code = main([
                "audit", str(output), "--engine", "online",
                "--cycle-check", flag,
            ])
            assert code == 0
            assert "CERTIFIED (online engine)" in capsys.readouterr().out

    def test_case_verdict_str(self):
        verdict = CaseVerdict("run.json", False, 2, True, 64)
        text = str(verdict)
        assert "NOT certified" in text and "2 ARV violations" in text
        assert "SG cycle" in text
