"""Tests for view(beta, T, R, X) and the executable Serializability Theorem."""

import pytest

from repro import (
    ROOT,
    ObjectName,
    SiblingOrder,
    build_serialization_graph,
    certify,
    serial_projection,
    serializability_theorem_applies,
    view,
)
from repro.core.actions import Create, RequestCommit

from conftest import (
    BehaviorBuilder,
    T,
    lost_update_behavior,
    rw_system,
    serial_two_txn_behavior,
)


def full_order():
    return SiblingOrder(
        {
            ROOT: [T("t1"), T("t2")],
            T("t1"): [T("t1", "w")],
            T("t2"): [T("t2", "r")],
        }
    )


class TestView:
    def test_view_orders_by_r_trans(self):
        behavior, system = serial_two_txn_behavior()
        result = view(behavior, ROOT, full_order(), ObjectName("x"), system)
        transactions = [
            a.transaction for a in result if isinstance(a, RequestCommit)
        ]
        assert transactions == [T("t1", "w"), T("t2", "r")]

    def test_view_reversed_order(self):
        behavior, system = serial_two_txn_behavior()
        reversed_order = SiblingOrder(
            {
                ROOT: [T("t2"), T("t1")],
                T("t1"): [T("t1", "w")],
                T("t2"): [T("t2", "r")],
            }
        )
        result = view(behavior, ROOT, reversed_order, ObjectName("x"), system)
        transactions = [
            a.transaction for a in result if isinstance(a, RequestCommit)
        ]
        assert transactions == [T("t2", "r"), T("t1", "w")]

    def test_view_excludes_invisible(self):
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1, t2 = b.begin_top("t1"), b.begin_top("t2")
        b.write(t1, "w", "x", 1)
        b.write(t2, "w", "x", 2)
        b.commit(t1)  # t2 never commits
        order = SiblingOrder(
            {ROOT: [T("t1"), T("t2")], T("t1"): [T("t1", "w")]}
        )
        result = view(b.build(), ROOT, order, ObjectName("x"), system)
        transactions = [
            a.transaction for a in result if isinstance(a, RequestCommit)
        ]
        assert transactions == [T("t1", "w")]

    def test_view_requires_total_order(self):
        behavior, system = serial_two_txn_behavior()
        partial = SiblingOrder(
            {T("t1"): [T("t1", "w")], T("t2"): [T("t2", "r")]}
        )
        with pytest.raises(ValueError):
            view(behavior, ROOT, partial, ObjectName("x"), system)

    def test_view_is_performed_sequence(self):
        behavior, system = serial_two_txn_behavior()
        result = view(behavior, ROOT, full_order(), ObjectName("x"), system)
        assert isinstance(result[0], Create)
        assert len(result) % 2 == 0


class TestSerializabilityTheorem:
    def test_applies_with_good_order(self):
        behavior, system = serial_two_txn_behavior()
        assert serializability_theorem_applies(
            behavior, ROOT, full_order(), system
        ) == []

    def test_fails_with_reversed_order(self):
        # reversed order makes the x view illegal (read 7 before the write)
        behavior, system = serial_two_txn_behavior()
        reversed_order = SiblingOrder(
            {
                ROOT: [T("t2"), T("t1")],
                T("t1"): [T("t1", "w")],
                T("t2"): [T("t2", "r")],
            }
        )
        problems = serializability_theorem_applies(
            behavior, ROOT, reversed_order, system
        )
        assert problems  # not suitable (precedes) and view illegal

    def test_lost_update_has_no_good_total_order(self):
        behavior, system = lost_update_behavior()
        from repro import enumerate_sibling_orders

        for order in enumerate_sibling_orders(behavior):
            assert serializability_theorem_applies(
                behavior, ROOT, order, system
            ), "no sibling order should satisfy Theorem 2 for a lost update"

    def test_theorem8_order_satisfies_theorem2(self):
        """The reduction in the proof of Theorem 8: the topologically
        sorted SG order satisfies the Serializability Theorem hypotheses."""
        from repro import (
            EagerInformPolicy,
            MossRWLockingObject,
            WorkloadConfig,
            generate_workload,
            make_generic_system,
            run_system,
        )

        for seed in range(3):
            system_type, programs = generate_workload(
                WorkloadConfig(seed=seed, top_level=3, objects=2)
            )
            system = make_generic_system(system_type, programs, MossRWLockingObject)
            result = run_system(
                system, EagerInformPolicy(seed=seed), system_type,
                resolve_deadlocks=True,
            )
            serial = serial_projection(result.behavior)
            graph = build_serialization_graph(serial, system_type)
            order = graph.to_sibling_order()
            assert serializability_theorem_applies(
                serial, ROOT, order, system_type
            ) == []
