"""Tests for OrphanFreePolicy — limiting wasted orphan work."""

from repro import (
    AbortInjector,
    Create,
    MossRWLockingObject,
    OrphanFreePolicy,
    RandomPolicy,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
)
from repro.core import StatusIndex, serial_projection


def run(seed, orphan_free: bool):
    system_type, programs = generate_workload(
        WorkloadConfig(
            seed=seed, top_level=5, objects=2, max_depth=2,
            subtransaction_probability=0.6,
        )
    )
    system = make_generic_system(system_type, programs, MossRWLockingObject)
    policy = AbortInjector(RandomPolicy(seed), abort_rate=0.25, seed=seed)
    if orphan_free:
        policy = OrphanFreePolicy(policy)
    result = run_system(
        system, policy, system_type, max_steps=6000, resolve_deadlocks=True
    )
    return result, system_type, policy


def orphan_creates(behavior):
    """CREATE events performed on behalf of already-aborted ancestors."""
    aborted = set()
    count = 0
    from repro import Abort

    for action in behavior:
        if isinstance(action, Abort):
            aborted.add(action.transaction)
        elif isinstance(action, Create):
            if any(a.is_ancestor_of(action.transaction) for a in aborted):
                count += 1
    return count


class TestOrphanFreePolicy:
    def test_never_creates_orphans(self):
        for seed in range(6):
            result, system_type, policy = run(seed, orphan_free=True)
            assert orphan_creates(result.behavior) == 0, seed
            certificate = certify(result.behavior, system_type)
            assert certificate.certified, certificate.explain()

    def test_baseline_does_create_orphans(self):
        # without the filter, at least one seed exhibits orphan work
        total = sum(
            orphan_creates(run(seed, orphan_free=False)[0].behavior)
            for seed in range(6)
        )
        assert total > 0

    def test_filter_counter_advances(self):
        filtered = 0
        for seed in range(6):
            _, _, policy = run(seed, orphan_free=True)
            filtered += policy.filtered_out
        assert filtered > 0

    def test_correctness_unaffected_either_way(self):
        # orphans running or not, Theorem 17 holds
        for seed in range(4):
            for orphan_free in (False, True):
                result, system_type, _ = run(seed, orphan_free=orphan_free)
                assert certify(result.behavior, system_type).certified
