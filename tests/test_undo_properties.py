"""Property-based tests for U_X: the invariants behind Lemmas 20-22.

Random well-formed environments drive a single undo logging object over
each built-in data type; after every step we check:

* Lemma 20: the log equals operations(beta) minus descendants of
  transactions whose abort was informed after their operation;
* Lemma 21(2): removing the descendants of any set of not-yet-committed
  transactions from the log leaves a legal behavior of S_X;
* Lemma 22: of two conflicting responses, the earlier issuer is a local
  orphan or locally visible to the later issuer.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Access,
    Create,
    InformAbort,
    InformCommit,
    ObjectName,
    Operation,
    RequestCommit,
    SystemType,
    TransactionName,
    UndoLoggingObject,
)
from repro.locking.visibility import is_local_orphan, is_locally_visible
from repro.spec.builtin import (
    BalanceRead,
    BankAccountType,
    CounterInc,
    CounterRead,
    CounterType,
    Dequeue,
    Enqueue,
    QueueType,
    SetInsert,
    SetMember,
    SetRemove,
    SetType,
)

C = ObjectName("c")


def sample_spec_and_op(rng: random.Random, which: int):
    if which == 0:
        spec = CounterType(initial=0)

        def sample():
            return (
                CounterRead() if rng.random() < 0.3 else CounterInc(rng.randrange(1, 4))
            )

    elif which == 1:
        spec = BankAccountType(initial=20)

        def sample():
            roll = rng.random()
            if roll < 0.25:
                return BalanceRead()
            from repro.spec.builtin import Deposit, Withdraw

            if roll < 0.6:
                return Withdraw(rng.randrange(1, 15))
            return Deposit(rng.randrange(1, 15))

    elif which == 2:
        spec = SetType()

        def sample():
            roll = rng.random()
            element = rng.randrange(3)
            if roll < 0.4:
                return SetInsert(element)
            if roll < 0.7:
                return SetRemove(element)
            return SetMember(element)

    else:
        spec = QueueType()

        def sample():
            if rng.random() < 0.5:
                return Enqueue(rng.randrange(3))
            return Dequeue()

    return spec, sample


def random_run(seed: int, accesses: int = 7, steps: int = 70):
    rng = random.Random(seed)
    spec, sample = sample_spec_and_op(rng, rng.randrange(4))
    system = SystemType({C: spec})
    names = []
    for i in range(accesses):
        path = [f"t{rng.randrange(3)}"]
        if rng.random() < 0.5:
            path.append(f"u{rng.randrange(2)}")
        path.append(f"a{i}")
        name = TransactionName(tuple(path))
        system.register_access(name, Access(C, sample()))
        names.append(name)
    obj = UndoLoggingObject(C, system)
    state = obj.initial_state()
    trace = []
    created, responded, informed_commit, informed_abort = set(), set(), set(), set()

    for _ in range(steps):
        actions = []
        for name in names:
            if name not in created:
                actions.append(Create(name))
        actions.extend(obj.enabled_outputs(state))
        for name in responded | {n.parent for n in informed_commit if n.depth > 1}:
            if name not in informed_commit and name not in informed_abort:
                actions.append(InformCommit(C, name))
        for name in names:
            for ancestor in name.ancestors():
                if (
                    not ancestor.is_root
                    and ancestor not in informed_abort
                    and ancestor not in informed_commit
                ):
                    actions.append(InformAbort(C, ancestor))
        if not actions:
            break
        action = rng.choice(actions)
        state = obj.effect(state, action)
        trace.append(action)
        if isinstance(action, Create):
            created.add(action.transaction)
        elif isinstance(action, RequestCommit):
            responded.add(action.transaction)
        elif isinstance(action, InformCommit):
            informed_commit.add(action.transaction)
        elif isinstance(action, InformAbort):
            informed_abort.add(action.transaction)
    return system, obj, trace


def replay_states(obj, trace):
    state = obj.initial_state()
    yield (), state
    prefix = []
    for action in trace:
        state = obj.effect(state, action)
        prefix.append(action)
        yield tuple(prefix), state


def log_pairs(system, log):
    return tuple(
        (system.access(entry.transaction).op, entry.value) for entry in log
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma20_log_contents(seed):
    system, obj, trace = random_run(seed)
    for prefix, state in replay_states(obj, trace):
        expected = []
        for position, action in enumerate(prefix):
            if not isinstance(action, RequestCommit):
                continue
            aborted_after = any(
                isinstance(later, InformAbort)
                and later.transaction.is_ancestor_of(action.transaction)
                for later in prefix[position + 1 :]
            )
            if not aborted_after:
                expected.append(Operation(action.transaction, action.value))
        assert list(state.operations) == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_log_is_always_legal(seed):
    system, obj, trace = random_run(seed)
    spec = system.spec(C)
    for _, state in replay_states(obj, trace):
        assert spec.is_legal(log_pairs(system, state.operations))


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma21_removing_uncommitted_descendants_keeps_legality(seed):
    system, obj, trace = random_run(seed)
    spec = system.spec(C)
    rng = random.Random(seed + 1)
    for prefix, state in replay_states(obj, trace):
        issuers = {entry.transaction for entry in state.operations}
        uncommitted_roots = {
            ancestor
            for issuer in issuers
            for ancestor in issuer.ancestors()
            if not ancestor.is_root and ancestor not in state.committed
        }
        if not uncommitted_roots:
            continue
        doomed = {t for t in uncommitted_roots if rng.random() < 0.5}
        survivors = tuple(
            entry
            for entry in state.operations
            if not any(t.is_ancestor_of(entry.transaction) for t in doomed)
        )
        assert spec.is_legal(log_pairs(system, survivors)), (doomed, state.operations)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_lemma22_conflicts_orphan_or_locally_visible(seed):
    system, obj, trace = random_run(seed)
    spec = system.spec(C)
    responses = [(i, a) for i, a in enumerate(trace) if isinstance(a, RequestCommit)]
    for i, (pos1, first) in enumerate(responses):
        op1 = system.access(first.transaction).op
        for pos2, second in responses[i + 1 :]:
            op2 = system.access(second.transaction).op
            if not spec.conflicts(op1, first.value, op2, second.value):
                continue
            prefix = trace[:pos2]
            assert is_local_orphan(prefix, C, first.transaction) or is_locally_visible(
                prefix, C, first.transaction, second.transaction
            ), (first, second)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_responses_unique(seed):
    system, obj, trace = random_run(seed)
    seen = set()
    for action in trace:
        if isinstance(action, RequestCommit):
            assert action.transaction not in seen
            seen.add(action.transaction)
