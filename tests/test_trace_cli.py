"""Tests for the ``repro trace`` subcommand and the metrics CLI flags."""

import json

import pytest

from repro.cli import main
from repro.obs import load_jsonl_trace, span_coverage


class TestTraceCommand:
    def test_trace_writes_jsonl_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = main(["trace", "--seed", "7", "--out", str(out)])
        output = capsys.readouterr().out
        assert code == 0
        assert "certify phase coverage" in output
        spans = load_jsonl_trace(out)
        assert spans, "trace file must contain spans"
        names = {span["name"] for span in spans}
        assert {"trace", "simulate", "certify", "certify.build_graph"} <= names
        # every line is a complete span with the documented schema
        for span in spans:
            assert {"name", "span_id", "parent_id", "depth",
                    "start", "end", "dur", "tags"} <= set(span)
            assert span["end"] >= span["start"]
        metrics = json.loads((tmp_path / "t.jsonl.metrics.json").read_text())
        assert metrics["counters"]["certify.runs"] == 1
        assert metrics["counters"]["driver.steps"] > 0
        assert "trace.certify_coverage" in metrics["gauges"]

    def test_trace_coverage_meets_acceptance_bar(self, tmp_path):
        """Spans must cover >= 90% of certify wall time (acceptance check)."""
        out = tmp_path / "t.jsonl"
        assert main(["trace", "--seed", "7", "--out", str(out)]) == 0
        coverage = span_coverage(load_jsonl_trace(out), "certify")
        assert coverage is not None and coverage >= 0.90

    def test_trace_online_flag(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        code = main([
            "trace", "--seed", "5", "--out", str(out),
            "--metrics-json", str(metrics_path), "--online",
        ])
        assert code == 0
        assert "disagree" not in capsys.readouterr().err
        names = {span["name"] for span in load_jsonl_trace(out)}
        assert "online.feed_all" in names and "online.feed" in names
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["online.actions"] > 0


class TestMetricsFlags:
    def test_demo_stats_json(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        code = main(["demo", "--seed", "1", "--stats-json", str(stats_path)])
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert {"steps", "committed", "aborted", "deadlock_aborts",
                "blocked_access_steps", "quiescent",
                "action_counts"} <= set(stats)
        output = capsys.readouterr().out
        # summary line carries the satellite fields
        assert "deadlock_aborts=" in output
        assert "blocked_access_steps=" in output

    def test_demo_metrics_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        code = main(["demo", "--seed", "1", "--metrics-json", str(metrics_path)])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["driver.steps"] > 0
        assert metrics["counters"]["certify.runs"] == 1

    def test_record_and_audit_metrics_json(self, tmp_path, capsys):
        case = tmp_path / "run.json"
        record_metrics = tmp_path / "record.json"
        code = main(["record", "--seed", "4", "-o", str(case),
                     "--metrics-json", str(record_metrics)])
        assert code == 0
        assert json.loads(record_metrics.read_text())["counters"][
            "driver.steps"] > 0
        capsys.readouterr()
        audit_metrics = tmp_path / "audit.json"
        code = main(["audit", str(case), "--metrics-json", str(audit_metrics)])
        assert code == 0
        assert json.loads(audit_metrics.read_text())["counters"][
            "certify.runs"] == 1

    def test_audit_online_metrics_json(self, tmp_path, capsys):
        case = tmp_path / "run.json"
        main(["record", "--seed", "4", "-o", str(case)])
        capsys.readouterr()
        metrics_path = tmp_path / "m.json"
        code = main(["audit", str(case), "--engine", "online",
                     "--metrics-json", str(metrics_path)])
        assert code == 0
        assert json.loads(metrics_path.read_text())["counters"][
            "online.actions"] > 0
