"""Tests for the serial scheduler automaton (Section 2.2.3)."""

from repro import (
    Abort,
    Commit,
    Create,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
    SerialScheduler,
)
from repro.automata.base import replay_schedule

from conftest import T


def sched():
    return SerialScheduler()


def run(actions):
    return replay_schedule(sched(), actions).final_state


class TestCreate:
    def test_create_after_request(self):
        automaton = sched()
        state = automaton.initial_state()
        assert not automaton.enabled(state, Create(T("a")))
        state = automaton.effect(state, RequestCreate(T("a")))
        assert automaton.enabled(state, Create(T("a")))

    def test_no_duplicate_create(self):
        automaton = sched()
        state = run([RequestCreate(T("a")), Create(T("a"))])
        assert not automaton.enabled(state, Create(T("a")))

    def test_siblings_never_overlap(self):
        automaton = sched()
        state = run([RequestCreate(T("a")), RequestCreate(T("b")), Create(T("a"))])
        assert not automaton.enabled(state, Create(T("b")))
        # after a completes, b can run
        state = automaton.effect(state, RequestCommit(T("a"), 1))
        state = automaton.effect(state, Commit(T("a")))
        assert automaton.enabled(state, Create(T("b")))

    def test_non_siblings_may_overlap(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCreate(T("a", "c")),
            ]
        )
        # a is active; its own child may be created (depth-first descent)
        assert automaton.enabled(state, Create(T("a", "c")))


class TestCommitAbort:
    def test_commit_needs_request(self):
        automaton = sched()
        state = run([RequestCreate(T("a")), Create(T("a"))])
        assert not automaton.enabled(state, Commit(T("a")))
        state = automaton.effect(state, RequestCommit(T("a"), 1))
        assert automaton.enabled(state, Commit(T("a")))

    def test_commit_waits_for_children(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCreate(T("a", "c")),
                RequestCommit(T("a"), 1),
            ]
        )
        assert not automaton.enabled(state, Commit(T("a")))
        state = automaton.effect(state, Abort(T("a", "c")))
        assert automaton.enabled(state, Commit(T("a")))

    def test_abort_only_before_create(self):
        automaton = sched()
        state = run([RequestCreate(T("a"))])
        assert automaton.enabled(state, Abort(T("a")))
        state = automaton.effect(state, Create(T("a")))
        assert not automaton.enabled(state, Abort(T("a")))

    def test_no_double_completion(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 1),
                Commit(T("a")),
            ]
        )
        assert not automaton.enabled(state, Commit(T("a")))
        assert not automaton.enabled(state, Abort(T("a")))


class TestReports:
    def test_report_commit_matches_value(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 42),
                Commit(T("a")),
            ]
        )
        assert automaton.enabled(state, ReportCommit(T("a"), 42))
        assert not automaton.enabled(state, ReportCommit(T("a"), 43))

    def test_report_abort(self):
        automaton = sched()
        state = run([RequestCreate(T("a")), Abort(T("a"))])
        assert automaton.enabled(state, ReportAbort(T("a")))
        assert not automaton.enabled(state, ReportCommit(T("a"), 1))

    def test_single_report(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Abort(T("a")),
                ReportAbort(T("a")),
            ]
        )
        assert not automaton.enabled(state, ReportAbort(T("a")))


class TestEnabledOutputs:
    def test_enumeration_matches_enabled(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                RequestCreate(T("b")),
                Create(T("a")),
                RequestCommit(T("a"), 7),
            ]
        )
        outputs = set(automaton.enabled_outputs(state))
        # a can commit; b can be aborted (never created); b cannot be
        # created while a is active
        assert Commit(T("a")) in outputs
        assert Abort(T("b")) in outputs
        assert Create(T("b")) not in outputs
        for action in outputs:
            assert automaton.enabled(state, action)

    def test_inputs_always_enabled(self):
        automaton = sched()
        state = automaton.initial_state()
        assert automaton.enabled(state, RequestCreate(T("zzz")))
        assert automaton.enabled(state, RequestCommit(T("zzz"), None))

    def test_duplicate_request_commit_keeps_first_value(self):
        automaton = sched()
        state = run(
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 1),
                RequestCommit(T("a"), 2),
            ]
        )
        assert state.value_of(T("a")) == 1
