"""Tests for the generic controller automaton (Section 5.1)."""

from repro import (
    Abort,
    Commit,
    Create,
    GenericController,
    InformAbort,
    InformCommit,
    ObjectName,
    ReportAbort,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)

from conftest import T, rw_system


def controller():
    return GenericController(rw_system("x", "y"))


def advance(automaton, actions):
    state = automaton.initial_state()
    for action in actions:
        state = automaton.effect(state, action)
    return state


class TestTransitions:
    def test_create_needs_request(self):
        automaton = controller()
        state = automaton.initial_state()
        assert not automaton.enabled(state, Create(T("a")))
        state = automaton.effect(state, RequestCreate(T("a")))
        assert automaton.enabled(state, Create(T("a")))

    def test_concurrent_siblings_allowed(self):
        automaton = controller()
        state = advance(
            automaton,
            [
                RequestCreate(T("a")),
                RequestCreate(T("b")),
                Create(T("a")),
            ],
        )
        # unlike the serial scheduler, sibling b can be created while a runs
        assert automaton.enabled(state, Create(T("b")))

    def test_abort_even_after_create(self):
        automaton = controller()
        state = advance(automaton, [RequestCreate(T("a")), Create(T("a"))])
        assert automaton.enabled(state, Abort(T("a")))

    def test_commit_needs_request_commit(self):
        automaton = controller()
        state = advance(automaton, [RequestCreate(T("a")), Create(T("a"))])
        assert not automaton.enabled(state, Commit(T("a")))
        state = automaton.effect(state, RequestCommit(T("a"), 1))
        assert automaton.enabled(state, Commit(T("a")))

    def test_no_double_completion(self):
        automaton = controller()
        state = advance(
            automaton,
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 1),
                Commit(T("a")),
            ],
        )
        assert not automaton.enabled(state, Abort(T("a")))
        assert not automaton.enabled(state, Commit(T("a")))


class TestInformsAndReports:
    def _committed_state(self, automaton):
        return advance(
            automaton,
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 9),
                Commit(T("a")),
            ],
        )

    def test_informs_after_commit(self):
        automaton = controller()
        state = self._committed_state(automaton)
        assert automaton.enabled(state, InformCommit(ObjectName("x"), T("a")))
        assert automaton.enabled(state, InformCommit(ObjectName("y"), T("a")))
        assert not automaton.enabled(state, InformAbort(ObjectName("x"), T("a")))

    def test_informs_not_repeated(self):
        automaton = controller()
        state = self._committed_state(automaton)
        state = automaton.effect(state, InformCommit(ObjectName("x"), T("a")))
        assert not automaton.enabled(state, InformCommit(ObjectName("x"), T("a")))
        assert automaton.enabled(state, InformCommit(ObjectName("y"), T("a")))

    def test_report_value_matches(self):
        automaton = controller()
        state = self._committed_state(automaton)
        assert automaton.enabled(state, ReportCommit(T("a"), 9))
        assert not automaton.enabled(state, ReportCommit(T("a"), 8))

    def test_inform_abort_after_abort(self):
        automaton = controller()
        state = advance(automaton, [RequestCreate(T("a")), Abort(T("a"))])
        assert automaton.enabled(state, InformAbort(ObjectName("x"), T("a")))
        assert automaton.enabled(state, ReportAbort(T("a")))


class TestEnumeration:
    def test_enabled_outputs_sound(self):
        # give transaction `a` an access to x so informing x about it is
        # relevant (the controller only enumerates relevant informs,
        # although `enabled` permits any inform per the model)
        from repro import Access
        from repro.core.rw_semantics import ReadOp

        system = rw_system("x", "y")
        system.register_access(T("a", "r"), Access(ObjectName("x"), ReadOp()))
        automaton = GenericController(system)
        state = advance(
            automaton,
            [
                RequestCreate(T("a")),
                Create(T("a")),
                RequestCommit(T("a"), 9),
                Commit(T("a")),
                RequestCreate(T("b")),
            ],
        )
        outputs = list(automaton.enabled_outputs(state))
        assert len(outputs) == len(set(outputs))
        for action in outputs:
            assert automaton.enabled(state, action)
        assert Create(T("b")) in outputs
        assert ReportCommit(T("a"), 9) in outputs
        assert InformCommit(ObjectName("x"), T("a")) in outputs
        # object y has no access under `a`: not enumerated, yet permitted
        assert InformCommit(ObjectName("y"), T("a")) not in outputs
        assert automaton.enabled(state, InformCommit(ObjectName("y"), T("a")))

    def test_aborts_enumerated_separately(self):
        automaton = controller()
        state = advance(automaton, [RequestCreate(T("a")), Create(T("a"))])
        outputs = list(automaton.enabled_outputs(state))
        assert Abort(T("a")) not in outputs
        aborts = list(automaton.enabled_aborts(state))
        assert Abort(T("a")) in aborts
        for abort in aborts:
            assert automaton.enabled(state, abort)
