"""Tests for certify(validate_input=True) and the simple-system composition."""

from repro import (
    Commit,
    Create,
    EagerInformPolicy,
    MossRWLockingObject,
    RequestCreate,
    WorkloadConfig,
    certify,
    generate_workload,
    make_generic_system,
    run_system,
    serial_projection,
)
from repro.automata.base import replay_schedule
from repro.serial.simple_db import make_simple_system

from conftest import T, rw_system, serial_two_txn_behavior


class TestValidateInput:
    def test_well_formed_input_passes(self):
        behavior, system = serial_two_txn_behavior()
        certificate = certify(behavior, system, validate_input=True)
        assert certificate.certified
        assert certificate.input_problems == []

    def test_malformed_input_diagnosed(self):
        system = rw_system("x")
        behavior = (Create(T("ghost")), Commit(T("ghost")))
        certificate = certify(behavior, system, validate_input=True)
        assert not certificate.certified
        assert certificate.input_problems
        assert "malformed input" in certificate.explain()

    def test_default_skips_validation(self):
        # without the flag, the certifier judges whatever it is given
        system = rw_system("x")
        behavior = (Create(T("ghost")),)
        certificate = certify(behavior, system)
        assert certificate.input_problems == []


class TestSimpleSystem:
    def test_generic_behavior_is_simple_behavior(self):
        """The implements-relation of the paper's architecture, checked by
        replay: a generic run's serial projection is a schedule of the
        simple system (with the same transaction automata)."""
        system_type, programs = generate_workload(
            WorkloadConfig(seed=2, top_level=3, objects=2)
        )
        generic = make_generic_system(system_type, programs, MossRWLockingObject)
        result = run_system(
            generic, EagerInformPolicy(seed=2), system_type, resolve_deadlocks=True
        )
        simple = make_simple_system(system_type, programs)
        serial = serial_projection(result.behavior)
        execution = replay_schedule(simple, serial)
        assert len(execution.actions) == len(serial)

    def test_simple_system_allows_wild_values(self):
        """The simple database itself accepts arbitrary access values —
        it models structure, not correctness."""
        from repro import RequestCommit
        from repro.core import ROOT
        from repro.sim.programs import TransactionProgram, read, seq, sub, system_type_for
        from repro.core.rw_semantics import RWSpec
        from repro.core.names import ObjectName

        X = ObjectName("x")
        programs = {
            ROOT: TransactionProgram((sub(seq(read(X, "r")), "t"),), sequential=False)
        }
        system_type = system_type_for({X: RWSpec(initial=0)}, programs)
        simple = make_simple_system(system_type, programs)
        access = T("t", "r")
        schedule = [
            RequestCreate(T("t")),
            Create(T("t")),
            RequestCreate(access),
            Create(access),
            RequestCommit(access, "utter nonsense"),
        ]
        execution = replay_schedule(simple, schedule)
        assert execution.final_state["simple-database"].responded == {access}
