"""Tests for the online certifier's prefix-compaction mode.

The A/B contract (lint rule R001): every suite here runs the same
behavior through ``compaction=True`` and ``compaction=False`` engines
and requires identical *judgements* — ``certified``, the exact ARV
violation tuple, and whether a cycle latched.  The cycle *witness*
tuple may legitimately differ between engines (edge insertion order
differs once the conflict frontier replays evicted rows), so it is
deliberately excluded from the comparison.

Directed scenarios pin the tricky seams: legality resuming from the
compacted per-object summary state, aborts landing after waiting-list
entries were drained, late arrivals under already-retired top-level
subtrees, and frozen violations surviving row eviction.  The memory
tests assert the point of the whole feature: on a commit-as-you-go
stream the retained tracked-op count is bounded by the live window,
not the stream length.
"""

import pytest

from repro import (
    Commit,
    OnlineCertifier,
    ReportCommit,
    RequestCommit,
    RequestCreate,
)
from repro.obs.tracer import RingBufferSink, Tracer
from repro.stream import StreamWorkload, commit_as_you_go

from conftest import BehaviorBuilder, rw_system
from test_core_properties import random_simple_behavior
from test_online import random_contended_behavior


def judgement(verdict):
    """The engine-independent part of a verdict (witness excluded)."""
    return (verdict.certified, verdict.arv_violations, verdict.cycle is None)


def paired(system, interval=3):
    """A (baseline, compacted) certifier pair over the same system."""
    return (
        OnlineCertifier(system, compaction=False),
        OnlineCertifier(system, compaction=True, compaction_interval=interval),
    )


def assert_equivalent_per_step(behavior, system, interval=3, context=()):
    """Feed both engines action by action, comparing judgements each step."""
    baseline, compacted = paired(system, interval)
    for step, action in enumerate(behavior):
        baseline.feed(action)
        compacted.feed(action)
        assert judgement(baseline.verdict()) == judgement(compacted.verdict()), (
            *context,
            step,
        )


class TestRandomizedEquivalence:
    """200-seed sweeps over both generators, judged after every action."""

    def test_200_simple_seeds_agree_per_step(self):
        rejected = 0
        for seed in range(200):
            behavior, system = random_simple_behavior(seed, steps=35)
            assert_equivalent_per_step(behavior, system, context=(seed,))
            rejected += not OnlineCertifier(
                system, compaction=True, compaction_interval=3
            ).feed_all(behavior).certified
        # the sweep must actually exercise both outcomes
        assert 0 < rejected < 200

    def test_contended_interleavings_agree_and_latch_cycles(self):
        cyclic = 0
        for seed in range(60):
            behavior, system = random_contended_behavior(seed)
            assert_equivalent_per_step(behavior, system, interval=2, context=(seed,))
            verdict = OnlineCertifier(
                system, compaction=True, compaction_interval=2
            ).feed_all(behavior)
            cyclic += verdict.cycle is not None
        assert cyclic > 0

    def test_interval_one_most_aggressive_schedule(self):
        """Sweeping after every action is the worst case for staleness."""
        for seed in range(40):
            behavior, system = random_simple_behavior(seed, steps=30)
            assert_equivalent_per_step(behavior, system, interval=1, context=(seed,))


class TestDirectedScenarios:
    def test_read_resumes_from_compacted_state(self):
        """After t1's rows are trimmed, t2's legality must be judged
        against the compacted summary state, not the spec's initial."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 7)
        b.commit(t1)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 7)
        b.commit(t2)
        behavior = b.build()
        baseline, compacted = paired(system, interval=1)
        assert judgement(baseline.feed_all(behavior)) == judgement(
            compacted.feed_all(behavior)
        )
        assert compacted.verdict().certified
        assert compacted.compaction_stats()["evicted_rows"] > 0

    def test_stale_read_after_compaction_still_flagged(self):
        """The negative twin: a read of the *initial* value after a
        trimmed write is an ARV violation in both engines."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 7)
        b.commit(t1)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 0)
        b.commit(t2)
        behavior = b.build()
        baseline, compacted = paired(system, interval=1)
        left, right = baseline.feed_all(behavior), compacted.feed_all(behavior)
        assert judgement(left) == judgement(right)
        assert not right.certified
        assert right.arv_violations

    def test_frozen_violation_survives_row_eviction(self):
        """An already-illegal row that gets trimmed must keep reporting
        its violation, byte for byte, from the frozen record."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.read(t1, "r", "x", 99)  # illegal: initial value is 0
        b.commit(t1)
        for i in range(6):  # filler sweeps push the illegal row out
            t = b.begin_top(f"f{i}")
            b.write(t, "w", "x", i)
            b.commit(t)
        behavior = b.build()
        baseline, compacted = paired(system, interval=1)
        left, right = baseline.feed_all(behavior), compacted.feed_all(behavior)
        assert judgement(left) == judgement(right)
        assert right.arv_violations
        assert compacted.compaction_stats()["evicted_rows"] > 0

    def test_late_commit_after_sibling_prefix_compacted(self):
        """A transaction held open across many sweeps commits last; its
        operations become visible against an already-trimmed prefix."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        slow = b.begin_top("slow")
        access = b.read(slow, "r", "x", 0)  # legal when slow finally commits
        for i in range(8):
            t = b.begin_top(f"f{i}")
            b.write(t, "w", "x", i)
            b.commit(t)
        b.commit(slow)
        behavior = b.build()
        assert_equivalent_per_step(behavior, system, interval=1)

    def test_abort_after_ancestor_waiting_list_drained(self):
        """Abort a top whose committed descendants sat in its waiting
        bucket across compaction sweeps; the kill must find them (or
        their eviction must have been sound)."""
        system = rw_system("x", "y")
        b = BehaviorBuilder(system)
        doomed = b.begin_top("doomed")
        child = b.begin(doomed.child("c"))
        b.write(child, "w", "x", 5)
        b.commit(child)  # waits on doomed for visibility
        for i in range(6):
            t = b.begin_top(f"f{i}")
            b.write(t, "w", "y", i)
            b.commit(t)
        b.abort(doomed)
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 0)  # doomed's write must NOT be visible
        b.commit(t2)
        behavior = b.build()
        baseline, compacted = paired(system, interval=1)
        left, right = baseline.feed_all(behavior), compacted.feed_all(behavior)
        assert judgement(left) == judgement(right)
        assert right.certified

    def test_late_arrivals_under_retired_top(self):
        """Resurrection: events naming an evicted subtree's transactions
        (late top-level report, late child creation) arrive after the
        subtree's records were dropped — root-level state is permanent,
        so both engines must still agree."""
        system = rw_system("x")
        b = BehaviorBuilder(system)
        t1 = b.begin_top("t1")
        b.write(t1, "w", "x", 3)
        # commit without the top-level report, so it can arrive late
        b.emit(RequestCommit(t1, "done"), Commit(t1))
        for i in range(6):
            t = b.begin_top(f"f{i}")
            b.write(t, "w", "x", i)
            b.commit(t)
        b.emit(ReportCommit(t1, "done"))  # late report
        b.emit(RequestCreate(t1.child("late")))  # late child request
        t2 = b.begin_top("t2")
        b.read(t2, "r", "x", 5)
        b.commit(t2)
        behavior = b.build()
        assert_equivalent_per_step(behavior, system, interval=1)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            OnlineCertifier(rw_system("x"), compaction=True, compaction_interval=0)


class TestMemoryBounds:
    def test_live_window_bounds_retained_ops_on_long_stream(self):
        """The acceptance property: on a commit-as-you-go stream the
        peak retained tracked-op count is a function of the live window,
        not the stream length."""
        workload = StreamWorkload(
            top_level=400, accesses=3, window=8, rotation=16, seed=11
        )
        system, actions = commit_as_you_go(workload)
        certifier = OnlineCertifier(
            system, compaction=True, compaction_interval=32
        )
        peak = 0
        for action in actions:
            certifier.feed(action)
            peak = max(peak, certifier.live_tracked_ops())
        # window * (top + accesses * ceremony-in-flight) plus sweep slack;
        # without compaction this stream retains ~400 * 4 = 1600 ops.
        assert peak <= 40 * workload.window
        stats = certifier.compaction_stats()
        assert stats["evicted_rows"] > 0
        assert stats["evicted_subtrees"] > 0
        assert stats["sweeps"] > 0

    def test_peak_does_not_grow_with_stream_length(self):
        """Doubling the stream must not move the peak (O(window), not O(n))."""
        peaks = []
        for top_level in (120, 240):
            workload = StreamWorkload(
                top_level=top_level, accesses=3, window=6, rotation=12, seed=5
            )
            system, actions = commit_as_you_go(workload)
            certifier = OnlineCertifier(
                system, compaction=True, compaction_interval=16
            )
            peak = 0
            for action in actions:
                certifier.feed(action)
                peak = max(peak, certifier.live_tracked_ops())
            peaks.append(peak)
        assert peaks[1] <= peaks[0] + 4  # sweep-phase slack only

    def test_stream_judgements_match_baseline(self):
        """Stream workloads through both engines, end to end."""
        for seed in range(5):
            workload = StreamWorkload(top_level=60, window=6, seed=seed)
            system, actions = commit_as_you_go(workload)
            behavior = list(actions)
            baseline, compacted = paired(system, interval=16)
            assert judgement(baseline.feed_all(behavior)) == judgement(
                compacted.feed_all(behavior)
            ), seed


class FalsyTracer(Tracer):
    """A real tracer whose truthiness is False — the regression shape
    for the ``tracer or None``-style construction bug."""

    def __bool__(self):
        return False


class TestTracerRetention:
    def test_falsy_tracer_is_not_dropped(self):
        sink = RingBufferSink()
        tracer = FalsyTracer(sink)
        system = rw_system("x")
        certifier = OnlineCertifier(system, tracer=tracer)
        assert certifier.tracer is tracer
        b = BehaviorBuilder(system)
        t = b.begin_top("t")
        b.write(t, "w", "x", 1)
        b.commit(t)
        certifier.feed_all(b.build())
        assert any(span.name == "online.feed" for span in sink.spans())

    def test_tracer_covers_compaction_sweeps(self):
        sink = RingBufferSink()
        tracer = FalsyTracer(sink)
        system = rw_system("x")
        certifier = OnlineCertifier(
            system, tracer=tracer, compaction=True, compaction_interval=1
        )
        b = BehaviorBuilder(system)
        for i in range(3):
            t = b.begin_top(f"t{i}")
            b.write(t, "w", "x", i)
            b.commit(t)
        certifier.feed_all(b.build())
        assert any(
            span.name == "online.compaction.sweep" for span in sink.spans()
        )
